#include "vps/dist/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "vps/dist/worker.hpp"
#include "vps/fault/checkpoint.hpp"
#include "vps/fault/driver_util.hpp"
#include "vps/obs/dist_trace.hpp"
#include "vps/support/ensure.hpp"
#include "vps/support/stats.hpp"

namespace vps::dist {

using fault::CampaignCheckpoint;
using fault::CampaignConfig;
using fault::CampaignResult;
using fault::CampaignState;
using fault::FaultDescriptor;
using fault::Outcome;
using fault::ReplayResult;
using fault::detail::fold_run;
using fault::detail::kDefaultBatch;
using fault::detail::stop_condition_met;
using support::ensure;

using Clock = std::chrono::steady_clock;

struct DistCampaign::Worker {
  pid_t pid = -1;
  std::unique_ptr<Channel> channel;
  bool alive = false;
  /// Batch positions assigned to this worker that have no RESULT yet.
  std::vector<std::size_t> inflight;
  Clock::time_point last_heard;
};

/// RAII fleet: whatever path leaves execute() — return, ensure() throw,
/// scenario exception — every still-running child is SIGKILLed and reaped.
struct DistCampaign::Fleet {
  std::vector<Worker> workers;
  FleetStats* stats = nullptr;

  ~Fleet() {
    for (Worker& w : workers) reap(w, /*force_kill=*/true);
  }

  /// Closes the channel (folding its counters into the stats), kills the
  /// process if requested, and waits for it — never leaves a zombie.
  void reap(Worker& w, bool force_kill) {
    if (w.channel != nullptr) {
      if (stats != nullptr) {
        stats->frames_sent += w.channel->stats().frames_sent;
        stats->frames_received += w.channel->stats().frames_received;
        stats->bytes_sent += w.channel->stats().bytes_sent;
        stats->bytes_received += w.channel->stats().bytes_received;
      }
      w.channel->close();
      w.channel.reset();
    }
    if (w.pid > 0) {
      if (force_kill) ::kill(w.pid, SIGKILL);
      int status = 0;
      pid_t r;
      do {
        r = ::waitpid(w.pid, &status, 0);
      } while (r < 0 && errno == EINTR);
      w.pid = -1;
    }
    w.alive = false;
  }

  [[nodiscard]] std::size_t alive_count() const noexcept {
    std::size_t n = 0;
    for (const Worker& w : workers) n += w.alive ? 1 : 0;
    return n;
  }
};

namespace {

/// Forks one worker. In fork-only mode the child serves with the inherited
/// factory; in exec mode it dup2s its socket onto fd 3 and execs the
/// vps-worker binary. `all_pairs` is every socketpair of the fleet — the
/// child closes all ends that are not its own, so a dead coordinator (or
/// dead sibling) produces a visible EOF instead of a connection kept alive
/// by an unrelated process holding a duplicate descriptor.
pid_t spawn_worker(std::size_t index, const std::vector<SocketPair>& all_pairs,
                   const fault::ScenarioFactory& factory, const DistConfig& config) {
  const pid_t pid = ::fork();
  ensure(pid >= 0, std::string("dist: fork failed: ") + std::strerror(errno));
  if (pid != 0) return pid;

  // --- child ---
  const int my_fd = all_pairs[index].worker_fd;
  for (std::size_t i = 0; i < all_pairs.size(); ++i) {
    ::close(all_pairs[i].coordinator_fd);
    if (i != index) ::close(all_pairs[i].worker_fd);
  }
  if (config.worker_path.empty()) {
    // Fork-only worker: serve straight out of the fork with the inherited
    // factory. _exit, not exit — a forked child must not run the parent's
    // atexit handlers or flush its inherited stdio buffers twice.
    int code = 3;
    {
      Channel channel(my_fd);
      code = serve(channel, [&factory](const SetupMsg&) { return factory(); });
    }
    ::_exit(code);
  }
  // Exec worker: hand the socket over on fd 3 and replace the image.
  if (my_fd != 3) {
    if (::dup2(my_fd, 3) < 0) ::_exit(127);
    ::close(my_fd);
  }
  ::execl(config.worker_path.c_str(), "vps-worker", "--fd", "3",
          static_cast<char*>(nullptr));
  ::_exit(127);  // exec failed: the coordinator sees EOF instead of HELLO
}

int remaining_ms(Clock::time_point deadline) noexcept {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now()).count();
  return left <= 0 ? 0 : static_cast<int>(std::min<long long>(left, 1'000'000));
}

}  // namespace

int poll_timeout_ms(Clock::time_point now, const std::vector<Clock::time_point>& deadlines,
                    int fallback_ms) noexcept {
  long long best = fallback_ms;
  for (const Clock::time_point d : deadlines) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(d - now).count();
    best = std::min(best, std::max<long long>(0, left));
  }
  return static_cast<int>(best);
}

DistCampaign::DistCampaign(fault::ScenarioFactory factory, DistConfig config)
    : factory_(std::move(factory)), config_(std::move(config)) {
  ensure(static_cast<bool>(factory_), "DistCampaign: empty scenario factory");
  ignore_sigpipe();
}

void DistCampaign::ensure_coordinator() {
  if (coordinator_ != nullptr) return;
  coordinator_ = factory_();
  ensure(coordinator_ != nullptr, "DistCampaign: scenario factory returned null");
}

void DistCampaign::write_checkpoint(const CampaignResult& partial) const {
  CampaignCheckpoint cp;
  // Deliberately "parallel_campaign": the two batched drivers share one
  // generation/learning cadence, so their checkpoints are interchangeable.
  cp.driver = "parallel_campaign";
  cp.scenario = coordinator_->name();
  cp.config = config_.campaign;
  cp.golden = golden_;
  cp.records = partial.records;
  save_checkpoint(cp, config_.campaign.checkpoint_path);
}

CampaignResult DistCampaign::run() {
  ensure_coordinator();
  if (!golden_valid_) {
    golden_ = coordinator_->run(nullptr, config_.campaign.seed);
    golden_valid_ = true;
    ensure(golden_.completed,
           "DistCampaign: golden run did not complete for " + coordinator_->name());
  }
  CampaignState state(coordinator_->fault_types(), coordinator_->duration(), config_.campaign);
  return execute(0, CampaignResult{}, state);
}

CampaignResult DistCampaign::resume(const CampaignCheckpoint& checkpoint) {
  ensure_coordinator();
  fault::detail::validate_checkpoint(checkpoint, "parallel_campaign", coordinator_->name(),
                                     config_.campaign);
  golden_ = checkpoint.golden;
  golden_valid_ = true;

  CampaignState state(coordinator_->fault_types(), coordinator_->duration(), config_.campaign);
  CampaignResult result;
  const std::size_t next =
      fault::detail::replay_prefix_batched(checkpoint, config_.campaign, state, result);
  return execute(next, std::move(result), state);
}

void DistCampaign::publish_fleet_metrics() const {
  if (metrics_ == nullptr) return;
  metrics_->counter("dist.workers_spawned").add(fleet_stats_.workers_spawned);
  metrics_->counter("dist.worker_deaths").add(fleet_stats_.worker_deaths);
  metrics_->counter("dist.requeued_runs").add(fleet_stats_.requeued_runs);
  metrics_->counter("dist.crashed_runs").add(fleet_stats_.crashed_runs);
  metrics_->counter("dist.frames_sent").add(fleet_stats_.frames_sent);
  metrics_->counter("dist.frames_received").add(fleet_stats_.frames_received);
  metrics_->counter("dist.bytes_sent").add(fleet_stats_.bytes_sent);
  metrics_->counter("dist.bytes_received").add(fleet_stats_.bytes_received);
  metrics_->counter("dist.reconnects").add(fleet_stats_.reconnects);
  metrics_->counter("dist.chaos.frames_dropped").add(fleet_stats_.chaos_frames_dropped);
  metrics_->counter("dist.chaos.bytes_corrupted").add(fleet_stats_.chaos_bytes_corrupted);
}

CampaignResult DistCampaign::execute(std::size_t start_run, CampaignResult result,
                                     CampaignState& state) {
  if (!config_.server_host.empty()) {
    return execute_remote(start_run, std::move(result), state);
  }
  const auto started = Clock::now();
  const auto elapsed = [&started] {
    return std::chrono::duration<double>(Clock::now() - started).count();
  };
  const CampaignConfig& cc = config_.campaign;
  const std::size_t fleet_size = std::max<std::size_t>(1, config_.workers);

  // --- spawn the fleet -----------------------------------------------------
  std::vector<SocketPair> pairs;
  pairs.reserve(fleet_size);
  for (std::size_t i = 0; i < fleet_size; ++i) pairs.push_back(make_socket_pair());

  Fleet fleet;
  fleet.stats = &fleet_stats_;
  fleet.workers.resize(fleet_size);
  for (std::size_t i = 0; i < fleet_size; ++i) {
    Worker& w = fleet.workers[i];
    w.pid = spawn_worker(i, pairs, factory_, config_);
    ::close(pairs[i].worker_fd);
    w.channel = std::make_unique<Channel>(pairs[i].coordinator_fd);
    w.alive = true;
    w.last_heard = Clock::now();
    ++fleet_stats_.workers_spawned;
  }

  // --- handshake: SETUP out, HELLO back ------------------------------------
  SetupMsg setup;
  setup.scenario_spec =
      config_.scenario_spec.empty() ? coordinator_->name() : config_.scenario_spec;
  setup.seed = cc.seed;
  setup.crash_retries = cc.crash_retries;
  setup.golden = golden_;
  const std::string setup_payload = encode_setup(setup);
  const auto hello_deadline = Clock::now() + std::chrono::milliseconds(config_.hello_timeout_ms);
  for (std::size_t i = 0; i < fleet_size; ++i) {
    Worker& w = fleet.workers[i];
    ensure(w.channel->send_frame(MsgType::kHello, setup_payload),
           "dist: worker " + std::to_string(i) +
               " died before SETUP could be delivered (spawn failure — bad worker binary "
               "path or worker crashed on startup)");
    auto frame = w.channel->wait_frame(remaining_ms(hello_deadline));
    ensure(frame.has_value(),
           "dist: worker " + std::to_string(i) +
               (w.channel->open() ? " did not answer SETUP within the hello timeout"
                                  : " exited before completing the handshake (spawn failure — "
                                    "bad worker binary path or worker crashed on startup)"));
    ensure(frame->type == MsgType::kHello, std::string("dist: worker ") + std::to_string(i) +
                                               " answered SETUP with " + to_string(frame->type));
    const HelloMsg hello = decode_hello(frame->payload);
    ensure(hello.version == kProtocolVersion,
           "dist: worker " + std::to_string(i) + " speaks protocol v" +
               std::to_string(hello.version) + ", coordinator speaks v" +
               std::to_string(kProtocolVersion));
    ensure(hello.scenario == coordinator_->name(),
           "dist: worker " + std::to_string(i) + " built scenario '" + hello.scenario +
               "', coordinator runs '" + coordinator_->name() + "'");
    w.last_heard = Clock::now();
  }

  // --- batch loop ----------------------------------------------------------
  const support::Xorshift base(cc.seed);
  const std::size_t batch = cc.batch_size == 0 ? kDefaultBatch : cc.batch_size;
  const bool checkpointing = cc.checkpoint_every != 0 && !cc.checkpoint_path.empty();

  std::size_t next_run = start_run;
  std::size_t executed_this_call = 0;
  std::size_t runs_since_checkpoint = 0;
  std::uint64_t results_total = 0;
  bool kill_hook_fired = config_.kill_after_results == 0;
  bool stopped = stop_condition_met(cc, result);  // resumed past the stop

  // Declares `w` dead: reap it and requeue its in-flight work onto the
  // least-loaded survivor (or synthesize kSimCrash once a run exhausted its
  // requeue budget). Defined here so both the send and the collect paths
  // share it.
  std::vector<std::optional<ReplayResult>> replays;
  std::vector<std::uint32_t> requeues;
  std::vector<FaultDescriptor>* batch_faults = nullptr;
  std::size_t batch_results = 0;
  const auto assign_one = [&](Worker& w, std::size_t slot) -> bool {
    AssignMsg msg;
    msg.run = next_run + slot;
    msg.fault = (*batch_faults)[slot];
    if (!w.channel->send_frame(MsgType::kAssign, encode_assign(msg))) return false;
    w.inflight.push_back(slot);
    return true;
  };
  const std::function<void(Worker&)> on_worker_death = [&](Worker& w) {
    std::vector<std::size_t> orphaned = std::move(w.inflight);
    w.inflight.clear();
    fleet.reap(w, /*force_kill=*/true);
    ++fleet_stats_.worker_deaths;
    std::fprintf(stderr, "dist: worker died, requeuing %zu in-flight run(s) onto %zu survivor(s)\n",
                 orphaned.size(), fleet.alive_count());
    for (std::size_t slot : orphaned) {
      if (replays[slot].has_value()) continue;  // result arrived before the EOF
      ++requeues[slot];
      ++fleet_stats_.requeued_runs;
      if (requeues[slot] > config_.max_requeues) {
        // The run keeps taking its workers down with it — same verdict the
        // in-process drivers give a replay that keeps throwing.
        ReplayResult crash;
        crash.outcome = Outcome::kSimCrash;
        crash.attempts = requeues[slot];
        crash.crash_what = "dist: run " + std::to_string(next_run + slot) + " requeued " +
                           std::to_string(config_.max_requeues) +
                           " time(s), each assigned worker died before returning a result";
        replays[slot] = std::move(crash);
        ++fleet_stats_.crashed_runs;
        ++batch_results;
        continue;
      }
      Worker* target = nullptr;
      for (Worker& cand : fleet.workers) {
        if (!cand.alive) continue;
        if (target == nullptr || cand.inflight.size() < target->inflight.size()) target = &cand;
      }
      ensure(target != nullptr, "dist: all workers died with runs still in flight");
      if (!assign_one(*target, slot)) {
        on_worker_death(*target);  // recurses; terminates because the fleet shrinks
        // The current slot was not recorded as target's inflight (send
        // failed), so requeue it again by hand on the next survivor.
        --requeues[slot];
        --fleet_stats_.requeued_runs;
        Worker* next_target = nullptr;
        for (Worker& cand : fleet.workers) {
          if (!cand.alive) continue;
          if (next_target == nullptr || cand.inflight.size() < next_target->inflight.size()) {
            next_target = &cand;
          }
        }
        ensure(next_target != nullptr, "dist: all workers died with runs still in flight");
        ++requeues[slot];
        ++fleet_stats_.requeued_runs;
        ensure(assign_one(*next_target, slot),
               "dist: workers keep dying faster than runs can be reassigned");
      }
    }
  };

  while (next_run < cc.runs && !stopped) {
    const std::size_t n = std::min(batch, cc.runs - next_run);

    // Generate the whole batch on the coordinator: adaptive strategies see
    // the weights/coverage as of the last barrier (same as ParallelCampaign).
    std::vector<FaultDescriptor> faults;
    faults.reserve(n);
    for (std::size_t b = 0; b < n; ++b) {
      support::Xorshift run_rng = base.fork(next_run + b);
      faults.push_back(state.generate(next_run + b, run_rng));
    }

    replays.assign(n, std::nullopt);
    requeues.assign(n, 0);
    batch_faults = &faults;
    batch_results = 0;

    // Fan out round-robin over the survivors.
    {
      std::vector<Worker*> alive;
      for (Worker& w : fleet.workers) {
        if (w.alive) alive.push_back(&w);
      }
      ensure(!alive.empty(), "dist: no workers alive at batch start");
      for (std::size_t b = 0; b < n; ++b) {
        Worker& w = *alive[b % alive.size()];
        if (!w.alive) continue;  // died while assigning this batch
        if (!assign_one(w, b)) on_worker_death(w);
      }
      // Slots whose round-robin worker was already dead by their turn.
      for (std::size_t b = 0; b < n; ++b) {
        if (replays[b].has_value()) continue;
        bool assigned = false;
        for (const Worker& w : fleet.workers) {
          if (w.alive &&
              std::find(w.inflight.begin(), w.inflight.end(), b) != w.inflight.end()) {
            assigned = true;
            break;
          }
        }
        if (!assigned) {
          Worker* target = nullptr;
          for (Worker& cand : fleet.workers) {
            if (!cand.alive) continue;
            if (target == nullptr || cand.inflight.size() < target->inflight.size()) {
              target = &cand;
            }
          }
          ensure(target != nullptr, "dist: all workers died while assigning a batch");
          if (!assign_one(*target, b)) on_worker_death(*target);
        }
      }
    }

    // Collect until every slot has a verdict.
    while (batch_results < n) {
      std::vector<struct pollfd> pfds;
      std::vector<Worker*> polled;
      for (Worker& w : fleet.workers) {
        if (!w.alive) continue;
        pfds.push_back({w.channel->fd(), POLLIN, 0});
        polled.push_back(&w);
      }
      ensure(!pfds.empty(), "dist: all workers died with runs still in flight");

      // Wake at the earliest expiry across the whole fleet — a worker whose
      // heartbeat (or partial-frame) deadline lands between fixed-cadence
      // wakeups would otherwise be detected up to a full poll period late.
      const auto poll_now = Clock::now();
      const auto hb_window = std::chrono::milliseconds(config_.heartbeat_timeout_ms);
      std::vector<Clock::time_point> deadlines;
      for (const Worker* wp : polled) {
        if (!wp->inflight.empty()) deadlines.push_back(wp->last_heard + hb_window);
        if (const auto since = wp->channel->partial_since()) {
          deadlines.push_back(*since + hb_window);
        }
      }
      const int timeout =
          poll_timeout_ms(poll_now, deadlines, std::min(config_.heartbeat_timeout_ms, 1000));
      const int rc = ::poll(pfds.data(), pfds.size(), timeout);
      if (rc < 0) {
        if (errno == EINTR) continue;
        ensure(false, std::string("dist: poll failed: ") + std::strerror(errno));
      }

      for (std::size_t i = 0; i < polled.size(); ++i) {
        Worker& w = *polled[i];
        if (!w.alive) continue;  // killed earlier in this sweep
        if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        const bool stream_ok = w.channel->pump();
        // Drain every frame the pump buffered — results that raced the EOF
        // still count, so a worker killed after finishing its work loses
        // nothing.
        while (auto frame = w.channel->next_frame()) {
          w.last_heard = Clock::now();
          switch (frame->type) {
            case MsgType::kHeartbeat:
              break;  // liveness only; last_heard update above is the point
            case MsgType::kResult: {
              ResultMsg msg = decode_result(frame->payload);
              ensure(msg.run >= next_run && msg.run < next_run + n,
                     "dist: RESULT for run " + std::to_string(msg.run) +
                         " outside the current batch");
              const std::size_t slot = msg.run - next_run;
              auto it = std::find(w.inflight.begin(), w.inflight.end(), slot);
              if (it != w.inflight.end()) w.inflight.erase(it);
              if (!replays[slot].has_value()) {
                // First verdict wins; a duplicate from a requeue race is
                // byte-identical anyway (replays are pure).
                replays[slot] = std::move(msg.replay);
                ++batch_results;
              }
              ++results_total;
              if (!kill_hook_fired && results_total >= config_.kill_after_results) {
                kill_hook_fired = true;
                const std::size_t victim = config_.kill_worker % fleet.workers.size();
                if (fleet.workers[victim].alive) {
                  ::kill(fleet.workers[victim].pid, SIGKILL);
                }
              }
              break;
            }
            default:
              ensure(false, std::string("dist: unexpected ") + to_string(frame->type) +
                                " frame from a worker");
          }
        }
        if (!stream_ok) on_worker_death(w);
      }

      // Hang detection: a worker holding work that has said nothing for the
      // whole heartbeat window is wedged — kill it and move its work. So is
      // a worker sitting on an incomplete frame for that long, whatever its
      // assignment state: a truncated RESULT tail must never park the
      // reassembly buffer (and the campaign) forever.
      const auto now = Clock::now();
      for (Worker& w : fleet.workers) {
        if (!w.alive) continue;
        const bool busy_silent =
            !w.inflight.empty() &&
            now - w.last_heard > std::chrono::milliseconds(config_.heartbeat_timeout_ms);
        const auto since = w.channel->partial_since();
        const bool wedged_partial =
            since.has_value() &&
            now - *since > std::chrono::milliseconds(config_.heartbeat_timeout_ms);
        if (busy_silent || wedged_partial) {
          std::fprintf(stderr, "dist: worker pid %d %s past the heartbeat timeout, killing\n",
                       static_cast<int>(w.pid),
                       wedged_partial ? "stuck mid-frame" : "silent");
          ::kill(w.pid, SIGKILL);
          on_worker_death(w);
        }
      }
    }
    batch_faults = nullptr;

    // Barrier: reduce in run-index order — learning, coverage and the
    // closure curve replay exactly as ParallelCampaign would.
    std::size_t processed = 0;
    for (std::size_t b = 0; b < n; ++b) {
      ReplayResult& r = *replays[b];
      fold_run(result, state, next_run + b,
               {std::move(faults[b]), r.outcome, std::move(r.crash_what),
                std::move(r.provenance)},
               r.attempts);
      processed = b + 1;
      if (stop_condition_met(cc, result)) {
        stopped = true;
        break;
      }
    }
    next_run += n;
    executed_this_call += processed;
    if (monitor_ != nullptr) {
      obs::CampaignProgress progress = progress_snapshot(
          coordinator_->name(), result, cc.runs, state.coverage().coverage(), elapsed());
      progress.workers_alive = fleet.alive_count();
      progress.worker_deaths = fleet_stats_.worker_deaths;
      progress.requeued_runs = fleet_stats_.requeued_runs;
      monitor_->on_progress(progress);
    }
    if (checkpointing) {
      runs_since_checkpoint += processed;
      if (runs_since_checkpoint >= cc.checkpoint_every) {
        write_checkpoint(result);
        runs_since_checkpoint = 0;
      }
    }
    if (!stopped && cc.preempt_after != 0 && executed_this_call >= cc.preempt_after &&
        next_run < cc.runs) {
      if (!cc.checkpoint_path.empty()) write_checkpoint(result);
      result.interrupted = true;
      break;
    }
  }

  // --- orderly shutdown ----------------------------------------------------
  for (Worker& w : fleet.workers) {
    if (!w.alive) continue;
    (void)w.channel->send_frame(MsgType::kShutdown, "");
    fleet.reap(w, /*force_kill=*/false);
  }

  fault::detail::finalize(result, state);
  if (!result.interrupted) {
    if (metrics_ != nullptr) {
      result.publish_metrics(*metrics_);
      publish_fleet_metrics();
    }
    if (monitor_ != nullptr) {
      obs::CampaignProgress progress =
          progress_snapshot(coordinator_->name(), result, cc.runs, result.final_coverage,
                            elapsed(), /*include_latency=*/true);
      progress.worker_deaths = fleet_stats_.worker_deaths;
      progress.requeued_runs = fleet_stats_.requeued_runs;
      monitor_->on_complete(progress);
    }
  }
  return result;
}

namespace {

/// Stable client-side job identity: FNV-1a over the determinism-relevant
/// campaign fields. The same campaign resubmitted from a fresh process (after
/// a client crash, or across a server restart) hashes to the same token, so
/// the server can reattach the orphaned job instead of admitting a duplicate.
std::uint64_t job_token_for(const SubmitMsg& submit) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix_bytes = [&h](const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ULL;
    }
  };
  const auto mix_str = [&](const std::string& s) {
    mix_bytes(s.data(), s.size());
    mix_bytes("\0", 1);  // length delimiter: ("ab","c") != ("a","bc")
  };
  const auto mix_u64 = [&](std::uint64_t v) { mix_bytes(&v, sizeof v); };
  mix_str(submit.tenant);
  mix_str(submit.scenario_spec);
  mix_str(submit.scenario);
  mix_u64(submit.config.seed);
  mix_u64(submit.config.runs);
  mix_u64(submit.max_requeues);
  return h == 0 ? 1 : h;  // 0 is the wire sentinel for "no token"
}

}  // namespace

CampaignResult DistCampaign::execute_remote(std::size_t start_run, CampaignResult result,
                                            CampaignState& state) {
  const auto started = Clock::now();
  const auto elapsed = [&started] {
    return std::chrono::duration<double>(Clock::now() - started).count();
  };
  const CampaignConfig& cc = config_.campaign;

  // --- submit (self-healing: retried with backoff until the server answers) -
  SubmitMsg submit;
  submit.tenant = config_.tenant.empty() ? "default" : config_.tenant;
  submit.scenario_spec =
      config_.scenario_spec.empty() ? coordinator_->name() : config_.scenario_spec;
  submit.scenario = coordinator_->name();
  submit.config = cc;
  submit.max_requeues = config_.max_requeues;
  submit.golden = golden_;
  submit.job_token = job_token_for(submit);

  // The token is in the trace filename because two tenant threads share one
  // pid — per-campaign files can then never collide.
  std::unique_ptr<obs::DistTraceWriter> trace;
  try {
    trace = obs::DistTraceWriter::open(config_.trace_dir, "client", submit.job_token);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dist: tracing disabled: %s\n", e.what());
  }

  // Always-on queue-vs-replay split from the v3 RESULT timing fields (both
  // zero when the server/worker predates v3 — the split is then omitted).
  support::Histogram queue_wait_ms(0.0, 5000.0, 500);
  support::Histogram replay_ms(0.0, 5000.0, 500);
  std::uint64_t remote_timed_runs = 0;
  const auto fill_latency_split = [&](obs::CampaignProgress& p) {
    p.remote_runs = remote_timed_runs;
    if (remote_timed_runs == 0) return;  // all-v2 fleet: reporter omits the split
    p.queue_wait_p50_ms = queue_wait_ms.percentile(0.50);
    p.queue_wait_p95_ms = queue_wait_ms.percentile(0.95);
    p.replay_p50_ms = replay_ms.percentile(0.50);
    p.replay_p95_ms = replay_ms.percentile(0.95);
  };

  std::optional<Channel> channel;
  std::uint64_t job = 0;
  std::uint64_t connect_attempts = 0;
  int backoff_ms = std::max(1, config_.reconnect_backoff_ms);
  // Deterministic jitter: seeded from the campaign, forked by pid so two
  // clients of one server never sleep in lockstep.
  support::Xorshift jitter =
      support::Xorshift(cc.seed + 0x73656c666865ULL).fork(static_cast<std::uint64_t>(::getpid()));

  // Folds the dying channel's transfer + chaos counters into fleet_stats_ so
  // no bytes are lost across reconnects, then drops it.
  const auto fold_channel = [&] {
    if (!channel.has_value()) return;
    fleet_stats_.frames_sent += channel->stats().frames_sent;
    fleet_stats_.frames_received += channel->stats().frames_received;
    fleet_stats_.bytes_sent += channel->stats().bytes_sent;
    fleet_stats_.bytes_received += channel->stats().bytes_received;
    if (channel->chaos() != nullptr) {
      fleet_stats_.chaos_frames_dropped += channel->chaos()->counters().frames_dropped;
      fleet_stats_.chaos_bytes_corrupted += channel->chaos()->counters().bytes_corrupted;
    }
    channel.reset();
  };

  // Connect + SUBMIT + await the admission verdict. Connection-level failures
  // (refused, timed out, link died before ACCEPT) are retried with doubling
  // backoff and jitter, bounded by max_reconnects consecutive failures — this
  // is what lets a tenant ride out a server crash + restart. A REJECT is an
  // explicit answer and always fatal, on the first attempt and on every
  // reconnect alike.
  const auto connect_and_submit = [&] {
    int failures = 0;
    for (;;) {
      std::optional<Frame> reply;
      try {
        Channel fresh(tcp_connect(config_.server_host, config_.server_port,
                                  config_.connect_timeout_ms));
        if (config_.chaos.enabled()) {
          // Distinct stream per attempt: replaying the seed replays the
          // faults, reconnecting does not replay the same fault schedule.
          fresh.set_chaos(std::make_shared<ChaosPolicy>(
              config_.chaos, (static_cast<std::uint64_t>(::getpid()) << 20) + 0x80000ULL +
                                 connect_attempts));
        }
        ++connect_attempts;
        // Fresh clock sample per attempt: the server pairs it with its own
        // arrival clock to align this client's trace file.
        submit.ts_ns = obs::dist_now_ns();
        ensure(fresh.send_frame(MsgType::kSubmit, encode_submit(submit)),
               "dist: campaign server hung up before SUBMIT could be delivered");
        reply = fresh.wait_frame(config_.hello_timeout_ms);
        ensure(reply.has_value(),
               fresh.open() ? "dist: campaign server did not answer SUBMIT in time"
                            : "dist: campaign server closed the connection on SUBMIT");
        channel.emplace(std::move(fresh));
      } catch (const std::exception& e) {
        if (++failures > config_.max_reconnects) {
          ensure(false,
                 std::string("dist: could not reach campaign server after retries: ") + e.what());
        }
        std::fprintf(stderr, "dist: SUBMIT attempt failed (%s) — retrying in ~%d ms\n", e.what(),
                     backoff_ms);
        std::this_thread::sleep_for(std::chrono::milliseconds(
            static_cast<long>(jitter.uniform(0.5 * backoff_ms, 1.5 * backoff_ms))));
        backoff_ms = std::min(backoff_ms * 2, std::max(1, config_.reconnect_backoff_max_ms));
        continue;
      }
      if (reply->type == MsgType::kReject) {
        fold_channel();
        ensure(false, "dist: campaign server rejected submission: " +
                          decode_reject(reply->payload).reason);
      }
      ensure(reply->type == MsgType::kAccept,
             std::string("dist: campaign server answered SUBMIT with ") + to_string(reply->type));
      job = decode_accept(reply->payload).job;
      backoff_ms = std::max(1, config_.reconnect_backoff_ms);
      return;
    }
  };

  // Link-loss recovery: account for the dead channel, reconnect, re-SUBMIT.
  // The job token makes the re-SUBMIT a reattach when the server still holds
  // the job (orphan grace) and a fresh admission when it does not (volatile
  // restart) — either way `job` is current again afterwards.
  const auto reestablish = [&](const std::string& why) {
    std::fprintf(stderr, "dist: link to campaign server lost (%s) — reconnecting\n", why.c_str());
    fold_channel();
    ++fleet_stats_.reconnects;
    if (trace != nullptr) {
      trace->event("reconnect", submit.job_token, 0, obs::dist_now_ns(),
                   {{"reconnects", fleet_stats_.reconnects}});
    }
    connect_and_submit();
  };

  connect_and_submit();

  // --- batch loop: identical generation/fold cadence to the local fleet ----
  const support::Xorshift base(cc.seed);
  const std::size_t batch = cc.batch_size == 0 ? kDefaultBatch : cc.batch_size;
  const bool checkpointing = cc.checkpoint_every != 0 && !cc.checkpoint_path.empty();
  // The server absorbs worker death internally (requeue or synthesized
  // kSimCrash), so the client only fails once the server itself has been
  // silent for several heartbeat windows.
  const auto silence_budget =
      std::chrono::milliseconds(3LL * config_.heartbeat_timeout_ms + 10'000);

  std::size_t next_run = start_run;
  std::size_t executed_this_call = 0;
  std::size_t runs_since_checkpoint = 0;
  bool stopped = stop_condition_met(cc, result);  // resumed past the stop

  while (next_run < cc.runs && !stopped) {
    const std::size_t n = std::min(batch, cc.runs - next_run);
    std::vector<FaultDescriptor> faults;
    faults.reserve(n);
    for (std::size_t b = 0; b < n; ++b) {
      support::Xorshift run_rng = base.fork(next_run + b);
      faults.push_back(state.generate(next_run + b, run_rng));
    }

    // Dispatch + collect, healing the link as needed. After every reconnect
    // only the runs still missing a verdict are re-ASSIGNed; first verdict
    // wins, so a run that was executed twice (old assignment still in flight
    // on some worker, new assignment after the reattach) folds exactly once —
    // and deterministically, because a replay is a pure function of
    // descriptor + seed + golden.
    std::vector<std::optional<ReplayResult>> replays(n);
    std::size_t batch_results = 0;
    bool dispatched = false;
    auto silence_deadline = Clock::now() + silence_budget;
    while (batch_results < n) {
      if (!dispatched) {
        bool sent_all = true;
        for (std::size_t b = 0; b < n; ++b) {
          if (replays[b].has_value()) continue;
          AssignMsg msg;
          msg.job = job;
          msg.run = next_run + b;
          msg.ts_ns = obs::dist_now_ns();
          msg.fault = faults[b];
          if (!channel->send_frame(MsgType::kAssign, encode_assign(msg))) {
            sent_all = false;
            break;
          }
          if (trace != nullptr) trace->span("submit", submit.job_token, msg.run, msg.ts_ns, 0);
        }
        if (!sent_all) {
          reestablish("ASSIGN could not be delivered");
          continue;
        }
        dispatched = true;
        silence_deadline = Clock::now() + silence_budget;
      }

      std::optional<Frame> frame;
      try {
        frame = channel->wait_frame(1000);
      } catch (const std::exception& e) {
        // Corrupted/misaligned inbound stream — heal it like a hangup.
        reestablish(e.what());
        dispatched = false;
        continue;
      }
      if (!frame.has_value()) {
        if (!channel->open()) {
          reestablish("campaign server hung up mid-campaign");
          dispatched = false;
          continue;
        }
        if (Clock::now() >= silence_deadline) {
          reestablish("campaign server went silent past the heartbeat budget");
          dispatched = false;
          continue;
        }
        continue;
      }
      silence_deadline = Clock::now() + silence_budget;
      ensure(frame->type == MsgType::kResultStream,
             std::string("dist: unexpected ") + to_string(frame->type) +
                 " frame from the campaign server");
      ResultMsg msg = decode_result(frame->payload);
      // A verdict from outside the current batch is a stale duplicate from a
      // pre-reconnect assignment that lost its first-verdict race — ignore.
      if (msg.run < next_run || msg.run >= next_run + n) continue;
      const std::size_t slot = msg.run - next_run;
      if (!replays[slot].has_value()) {
        replays[slot] = std::move(msg.replay);
        ++batch_results;
        // Timing rides beside the verdict, never inside it: losers of the
        // first-verdict race drop their timing with their verdict.
        if (msg.replay_ns != 0 || msg.queue_ns != 0) {
          ++remote_timed_runs;
          if (msg.queue_ns != 0) queue_wait_ms.add(static_cast<double>(msg.queue_ns) / 1e6);
          if (msg.replay_ns != 0) replay_ms.add(static_cast<double>(msg.replay_ns) / 1e6);
        }
      }
    }

    // Barrier: fold in run-index order, exactly as the local paths do.
    std::size_t processed = 0;
    for (std::size_t b = 0; b < n; ++b) {
      ReplayResult& r = *replays[b];
      if (r.outcome == Outcome::kSimCrash && r.attempts > 0) {
        ++fleet_stats_.crashed_runs;
      }
      fold_run(result, state, next_run + b,
               {std::move(faults[b]), r.outcome, std::move(r.crash_what),
                std::move(r.provenance)},
               r.attempts);
      if (trace != nullptr) {
        trace->span("fold", submit.job_token, next_run + b, obs::dist_now_ns(), 0);
      }
      processed = b + 1;
      if (stop_condition_met(cc, result)) {
        stopped = true;
        break;
      }
    }
    next_run += n;
    executed_this_call += processed;
    if (monitor_ != nullptr) {
      obs::CampaignProgress progress = progress_snapshot(
          coordinator_->name(), result, cc.runs, state.coverage().coverage(), elapsed());
      fill_latency_split(progress);
      monitor_->on_progress(progress);
    }
    if (checkpointing) {
      runs_since_checkpoint += processed;
      if (runs_since_checkpoint >= cc.checkpoint_every) {
        write_checkpoint(result);
        runs_since_checkpoint = 0;
      }
    }
    if (!stopped && cc.preempt_after != 0 && executed_this_call >= cc.preempt_after &&
        next_run < cc.runs) {
      if (!cc.checkpoint_path.empty()) write_checkpoint(result);
      result.interrupted = true;
      break;
    }
  }

  // Tell the server the job is done so pool workers can drop its scenario.
  // Best-effort: if the link is down the orphan grace timer cleans up instead.
  if (channel.has_value() && channel->open()) {
    (void)channel->send_frame(MsgType::kRelease, encode_job(JobMsg{job}));
  }
  fold_channel();

  fault::detail::finalize(result, state);
  if (!result.interrupted) {
    if (metrics_ != nullptr) {
      result.publish_metrics(*metrics_);
      publish_fleet_metrics();
      if (remote_timed_runs > 0) {
        metrics_->histogram("dist.queue_wait_ms", 0.0, 5000.0, 500).merge(queue_wait_ms);
        metrics_->histogram("dist.replay_ms", 0.0, 5000.0, 500).merge(replay_ms);
      }
    }
    if (monitor_ != nullptr) {
      obs::CampaignProgress progress =
          progress_snapshot(coordinator_->name(), result, cc.runs, result.final_coverage,
                            elapsed(), /*include_latency=*/true);
      fill_latency_split(progress);
      monitor_->on_complete(progress);
    }
  }
  return result;
}

}  // namespace vps::dist

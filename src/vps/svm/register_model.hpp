#pragma once

/// Register abstraction layer (uvm_reg subset): named registers and fields
/// with front-door access through a TLM initiator socket, a mirror that
/// tracks the expected hardware state, and access statistics usable as a
/// register-coverage metric. Lets peripheral testbenches be written against
/// names instead of magic addresses.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "vps/support/ensure.hpp"
#include "vps/tlm/payload.hpp"
#include "vps/tlm/sockets.hpp"

namespace vps::svm {

class RegisterModel {
 public:
  struct Field {
    std::string name;
    unsigned lsb = 0;
    unsigned width = 1;
  };

  explicit RegisterModel(std::string name) : name_(std::move(name)) {}

  /// Declares a register at an absolute bus address.
  void add_register(const std::string& reg_name, std::uint64_t address,
                    std::uint32_t reset_value = 0);
  /// Declares a named bit field of a register.
  void add_field(const std::string& reg_name, const std::string& field_name, unsigned lsb,
                 unsigned width);

  /// Binds the bus port used for front-door accesses.
  void bind(tlm::InitiatorSocket& socket) noexcept { socket_ = &socket; }

  // --- front-door access ----------------------------------------------------
  /// Reads the register via the bus; updates the mirror. Throws on a bus
  /// error response.
  [[nodiscard]] std::uint32_t read(const std::string& reg_name);
  /// Writes the register via the bus; updates the mirror.
  void write(const std::string& reg_name, std::uint32_t value);
  /// Reads a single field (front-door read of the enclosing register).
  [[nodiscard]] std::uint32_t read_field(const std::string& reg_name,
                                         const std::string& field_name);
  /// Read-modify-write of a single field.
  void write_field(const std::string& reg_name, const std::string& field_name,
                   std::uint32_t value);

  // --- mirror ---------------------------------------------------------------
  /// Last known hardware value (updated by read/write).
  [[nodiscard]] std::uint32_t mirrored(const std::string& reg_name) const;
  /// Front-door read and compare against the mirror; true when they agree.
  [[nodiscard]] bool check(const std::string& reg_name);
  /// Resets every mirror to its declared reset value.
  void reset_mirrors();

  // --- introspection / coverage ----------------------------------------------
  [[nodiscard]] std::size_t register_count() const noexcept { return registers_.size(); }
  [[nodiscard]] std::uint64_t accesses(const std::string& reg_name) const;
  /// Fraction of declared registers accessed at least once.
  [[nodiscard]] double access_coverage() const;
  [[nodiscard]] std::uint64_t address_of(const std::string& reg_name) const;

 private:
  struct Reg {
    std::uint64_t address = 0;
    std::uint32_t reset_value = 0;
    std::uint32_t mirror = 0;
    std::uint64_t accesses = 0;
    std::map<std::string, Field> fields;
  };

  Reg& reg(const std::string& reg_name);
  [[nodiscard]] const Reg& reg(const std::string& reg_name) const;
  [[nodiscard]] static std::uint32_t field_mask(const Field& f) {
    return (f.width >= 32 ? 0xFFFFFFFFu : ((1u << f.width) - 1u)) << f.lsb;
  }
  std::uint32_t bus_read(std::uint64_t address);
  void bus_write(std::uint64_t address, std::uint32_t value);

  std::string name_;
  tlm::InitiatorSocket* socket_ = nullptr;
  std::map<std::string, Reg> registers_;
};

}  // namespace vps::svm

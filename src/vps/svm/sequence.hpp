#pragma once

/// Sequence / sequencer / driver triple (UVM pull model): sequences produce
/// request items into the sequencer; the driver pulls them with
/// get_next_item / item_done and converts them to DUT activity.

#include <deque>
#include <memory>

#include "vps/sim/fifo.hpp"
#include "vps/svm/component.hpp"

namespace vps::svm {

template <typename Req>
class Sequencer : public Component {
 public:
  Sequencer(Component& parent, std::string name)
      : Component(parent, std::move(name)),
        queue_(kernel(), full_name() + ".queue", 8),
        done_(kernel(), full_name() + ".done") {}

  /// Sequence side: submits an item and waits until the driver consumed it.
  [[nodiscard]] sim::Coro send(Req item) {
    co_await queue_.push(std::move(item));
    const std::uint64_t my_seq = submitted_++;  // queue insertion order
    while (consumed_ <= my_seq) co_await done_;
  }

  /// Driver side: blocks until an item is available (written into `out`).
  [[nodiscard]] sim::Coro get_next_item(Req& out) { co_await queue_.pop(out); }

  /// Driver side: completion handshake.
  void item_done() {
    ++consumed_;
    done_.notify();
  }

  [[nodiscard]] std::uint64_t items_consumed() const noexcept { return consumed_; }

 private:
  sim::Fifo<Req> queue_;
  sim::Event done_;
  std::uint64_t submitted_ = 0;
  std::uint64_t consumed_ = 0;
};

/// Base class for stimulus generators. Concrete sequences override body().
template <typename Req>
class Sequence {
 public:
  virtual ~Sequence() = default;
  /// Generates items via sequencer.send(); runs inside the starting process.
  [[nodiscard]] virtual sim::Coro body(Sequencer<Req>& sequencer) = 0;

  /// Convenience: runs the sequence holding the root objection so the run
  /// phase cannot end mid-sequence.
  [[nodiscard]] sim::Coro start(Sequencer<Req>& sequencer) {
    sequencer.objection().raise();
    co_await body(sequencer);
    sequencer.objection().drop();
  }
};

/// Base driver: pulls items forever and applies them via drive().
template <typename Req>
class Driver : public Component {
 public:
  Driver(Component& parent, std::string name) : Component(parent, std::move(name)) {}

  void connect(Sequencer<Req>& sequencer) noexcept { sequencer_ = &sequencer; }

  sim::Coro run_phase() override {
    support::ensure(sequencer_ != nullptr, full_name() + ": driver not connected");
    for (;;) {
      Req item{};
      co_await sequencer_->get_next_item(item);
      co_await drive(item);
      sequencer_->item_done();
    }
  }

  /// Converts one request into pin/transaction activity.
  [[nodiscard]] virtual sim::Coro drive(Req& item) = 0;

 private:
  Sequencer<Req>* sequencer_ = nullptr;
};

}  // namespace vps::svm

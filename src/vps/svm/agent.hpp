#pragma once

/// Thin structural conventions on top of Component: Monitor (observes the
/// DUT, broadcasts transactions), Scoreboard (in-order expected-vs-actual
/// comparison), Agent / Env / Test (grouping).

#include <deque>
#include <string>

#include "vps/svm/analysis.hpp"
#include "vps/svm/component.hpp"

namespace vps::svm {

/// Observes DUT activity and broadcasts transactions of type T.
template <typename T>
class Monitor : public Component {
 public:
  Monitor(Component& parent, std::string name) : Component(parent, std::move(name)) {}
  [[nodiscard]] AnalysisPort<T>& analysis_port() noexcept { return ap_; }

 protected:
  void publish(const T& transaction) {
    ++observed_;
    ap_.write(transaction);
  }
  [[nodiscard]] std::uint64_t observed() const noexcept { return observed_; }

 private:
  AnalysisPort<T> ap_;
  std::uint64_t observed_ = 0;
};

/// In-order scoreboard: expected transactions are queued, actuals compared
/// against the queue head; mismatches and leftovers raise errors.
template <typename T>
class Scoreboard : public Component, public AnalysisExport<T> {
 public:
  Scoreboard(Component& parent, std::string name) : Component(parent, std::move(name)) {}

  void expect(const T& transaction) { expected_.push_back(transaction); }

  void write(const T& actual) override {
    ++actuals_;
    if (expected_.empty()) {
      error("unexpected transaction (nothing expected)");
      return;
    }
    if (!(expected_.front() == actual)) {
      ++mismatches_;
      error("transaction mismatch at index " + std::to_string(actuals_ - 1));
    }
    expected_.pop_front();
  }

  void report_phase() override {
    if (!expected_.empty()) {
      error(std::to_string(expected_.size()) + " expected transaction(s) never observed");
    }
  }

  [[nodiscard]] std::uint64_t matched() const noexcept { return actuals_ - mismatches_; }
  [[nodiscard]] std::uint64_t mismatches() const noexcept { return mismatches_; }
  [[nodiscard]] std::size_t outstanding() const noexcept { return expected_.size(); }

 private:
  std::deque<T> expected_;
  std::uint64_t actuals_ = 0;
  std::uint64_t mismatches_ = 0;
};

/// Grouping components. Agents bundle sequencer+driver+monitor; Envs bundle
/// agents and scoreboards; Tests configure and start sequences.
class Agent : public Component {
 public:
  using Component::Component;
};

class Env : public Component {
 public:
  using Component::Component;
};

class Test : public Component {
 public:
  using Component::Component;
};

}  // namespace vps::svm

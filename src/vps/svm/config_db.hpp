#pragma once

/// Hierarchical configuration database (uvm_config_db subset): values are
/// stored under "<path>:<key>"; lookups try the exact component path first,
/// then walk up the hierarchy, then the global wildcard "*".

#include <any>
#include <map>
#include <optional>
#include <string>

#include "vps/svm/component.hpp"

namespace vps::svm {

class ConfigDb {
 public:
  template <typename T>
  void set(const std::string& path, const std::string& key, T value) {
    store_[path + ":" + key] = std::any(std::move(value));
  }

  /// Lookup for a component: its own path wins over ancestors over "*".
  template <typename T>
  std::optional<T> get(const Component& component, const std::string& key) const {
    std::string path = component.full_name();
    for (;;) {
      if (auto v = lookup<T>(path, key)) return v;
      const auto dot = path.rfind('.');
      if (dot == std::string::npos) break;
      path.resize(dot);
    }
    return lookup<T>("*", key);
  }

  template <typename T>
  std::optional<T> lookup(const std::string& path, const std::string& key) const {
    const auto it = store_.find(path + ":" + key);
    if (it == store_.end()) return std::nullopt;
    const T* value = std::any_cast<T>(&it->second);
    return value ? std::optional<T>(*value) : std::nullopt;
  }

  [[nodiscard]] std::size_t size() const noexcept { return store_.size(); }

 private:
  std::map<std::string, std::any> store_;
};

}  // namespace vps::svm

#include "vps/svm/component.hpp"

#include <cstdio>

#include "vps/support/ensure.hpp"

namespace vps::svm {

const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kInfo: return "INFO";
    case Severity::kWarning: return "WARNING";
    case Severity::kError: return "ERROR";
    case Severity::kFatal: return "FATAL";
  }
  return "?";
}

void ReportServer::report(Severity severity, const std::string& source,
                          const std::string& message) {
  ++counts_[static_cast<std::size_t>(severity)];
  std::string line = std::string(to_string(severity)) + " [" + source + "] " + message;
  if (verbose_) std::printf("%s\n", line.c_str());
  messages_.push_back(std::move(line));
}

Component::Component(Component& parent, std::string name)
    : parent_(&parent), root_(parent.root_), name_(std::move(name)),
      full_name_(parent.full_name_ + "." + name_) {
  parent.children_.push_back(this);
}

Component::Component(Root& self_as_root, sim::Kernel& /*kernel*/, std::string name)
    : parent_(nullptr), root_(&self_as_root), name_(std::move(name)), full_name_(name_) {}

sim::Kernel& Component::kernel() noexcept { return root_->kernel_ref(); }

Objection& Component::objection() noexcept { return root_->objection_ref(); }

void Component::info(const std::string& message) {
  root_->report_server().report(Severity::kInfo, full_name_, message);
}
void Component::warning(const std::string& message) {
  root_->report_server().report(Severity::kWarning, full_name_, message);
}
void Component::error(const std::string& message) {
  root_->report_server().report(Severity::kError, full_name_, message);
}

Root::Root(sim::Kernel& kernel, std::string name)
    : Component(*this, kernel, std::move(name)), kernel_(kernel), objection_(kernel) {}

void Root::for_each_top_down(Component& c, const std::function<void(Component&)>& fn) {
  fn(c);
  // Children may be added during build; index loop stays valid.
  for (std::size_t i = 0; i < c.children_.size(); ++i) {
    for_each_top_down(*c.children_[i], fn);
  }
}

void Root::for_each_bottom_up(Component& c, const std::function<void(Component&)>& fn) {
  for (Component* child : c.children_) for_each_bottom_up(*child, fn);
  fn(c);
}

bool Root::run_test(sim::Time timeout) {
  for_each_top_down(*this, [](Component& c) { c.build_phase(); });
  for_each_bottom_up(*this, [](Component& c) { c.connect_phase(); });
  for_each_top_down(*this, [this](Component& c) {
    kernel_.spawn(c.full_name() + ".run_phase", c.run_phase());
  });

  // Watcher: stop simulation when every objection is dropped. Give the run
  // phases one delta to raise their objections first.
  bool drained = false;
  kernel_.spawn(full_name() + ".objection_watch", [](Root& root, bool& drained) -> sim::Coro {
    co_await sim::delay(sim::Time::zero());
    while (root.objection_.count() != 0) co_await root.objection_.all_dropped_event();
    drained = true;
    root.kernel_.stop();
  }(*this, drained));

  kernel_.run(kernel_.now() + timeout);
  timed_out_ = !drained;
  if (timed_out_) {
    report_server_.report(Severity::kError, full_name(),
                          "run phase timeout after " + timeout.to_string());
  }
  for_each_bottom_up(*this, [](Component& c) { c.report_phase(); });
  return report_server_.passed();
}

}  // namespace vps::svm

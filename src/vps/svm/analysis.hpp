#pragma once

/// Analysis ports: one-to-many, non-blocking broadcast from monitors to
/// scoreboards/coverage collectors (uvm_analysis_port subset).

#include <functional>
#include <vector>

namespace vps::svm {

template <typename T>
class AnalysisExport {
 public:
  virtual ~AnalysisExport() = default;
  virtual void write(const T& transaction) = 0;
};

template <typename T>
class AnalysisPort {
 public:
  void connect(AnalysisExport<T>& sink) { sinks_.push_back(&sink); }
  void connect(std::function<void(const T&)> fn) { fns_.push_back(std::move(fn)); }

  void write(const T& transaction) {
    for (auto* sink : sinks_) sink->write(transaction);
    for (auto& fn : fns_) fn(transaction);
  }

  [[nodiscard]] std::size_t subscriber_count() const noexcept {
    return sinks_.size() + fns_.size();
  }

 private:
  std::vector<AnalysisExport<T>*> sinks_;
  std::vector<std::function<void(const T&)>> fns_;
};

}  // namespace vps::svm

#pragma once

/// SVM — a UVM-subset verification library in C++ on the vps::sim kernel,
/// modeled after the SystemC UVM/SVM efforts the paper cites ([33-36]):
/// component hierarchy with build/connect/run/report phasing, objections
/// for run-phase termination, and a report server with severity counting.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "vps/sim/kernel.hpp"
#include "vps/sim/module.hpp"

namespace vps::svm {

class Root;

/// Message severity for the report server.
enum class Severity : std::uint8_t { kInfo, kWarning, kError, kFatal };

[[nodiscard]] const char* to_string(Severity s) noexcept;

/// Counts testbench messages; errors decide pass/fail at report time.
class ReportServer {
 public:
  void report(Severity severity, const std::string& source, const std::string& message);
  [[nodiscard]] std::uint64_t count(Severity s) const noexcept {
    return counts_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] bool passed() const noexcept {
    return count(Severity::kError) == 0 && count(Severity::kFatal) == 0;
  }
  /// When true (default off), messages are echoed to stdout.
  void set_verbose(bool v) noexcept { verbose_ = v; }
  [[nodiscard]] const std::vector<std::string>& messages() const noexcept { return messages_; }

 private:
  std::uint64_t counts_[4] = {0, 0, 0, 0};
  std::vector<std::string> messages_;
  bool verbose_ = false;
};

/// Run-phase termination control (uvm_objection).
class Objection {
 public:
  explicit Objection(sim::Kernel& kernel)
      : all_dropped_(kernel, "svm.objection.all_dropped") {}

  void raise() { ++count_; }
  void drop() {
    if (count_ > 0 && --count_ == 0) all_dropped_.notify();
  }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] sim::Event& all_dropped_event() noexcept { return all_dropped_; }

 private:
  std::uint64_t count_ = 0;
  sim::Event all_dropped_;
};

/// Base class of all testbench components (uvm_component). Components are
/// created in constructors (parent-first); the Root then drives phasing:
/// build (top-down), connect (bottom-up), run (parallel processes), and
/// report (bottom-up) after the objection count drains or the timeout hits.
class Component {
 public:
  Component(Component& parent, std::string name);
  virtual ~Component() = default;
  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& full_name() const noexcept { return full_name_; }
  [[nodiscard]] Component* parent() const noexcept { return parent_; }
  [[nodiscard]] const std::vector<Component*>& children() const noexcept { return children_; }
  [[nodiscard]] sim::Kernel& kernel() noexcept;
  [[nodiscard]] Root& root() noexcept { return *root_; }
  [[nodiscard]] sim::Time now() noexcept { return kernel().now(); }

  // --- phases (override as needed) ----------------------------------------
  virtual void build_phase() {}
  virtual void connect_phase() {}
  /// Concurrent behaviour; completion is governed by objections, not by the
  /// coroutine finishing.
  virtual sim::Coro run_phase() { co_return; }
  virtual void report_phase() {}

  // --- services ------------------------------------------------------------
  void info(const std::string& message);
  void warning(const std::string& message);
  void error(const std::string& message);
  [[nodiscard]] Objection& objection() noexcept;

 protected:
  /// Root constructor only.
  Component(Root& self_as_root, sim::Kernel& kernel, std::string name);

 private:
  friend class Root;
  Component* parent_ = nullptr;
  Root* root_ = nullptr;
  std::string name_;
  std::string full_name_;
  std::vector<Component*> children_;
};

/// Testbench top: owns the kernel reference, the report server and the
/// objection, and executes the phase schedule.
class Root : public Component {
 public:
  Root(sim::Kernel& kernel, std::string name = "tb");

  /// Runs all phases; returns at objection drain or `timeout`, whichever is
  /// first. Returns the report server's verdict.
  bool run_test(sim::Time timeout = sim::Time::sec(1));

  [[nodiscard]] ReportServer& report_server() noexcept { return report_server_; }
  [[nodiscard]] Objection& objection_ref() noexcept { return objection_; }
  [[nodiscard]] sim::Kernel& kernel_ref() noexcept { return kernel_; }
  [[nodiscard]] bool timed_out() const noexcept { return timed_out_; }

 private:
  static void for_each_top_down(Component& c, const std::function<void(Component&)>& fn);
  static void for_each_bottom_up(Component& c, const std::function<void(Component&)>& fn);

  sim::Kernel& kernel_;
  ReportServer report_server_;
  Objection objection_;
  bool timed_out_ = false;
};

}  // namespace vps::svm

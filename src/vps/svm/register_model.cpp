#include "vps/svm/register_model.hpp"

namespace vps::svm {

using support::ensure;

void RegisterModel::add_register(const std::string& reg_name, std::uint64_t address,
                                 std::uint32_t reset_value) {
  ensure(!registers_.contains(reg_name), "RegisterModel: duplicate register " + reg_name);
  Reg r;
  r.address = address;
  r.reset_value = reset_value;
  r.mirror = reset_value;
  registers_.emplace(reg_name, std::move(r));
}

void RegisterModel::add_field(const std::string& reg_name, const std::string& field_name,
                              unsigned lsb, unsigned width) {
  Reg& r = reg(reg_name);
  ensure(width >= 1 && lsb + width <= 32, "RegisterModel: field geometry out of range");
  ensure(!r.fields.contains(field_name), "RegisterModel: duplicate field " + field_name);
  const Field f{field_name, lsb, width};
  for (const auto& [other_name, other] : r.fields) {
    ensure((field_mask(f) & field_mask(other)) == 0,
           "RegisterModel: field " + field_name + " overlaps " + other_name);
  }
  r.fields.emplace(field_name, f);
}

RegisterModel::Reg& RegisterModel::reg(const std::string& reg_name) {
  const auto it = registers_.find(reg_name);
  ensure(it != registers_.end(), "RegisterModel: unknown register " + reg_name);
  return it->second;
}

const RegisterModel::Reg& RegisterModel::reg(const std::string& reg_name) const {
  const auto it = registers_.find(reg_name);
  ensure(it != registers_.end(), "RegisterModel: unknown register " + reg_name);
  return it->second;
}

std::uint32_t RegisterModel::bus_read(std::uint64_t address) {
  ensure(socket_ != nullptr, "RegisterModel: no bus socket bound");
  tlm::GenericPayload p(tlm::Command::kRead, address, 4);
  sim::Time delay = sim::Time::zero();
  socket_->b_transport(p, delay);
  ensure(p.ok(), "RegisterModel: bus error reading 0x" + std::to_string(address));
  return static_cast<std::uint32_t>(p.value_le());
}

void RegisterModel::bus_write(std::uint64_t address, std::uint32_t value) {
  ensure(socket_ != nullptr, "RegisterModel: no bus socket bound");
  tlm::GenericPayload p(tlm::Command::kWrite, address, 4);
  p.set_value_le(value);
  sim::Time delay = sim::Time::zero();
  socket_->b_transport(p, delay);
  ensure(p.ok(), "RegisterModel: bus error writing 0x" + std::to_string(address));
}

std::uint32_t RegisterModel::read(const std::string& reg_name) {
  Reg& r = reg(reg_name);
  const std::uint32_t value = bus_read(r.address);
  r.mirror = value;
  ++r.accesses;
  return value;
}

void RegisterModel::write(const std::string& reg_name, std::uint32_t value) {
  Reg& r = reg(reg_name);
  bus_write(r.address, value);
  r.mirror = value;
  ++r.accesses;
}

std::uint32_t RegisterModel::read_field(const std::string& reg_name,
                                        const std::string& field_name) {
  const std::uint32_t value = read(reg_name);
  const Reg& r = reg(reg_name);
  const auto it = r.fields.find(field_name);
  ensure(it != r.fields.end(), "RegisterModel: unknown field " + field_name);
  return (value & field_mask(it->second)) >> it->second.lsb;
}

void RegisterModel::write_field(const std::string& reg_name, const std::string& field_name,
                                std::uint32_t value) {
  Reg& r = reg(reg_name);
  const auto it = r.fields.find(field_name);
  ensure(it != r.fields.end(), "RegisterModel: unknown field " + field_name);
  const std::uint32_t mask = field_mask(it->second);
  const std::uint32_t current = bus_read(r.address);
  const std::uint32_t next = (current & ~mask) | ((value << it->second.lsb) & mask);
  bus_write(r.address, next);
  r.mirror = next;
  ++r.accesses;
}

std::uint32_t RegisterModel::mirrored(const std::string& reg_name) const {
  return reg(reg_name).mirror;
}

bool RegisterModel::check(const std::string& reg_name) {
  Reg& r = reg(reg_name);
  const std::uint32_t hw = bus_read(r.address);
  ++r.accesses;
  return hw == r.mirror;
}

void RegisterModel::reset_mirrors() {
  for (auto& [name, r] : registers_) r.mirror = r.reset_value;
}

std::uint64_t RegisterModel::accesses(const std::string& reg_name) const {
  return reg(reg_name).accesses;
}

double RegisterModel::access_coverage() const {
  if (registers_.empty()) return 1.0;
  std::size_t hit = 0;
  for (const auto& [name, r] : registers_) hit += r.accesses > 0;
  return static_cast<double>(hit) / static_cast<double>(registers_.size());
}

std::uint64_t RegisterModel::address_of(const std::string& reg_name) const {
  return reg(reg_name).address;
}

}  // namespace vps::svm

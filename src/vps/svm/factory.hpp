#pragma once

/// SVM factory: string-keyed component creation with type and instance
/// overrides — the UVM reconfiguration mechanism that lets a test swap,
/// e.g., a passive monitor for an error-injecting one without touching the
/// environment code.

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "vps/support/ensure.hpp"
#include "vps/svm/component.hpp"

namespace vps::svm {

class Factory {
 public:
  using Creator = std::function<std::unique_ptr<Component>(Component& parent, std::string name)>;

  /// Registers a component type under a lookup key. Re-registration of the
  /// same key replaces the creator (convenient for tests).
  template <typename T>
  void register_type(const std::string& key) {
    creators_[key] = [](Component& parent, std::string name) -> std::unique_ptr<Component> {
      return std::make_unique<T>(parent, std::move(name));
    };
  }

  /// All future creations of `original_key` produce `override_key` instead.
  void set_type_override(const std::string& original_key, const std::string& override_key) {
    type_overrides_[original_key] = override_key;
  }

  /// Override only for a specific instance path (exact full-name match of
  /// the created component, i.e. "<parent-full-name>.<name>").
  void set_instance_override(const std::string& instance_path, const std::string& original_key,
                             const std::string& override_key) {
    instance_overrides_[instance_path + "/" + original_key] = override_key;
  }

  /// Creates a component, honoring instance overrides first, then type
  /// overrides (chained), then the original registration.
  std::unique_ptr<Component> create(const std::string& key, Component& parent, std::string name) {
    std::string resolved = key;
    const auto inst = instance_overrides_.find(parent.full_name() + "." + name + "/" + key);
    if (inst != instance_overrides_.end()) {
      resolved = inst->second;
    } else {
      // Follow type-override chains (A->B, B->C resolves A to C).
      for (int depth = 0; depth < 32; ++depth) {
        const auto it = type_overrides_.find(resolved);
        if (it == type_overrides_.end()) break;
        resolved = it->second;
      }
    }
    const auto it = creators_.find(resolved);
    support::ensure(it != creators_.end(), "Factory: no type registered under '" + resolved + "'");
    return it->second(parent, std::move(name));
  }

  /// Typed convenience wrapper; the created component must derive from T.
  template <typename T>
  T& create_as(const std::string& key, Component& parent, std::string name,
               std::vector<std::unique_ptr<Component>>& storage) {
    auto component = create(key, parent, std::move(name));
    T* typed = dynamic_cast<T*>(component.get());
    support::ensure(typed != nullptr,
                    "Factory: '" + key + "' did not produce the expected component type");
    storage.push_back(std::move(component));
    return *typed;
  }

  [[nodiscard]] bool has_type(const std::string& key) const { return creators_.contains(key); }
  void clear_overrides() {
    type_overrides_.clear();
    instance_overrides_.clear();
  }

 private:
  std::map<std::string, Creator> creators_;
  std::map<std::string, std::string> type_overrides_;
  std::map<std::string, std::string> instance_overrides_;
};

}  // namespace vps::svm

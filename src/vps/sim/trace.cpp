#include "vps/sim/trace.hpp"

#include "vps/support/ensure.hpp"

namespace vps::sim {

VcdTracer::VcdTracer(Kernel& kernel, const std::string& path) : kernel_(kernel), out_(path) {
  support::ensure(out_.is_open(), "VcdTracer: cannot open " + path);
}

VcdTracer::~VcdTracer() {
  detach();
  finalize_header();
  out_.flush();
}

void VcdTracer::detach() {
  for (const auto& detacher : detachers_) detacher();
  detachers_.clear();
}

std::string VcdTracer::next_id() {
  // VCD identifier code: printable characters from '!' onwards.
  std::string id;
  std::uint32_t n = id_counter_++;
  do {
    id += static_cast<char>('!' + n % 94);
    n /= 94;
  } while (n != 0);
  return id;
}

void VcdTracer::declare(const std::string& name, const std::string& id, std::size_t bits) {
  support::ensure(!header_written_, "VcdTracer: cannot add signals after tracing started");
  std::string clean = name;
  for (char& c : clean) {
    if (c == ' ') c = '_';
  }
  declarations_ += "$var wire " + std::to_string(bits) + " " + id + " " + clean + " $end\n";
}

void VcdTracer::trace(Signal<bool>& signal) {
  const std::string id = next_id();
  declare(signal.name(), id, 1);
  const CommitHookId hook =
      signal.add_commit_hook([this, id](const bool& v) { record_scalar(id, v); });
  detachers_.push_back([&signal, hook] { signal.remove_commit_hook(hook); });
  initial_scalar_.emplace_back(id, signal.read());
}

void VcdTracer::trace(Signal<double>& signal) {
  const std::string id = next_id();
  support::ensure(!header_written_, "VcdTracer: cannot add signals after tracing started");
  std::string clean = signal.name();
  for (char& c : clean) {
    if (c == ' ') c = '_';
  }
  declarations_ += "$var real 64 " + id + " " + clean + " $end\n";
  const CommitHookId hook =
      signal.add_commit_hook([this, id](const double& v) { record_real(id, v); });
  detachers_.push_back([&signal, hook] { signal.remove_commit_hook(hook); });
  initial_real_.emplace_back(id, signal.read());
}

void VcdTracer::finalize_header() {
  if (header_written_) return;
  header_written_ = true;
  out_ << "$timescale 1ps $end\n$scope module vps $end\n"
       << declarations_ << "$upscope $end\n$enddefinitions $end\n$dumpvars\n";
  for (const auto& [id, v] : initial_scalar_) out_ << (v ? '1' : '0') << id << '\n';
  for (const auto& init : initial_vector_) {
    out_ << 'b';
    for (std::size_t bit = init.bits; bit-- > 0;) out_ << (((init.value >> bit) & 1u) ? '1' : '0');
    out_ << ' ' << init.id << '\n';
  }
  for (const auto& [id, v] : initial_real_) out_ << 'r' << v << ' ' << id << '\n';
  out_ << "$end\n";
}

void VcdTracer::emit_time() {
  finalize_header();
  const std::uint64_t t = kernel_.now().picoseconds();
  if (!time_emitted_ || t != last_time_ps_) {
    out_ << '#' << t << '\n';
    last_time_ps_ = t;
    time_emitted_ = true;
  }
}

void VcdTracer::record_scalar(const std::string& id, bool value) {
  emit_time();
  out_ << (value ? '1' : '0') << id << '\n';
  ++records_;
}

void VcdTracer::record_vector(const std::string& id, std::uint64_t value, std::size_t bits) {
  emit_time();
  out_ << 'b';
  for (std::size_t bit = bits; bit-- > 0;) out_ << (((value >> bit) & 1u) ? '1' : '0');
  out_ << ' ' << id << '\n';
  ++records_;
}

void VcdTracer::record_real(const std::string& id, double value) {
  emit_time();
  out_ << 'r' << value << ' ' << id << '\n';
  ++records_;
}

}  // namespace vps::sim

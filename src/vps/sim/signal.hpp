#pragma once

#include <functional>
#include <string>
#include <utility>

#include "vps/sim/kernel.hpp"

namespace vps::sim {

/// Primitive channel with sc_signal semantics: writes during the evaluation
/// phase become visible in the next delta cycle; the value-changed event
/// fires only when the committed value actually differs.
template <typename T>
class Signal final : public UpdateHook {
 public:
  Signal(Kernel& kernel, std::string name, T initial = T{})
      : kernel_(kernel),
        name_(std::move(name)),
        current_(initial),
        next_(initial),
        changed_(kernel, name_ + ".changed") {}

  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  [[nodiscard]] const T& read() const noexcept { return current_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Event& changed() noexcept { return changed_; }
  [[nodiscard]] Kernel& kernel() noexcept { return kernel_; }
  [[nodiscard]] std::uint64_t change_count() const noexcept { return change_count_; }

  /// Schedules the value for commit at the next update phase. The last write
  /// within one evaluation phase wins.
  void write(const T& value) {
    next_ = value;
    if (!update_pending_) {
      update_pending_ = true;
      kernel_.request_update(*this);
    }
  }

  /// Bypasses the delta protocol: sets the value immediately and fires the
  /// changed event as an immediate notification. Used by fault injectors to
  /// model asynchronous upsets that do not respect the design's clocking.
  void force(const T& value) {
    if (value == current_) return;
    current_ = value;
    next_ = value;
    ++change_count_;
    if (on_commit_) on_commit_(current_);
    changed_.notify_immediate();
  }

  /// Observation hook used by tracers and monitors; called after each commit.
  void set_commit_hook(std::function<void(const T&)> hook) { on_commit_ = std::move(hook); }

  void perform_update() override {
    update_pending_ = false;
    if (next_ == current_) return;
    current_ = next_;
    ++change_count_;
    if (on_commit_) on_commit_(current_);
    changed_.notify();
  }

 private:
  Kernel& kernel_;
  std::string name_;
  T current_;
  T next_;
  Event changed_;
  bool update_pending_ = false;
  std::uint64_t change_count_ = 0;
  std::function<void(const T&)> on_commit_;
};

}  // namespace vps::sim

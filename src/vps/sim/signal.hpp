#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "vps/sim/kernel.hpp"

namespace vps::sim {

/// Handle returned by Signal<T>::add_commit_hook; never reused per signal.
using CommitHookId = std::uint64_t;

/// Primitive channel with sc_signal semantics: writes during the evaluation
/// phase become visible in the next delta cycle; the value-changed event
/// fires only when the committed value actually differs.
template <typename T>
class Signal final : public UpdateHook {
 public:
  Signal(Kernel& kernel, std::string name, T initial = T{})
      : kernel_(kernel),
        name_(std::move(name)),
        current_(initial),
        next_(initial),
        changed_(kernel, name_ + ".changed") {}

  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  [[nodiscard]] const T& read() const noexcept { return current_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Event& changed() noexcept { return changed_; }
  [[nodiscard]] Kernel& kernel() noexcept { return kernel_; }
  [[nodiscard]] std::uint64_t change_count() const noexcept { return change_count_; }

  /// Schedules the value for commit at the next update phase. The last write
  /// within one evaluation phase wins.
  void write(const T& value) {
    next_ = value;
    if (!update_pending_) {
      update_pending_ = true;
      kernel_.request_update(*this);
    }
  }

  /// Bypasses the delta protocol: sets the value immediately and fires the
  /// changed event as an immediate notification. Used by fault injectors to
  /// model asynchronous upsets that do not respect the design's clocking.
  void force(const T& value) {
    if (value == current_) return;
    current_ = value;
    next_ = value;
    ++change_count_;
    run_commit_hooks();
    changed_.notify_immediate();
  }

  /// force() plus a provenance tag: the committed value is marked as carrying
  /// fault `fault_id` until the next clean commit overwrites it. The sim
  /// layer cannot depend on obs, so the tag is a dumb integer here;
  /// obs::ProvenanceTracker::watch_signal turns tagged commits into
  /// propagation observations.
  void force_poisoned(const T& value, std::uint64_t fault_id) {
    poison_id_ = fault_id;
    force(value);
  }

  /// Fault id of the last poisoned force, or 0 once a clean write committed.
  [[nodiscard]] std::uint64_t poison_id() const noexcept { return poison_id_; }

  /// Registers an observation hook (tracer, monitor, scoreboard); every
  /// registered hook runs in registration order after each commit. Returns a
  /// handle for remove_commit_hook, so independent observers can attach and
  /// detach without evicting each other (the old single-slot set_commit_hook
  /// silently dropped whichever observer attached first).
  CommitHookId add_commit_hook(std::function<void(const T&)> hook) {
    const CommitHookId id = next_hook_id_++;
    hooks_.push_back({id, std::move(hook)});
    return id;
  }

  /// Detaches a hook; unknown handles are ignored.
  void remove_commit_hook(CommitHookId id) {
    std::erase_if(hooks_, [id](const Hook& h) { return h.id == id; });
  }

  [[nodiscard]] std::size_t commit_hook_count() const noexcept { return hooks_.size(); }

  /// Value-type image for snapshot-and-fork replay. Taken at a quiescent
  /// instant (no update pending), so current == next by construction.
  struct Snapshot {
    T value{};
    std::uint64_t poison_id = 0;
    std::uint64_t change_count = 0;
  };

  [[nodiscard]] Snapshot snapshot() const {
    return Snapshot{current_, poison_id_, change_count_};
  }

  /// Silently overlays a snapshot: no commit hooks run and no changed event
  /// fires (the changed event's scheduler state is restored by
  /// Kernel::restore, keyed by event ordinal).
  void restore(const Snapshot& s) {
    current_ = s.value;
    next_ = s.value;
    poison_id_ = s.poison_id;
    change_count_ = s.change_count;
    update_pending_ = false;
  }

  void discard_update() noexcept override {
    update_pending_ = false;
    next_ = current_;
  }

  void perform_update() override {
    update_pending_ = false;
    if (next_ == current_) return;
    current_ = next_;
    poison_id_ = 0;  // a clean delta-protocol commit overwrites the fault value
    ++change_count_;
    run_commit_hooks();
    changed_.notify();
  }

 private:
  struct Hook {
    CommitHookId id;
    std::function<void(const T&)> fn;
  };

  void run_commit_hooks() {
    for (const Hook& hook : hooks_) hook.fn(current_);
  }

  Kernel& kernel_;
  std::string name_;
  T current_;
  T next_;
  Event changed_;
  bool update_pending_ = false;
  std::uint64_t poison_id_ = 0;
  std::uint64_t change_count_ = 0;
  std::vector<Hook> hooks_;
  CommitHookId next_hook_id_ = 1;
};

}  // namespace vps::sim

#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "vps/sim/signal.hpp"

namespace vps::sim {

/// Value-change-dump writer. Signals are attached before simulation starts;
/// each committed change is recorded with the kernel timestamp, producing a
/// standard VCD file viewable in GTKWave — the observability advantage of
/// VPs the paper emphasizes (easy tracking of error propagation).
///
/// Lifetime: the tracer registers a commit hook per traced signal and keeps
/// the remove handle; the destructor (or detach()) removes every hook, so a
/// tracer may be destroyed mid-simulation while its signals live on. Traced
/// signals must still be alive at that point — destroy the tracer before
/// the signals (or call detach() while they exist).
class VcdTracer {
 public:
  VcdTracer(Kernel& kernel, const std::string& path);
  ~VcdTracer();
  VcdTracer(const VcdTracer&) = delete;
  VcdTracer& operator=(const VcdTracer&) = delete;

  /// Attaches a boolean signal as a 1-bit wire.
  void trace(Signal<bool>& signal);

  /// Attaches an integral signal as an n-bit vector.
  template <typename T>
    requires std::is_integral_v<T> && (!std::is_same_v<T, bool>)
  void trace(Signal<T>& signal) {
    const std::string id = next_id();
    declare(signal.name(), id, sizeof(T) * 8);
    const CommitHookId hook = signal.add_commit_hook([this, id](const T& v) {
      record_vector(id, static_cast<std::uint64_t>(v), sizeof(T) * 8);
    });
    detachers_.push_back([&signal, hook] { signal.remove_commit_hook(hook); });
    initial_vector_.push_back({id, static_cast<std::uint64_t>(signal.read()), sizeof(T) * 8});
  }

  /// Attaches a real-valued signal.
  void trace(Signal<double>& signal);

  /// Removes every commit hook this tracer registered. Idempotent; called
  /// by the destructor so destroying the tracer before its signals cannot
  /// leave hooks that capture a dangling `this`.
  void detach();

  /// Writes the header and the initial value dump; implicit on first record.
  void finalize_header();

  [[nodiscard]] std::uint64_t change_records() const noexcept { return records_; }

 private:
  struct VectorInit {
    std::string id;
    std::uint64_t value;
    std::size_t bits;
  };

  std::string next_id();
  void declare(const std::string& name, const std::string& id, std::size_t bits);
  void emit_time();
  void record_scalar(const std::string& id, bool value);
  void record_vector(const std::string& id, std::uint64_t value, std::size_t bits);
  void record_real(const std::string& id, double value);

  Kernel& kernel_;
  std::ofstream out_;
  std::string declarations_;
  bool header_written_ = false;
  std::uint64_t last_time_ps_ = 0;
  bool time_emitted_ = false;
  std::uint32_t id_counter_ = 0;
  std::uint64_t records_ = 0;
  std::vector<std::pair<std::string, bool>> initial_scalar_;
  std::vector<VectorInit> initial_vector_;
  std::vector<std::pair<std::string, double>> initial_real_;
  std::vector<std::function<void()>> detachers_;
};

}  // namespace vps::sim

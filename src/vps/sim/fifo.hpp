#pragma once

#include <deque>
#include <optional>
#include <string>
#include <utility>

#include "vps/sim/kernel.hpp"
#include "vps/support/ensure.hpp"

namespace vps::sim {

/// Bounded FIFO channel (sc_fifo analogue). Blocking access is provided as
/// awaitable sub-coroutines so thread processes can `co_await fifo.push(x)`.
template <typename T>
class Fifo {
 public:
  Fifo(Kernel& kernel, std::string name, std::size_t capacity = 16)
      : kernel_(kernel),
        name_(std::move(name)),
        capacity_(capacity),
        written_(kernel, name_ + ".written"),
        read_(kernel, name_ + ".read") {
    support::ensure(capacity_ > 0, "Fifo capacity must be positive");
  }

  Fifo(const Fifo&) = delete;
  Fifo& operator=(const Fifo&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] bool full() const noexcept { return items_.size() >= capacity_; }
  [[nodiscard]] Event& written_event() noexcept { return written_; }
  [[nodiscard]] Event& read_event() noexcept { return read_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Non-blocking push; false when full.
  bool nb_push(T value) {
    if (full()) return false;
    items_.push_back(std::move(value));
    written_.notify();
    return true;
  }

  /// Non-blocking pop; nullopt when empty.
  std::optional<T> nb_pop() {
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    read_.notify();
    return value;
  }

  [[nodiscard]] const T& front() const {
    support::ensure(!items_.empty(), "Fifo::front on empty fifo");
    return items_.front();
  }

  /// Blocking push: suspends the calling process while the FIFO is full.
  [[nodiscard]] Coro push(T value) {
    while (full()) co_await read_;
    items_.push_back(std::move(value));
    written_.notify();
  }

  /// Blocking pop into `out`: suspends while empty. (Coro carries no value,
  /// so the result is returned through the reference.)
  [[nodiscard]] Coro pop(T& out) {
    while (items_.empty()) co_await written_;
    out = std::move(items_.front());
    items_.pop_front();
    read_.notify();
  }

 private:
  Kernel& kernel_;
  std::string name_;
  std::size_t capacity_;
  std::deque<T> items_;
  Event written_;
  Event read_;
};

}  // namespace vps::sim

#include "vps/sim/kernel.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "vps/support/ensure.hpp"

namespace vps::sim {

using support::ensure;

// ---------------------------------------------------------------------------
// Time
// ---------------------------------------------------------------------------

Time Time::from_seconds(double s) noexcept {
  if (s <= 0.0) return Time::zero();
  const double ps = s * 1e12;
  if (ps >= static_cast<double>(std::numeric_limits<std::uint64_t>::max())) return Time::max();
  return Time::ps(static_cast<std::uint64_t>(std::llround(ps)));
}

std::string Time::to_string() const {
  char buf[48];
  if (ps_ == 0) return "0s";
  if (ps_ % 1000000000000ULL == 0) {
    std::snprintf(buf, sizeof buf, "%llus", static_cast<unsigned long long>(ps_ / 1000000000000ULL));
  } else if (ps_ % 1000000000ULL == 0) {
    std::snprintf(buf, sizeof buf, "%llums", static_cast<unsigned long long>(ps_ / 1000000000ULL));
  } else if (ps_ % 1000000ULL == 0) {
    std::snprintf(buf, sizeof buf, "%lluus", static_cast<unsigned long long>(ps_ / 1000000ULL));
  } else if (ps_ % 1000ULL == 0) {
    std::snprintf(buf, sizeof buf, "%lluns", static_cast<unsigned long long>(ps_ / 1000ULL));
  } else {
    std::snprintf(buf, sizeof buf, "%llups", static_cast<unsigned long long>(ps_));
  }
  return buf;
}

// ---------------------------------------------------------------------------
// Coro
// ---------------------------------------------------------------------------

Coro& Coro::operator=(Coro&& other) noexcept {
  if (this != &other) {
    if (handle_) handle_.destroy();
    handle_ = other.handle_;
    other.handle_ = nullptr;
  }
  return *this;
}

Coro::~Coro() {
  if (handle_) handle_.destroy();
}

// ---------------------------------------------------------------------------
// Event
// ---------------------------------------------------------------------------

Event::Event(Kernel& kernel, std::string name) : kernel_(kernel), name_(std::move(name)) {
  kernel_.register_event(*this);
}

Event::~Event() { kernel_.unregister_event(*this); }

void Event::notify_immediate() {
  ++kernel_.stats_.notifications;
  for (KernelObserver* o : kernel_.observers_) o->on_event_notified(*this, kernel_.now_);
  fire();
}

void Event::notify() {
  ++kernel_.stats_.notifications;
  for (KernelObserver* o : kernel_.observers_) o->on_event_notified(*this, kernel_.now_);
  if (delta_pending_) return;
  delta_pending_ = true;
  kernel_.queue_delta_notification(*this);
}

void Event::notify(Time delay) {
  ++kernel_.stats_.notifications;
  for (KernelObserver* o : kernel_.observers_) o->on_event_notified(*this, kernel_.now_);
  // Note: unlike IEEE-1666 (where a later notification at an earlier time
  // overrides a pending one), every timed notification matures unless the
  // event is cancelled. All models in this repository are written against
  // these semantics.
  kernel_.queue_timed_notification(*this, delay);
}

void Event::cancel() noexcept {
  ++notify_generation_;
  delta_pending_ = false;
}

void Event::fire() {
  ++fire_count_;
  delta_pending_ = false;
  for (Process* p : static_waiters_) {
    if (p->state_ != Process::State::kTerminated) kernel_.make_runnable(*p);
  }
  if (dynamic_waiters_.empty()) return;
  auto waiters = std::move(dynamic_waiters_);
  dynamic_waiters_.clear();
  for (const DynamicWaiter& w : waiters) {
    if (w.process->state_ == Process::State::kWaiting &&
        w.process->wait_generation_ == w.generation) {
      w.process->last_wait_timed_out_ = false;
      kernel_.make_runnable(*w.process);
    }
  }
}

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

Process::Process(Kernel& kernel, std::string name, Kind kind)
    : kernel_(kernel), name_(std::move(name)), kind_(kind),
      terminated_(std::make_unique<Event>(kernel, name_ + ".terminated")) {}

void Process::kill() {
  if (state_ == State::kTerminated) return;
  state_ = State::kTerminated;
  ++wait_generation_;  // invalidate pending wakeups
  resume_point_ = nullptr;
  terminated_->notify();
}

// ---------------------------------------------------------------------------
// Awaiters
// ---------------------------------------------------------------------------

void DelayAwaiter::await_suspend(Coro::Handle h) {
  Process* p = h.promise().process;
  ensure(p != nullptr, "co_await delay() outside of a simulation process");
  p->resume_point_ = h;
  p->kernel_.schedule_process_resume(*p, delay, /*timeout_flag=*/false);
}

void PinnedDelayAwaiter::await_suspend(Coro::Handle h) {
  Process* p = h.promise().process;
  ensure(p != nullptr, "co_await delay_pinned() outside of a simulation process");
  p->resume_point_ = h;
  p->kernel_.schedule_process_resume_pinned(*p, delay, seq);
}

void EventAwaiter::await_suspend(Coro::Handle h) {
  Process* p = h.promise().process;
  ensure(p != nullptr, "co_await event outside of a simulation process");
  p->resume_point_ = h;
  event.add_dynamic(p, p->bump_generation());
}

void TimedEventAwaiter::await_suspend(Coro::Handle h) {
  Process* p = h.promise().process;
  ensure(p != nullptr, "co_await wait_with_timeout outside of a simulation process");
  process = p;
  p->resume_point_ = h;
  const std::uint64_t gen = p->bump_generation();
  event.add_dynamic(p, gen);
  p->kernel_.schedule_timeout(*p, timeout, gen);
}

bool TimedEventAwaiter::await_resume() const noexcept {
  return process != nullptr && !process->last_wait_timed_out();
}

// ---------------------------------------------------------------------------
// Kernel
// ---------------------------------------------------------------------------

const char* to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kIdle: return "idle";
    case StopReason::kTimeLimit: return "time_limit";
    case StopReason::kStopRequested: return "stop_requested";
    case StopReason::kActivationBudget: return "activation_budget";
    case StopReason::kDeltaBudget: return "delta_budget";
    case StopReason::kLivelock: return "livelock";
  }
  return "?";
}

Kernel::Kernel() = default;

Kernel::~Kernel() {
  // Processes own Events whose destructors deregister from the ordinal
  // registry; destroy them while live_events_/events_by_ordinal_ (declared
  // after processes_, hence destroyed first by default) are still alive.
  processes_.clear();
}

// ---------------------------------------------------------------------------
// TimedQueue
// ---------------------------------------------------------------------------

// std::greater on TimedEntry gives the same min-heap the old
// std::priority_queue<TimedEntry, vector, greater<>> maintained.
static constexpr auto timed_greater() noexcept {
  return [](const auto& a, const auto& b) { return a > b; };
}

void Kernel::TimedQueue::push(const TimedEntry& entry) {
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), timed_greater());
}

void Kernel::TimedQueue::pop() {
  std::pop_heap(heap_.begin(), heap_.end(), timed_greater());
  heap_.pop_back();
}

void Kernel::TimedQueue::assign(std::vector<TimedEntry> entries) {
  heap_ = std::move(entries);
  std::make_heap(heap_.begin(), heap_.end(), timed_greater());
}

void Kernel::add_observer(KernelObserver& observer) {
  ensure(!has_observer(observer), "Kernel::add_observer: observer already attached");
  observers_.push_back(&observer);
}

void Kernel::remove_observer(KernelObserver& observer) noexcept {
  std::erase(observers_, &observer);
}

bool Kernel::has_observer(const KernelObserver& observer) const noexcept {
  for (const KernelObserver* o : observers_) {
    if (o == &observer) return true;
  }
  return false;
}

Process& Kernel::spawn(std::string name, Coro coro) {
  ensure(coro.valid(), "spawn: coroutine is empty");
  auto process = std::unique_ptr<Process>(new Process(*this, std::move(name), Process::Kind::kThread));
  Process& p = *process;
  p.ordinal_ = static_cast<std::uint32_t>(processes_.size());
  p.coro_ = std::move(coro);
  auto& promise = p.coro_.handle().promise();
  promise.kernel = this;
  promise.process = &p;
  p.resume_point_ = p.coro_.handle();
  processes_.push_back(std::move(process));
  make_runnable(p);
  return p;
}

Process& Kernel::method(std::string name, std::function<void()> body,
                        std::vector<Event*> sensitivity, bool initialize) {
  ensure(static_cast<bool>(body), "method: body is empty");
  auto process = std::unique_ptr<Process>(new Process(*this, std::move(name), Process::Kind::kMethod));
  Process& p = *process;
  p.ordinal_ = static_cast<std::uint32_t>(processes_.size());
  p.body_ = std::move(body);
  for (Event* e : sensitivity) {
    ensure(e != nullptr, "method: null sensitivity event");
    e->add_static(&p);
  }
  processes_.push_back(std::move(process));
  if (initialize) make_runnable(p);
  return p;
}

bool Kernel::has_pending_activity() const noexcept {
  return !runnable_.empty() || !update_requests_.empty() || !delta_notifications_.empty() ||
         !timed_.empty();
}

Time Kernel::next_activity_time() const noexcept {
  if (!runnable_.empty() || !update_requests_.empty() || !delta_notifications_.empty()) return now_;
  if (!timed_.empty()) return timed_.top().when;
  return Time::max();
}

void Kernel::request_update(UpdateHook& hook) { update_requests_.push_back(&hook); }

void Kernel::queue_delta_notification(Event& event) { delta_notifications_.push_back(&event); }

void Kernel::queue_timed_notification(Event& event, Time delay) {
  TimedEntry entry;
  entry.when = now_ + delay;
  entry.seq = next_seq_++;
  entry.event = &event;
  entry.event_generation = event.notify_generation_;
  timed_.push(entry);
}

void Kernel::schedule_process_resume(Process& process, Time delay, bool timeout_flag) {
  TimedEntry entry;
  entry.when = now_ + delay;
  entry.seq = next_seq_++;
  entry.process = &process;
  entry.process_generation = timeout_flag ? process.wait_generation_ : process.bump_generation();
  entry.timeout_flag = timeout_flag;
  timed_.push(entry);
}

void Kernel::schedule_process_resume_pinned(Process& process, Time delay, std::uint64_t seq) {
  TimedEntry entry;
  entry.when = now_ + delay;
  entry.seq = seq;
  entry.sub = 0;  // ties against a restored prefix entry resolve pinned-first
  entry.process = &process;
  entry.process_generation = process.bump_generation();
  timed_.push(entry);
}

void Kernel::schedule_timeout(Process& process, Time delay, std::uint64_t gen) {
  TimedEntry entry;
  entry.when = now_ + delay;
  entry.seq = next_seq_++;
  entry.process = &process;
  entry.process_generation = gen;  // shares the generation of the event wait
  entry.timeout_flag = true;
  timed_.push(entry);
}

void Kernel::make_runnable(Process& process) {
  if (process.queued_ || process.state_ == Process::State::kTerminated) return;
  process.queued_ = true;
  process.state_ = Process::State::kRunnable;
  runnable_.push_back(&process);
}

void Kernel::run_process(Process& p) {
  p.queued_ = false;
  if (p.state_ == Process::State::kTerminated) return;
  ++stats_.activations;
  ++p.activations_;
  current_ = &p;
  for (KernelObserver* o : observers_) o->on_process_activation(p, now_);
  if (p.kind_ == Process::Kind::kMethod) {
    try {
      p.body_();
    } catch (...) {
      pending_error_ = std::current_exception();
    }
  } else {
    auto h = p.resume_point_;
    p.resume_point_ = nullptr;
    if (h && !h.done()) {
      h.resume();
    }
    if (p.coro_.done()) {
      p.state_ = Process::State::kTerminated;
      p.terminated_->notify();
      if (auto ex = p.coro_.handle().promise().exception) pending_error_ = ex;
    }
  }
  current_ = nullptr;
  if (p.state_ != Process::State::kTerminated) p.state_ = Process::State::kWaiting;
  for (KernelObserver* o : observers_) o->on_process_return(p, now_);
}

bool Kernel::evaluate_phase(std::uint64_t activation_limit) {
  while (!runnable_.empty()) {
    if (activation_limit != 0 && stats_.activations >= activation_limit) return false;
    Process* p = runnable_.front();
    runnable_.pop_front();
    run_process(*p);
  }
  return true;
}

void Kernel::update_phase() {
  if (update_requests_.empty()) return;
  auto requests = std::move(update_requests_);
  update_requests_.clear();
  for (UpdateHook* hook : requests) {
    hook->perform_update();
    ++stats_.updates;
  }
}

void Kernel::delta_notification_phase() {
  if (delta_notifications_.empty()) return;
  auto notifications = std::move(delta_notifications_);
  delta_notifications_.clear();
  for (Event* e : notifications) {
    if (event_is_live(e) && e->delta_pending_) e->fire();
  }
}

void Kernel::rethrow_pending_error() {
  if (pending_error_) {
    auto ex = pending_error_;
    pending_error_ = nullptr;
    std::rethrow_exception(ex);
  }
}

bool Kernel::advance_time(Time until) {
  auto entry_valid = [this](const TimedEntry& e) {
    if (e.event != nullptr) {
      return event_is_live(e.event) && e.event->notify_generation_ == e.event_generation;
    }
    return e.process->state_ == Process::State::kWaiting &&
           e.process->wait_generation_ == e.process_generation;
  };
  while (!timed_.empty()) {
    const TimedEntry& top = timed_.top();
    if (!entry_valid(top)) {
      timed_.pop();
      continue;
    }
    if (top.when > until) {
      now_ = until;
      return false;
    }
    now_ = top.when;
    ++stats_.timed_steps;
    for (KernelObserver* o : observers_) o->on_time_advance(now_);
    while (!timed_.empty() && timed_.top().when == now_) {
      TimedEntry e = timed_.top();
      timed_.pop();
      if (!entry_valid(e)) continue;
      if (e.event != nullptr) {
        e.event->fire();
      } else {
        e.process->last_wait_timed_out_ = e.timeout_flag;
        make_runnable(*e.process);
      }
    }
    return true;
  }
  return false;
}

RunStatus Kernel::budget_trip(StopReason reason) {
  const RunStatus status{reason, now_};
  for (KernelObserver* o : observers_) o->on_budget_trip(status);
  return status;
}

Time Kernel::run(Time until) { return run(until, RunBudget{}).time; }

RunStatus Kernel::run(Time until, const RunBudget& budget) {
  stop_requested_ = false;
  // Budgets are relative to the state at entry; convert to absolute
  // thresholds once so the hot loop compares against constants. With no
  // budget set this costs one branch per delta cycle (`limited`) and one per
  // activation (inside evaluate_phase) — measured against E3 in E16.
  const bool limited = !budget.unlimited();
  const std::uint64_t activation_limit =
      budget.max_activations == 0 ? 0 : stats_.activations + budget.max_activations;
  const std::uint64_t delta_limit =
      budget.max_delta_cycles == 0 ? 0 : stats_.delta_cycles + budget.max_delta_cycles;
  std::uint64_t deltas_without_advance = 0;
  while (true) {
    const bool evaluated_fully = evaluate_phase(activation_limit);
    if (!init_seq_marked_) {
      // End of the first evaluate phase ever: every elaboration-time process
      // has taken its initial slice, so next_seq_ here equals the seq a
      // last-spawned injection process's delay received (or would have
      // received) in a full replay. Forked replays pin to this value.
      init_seq_mark_ = next_seq_;
      init_seq_marked_ = true;
    }
    update_phase();
    delta_notification_phase();
    ++stats_.delta_cycles;
    for (KernelObserver* o : observers_) o->on_delta_cycle(now_);
    rethrow_pending_error();
    if (stop_requested_) return RunStatus{StopReason::kStopRequested, now_};
    if (limited) {
      // An evaluate phase cut short means max_activations tripped mid-phase
      // (the only way to bound an immediate-notification livelock, which
      // never reaches a delta boundary).
      if (!evaluated_fully) return budget_trip(StopReason::kActivationBudget);
      if (activation_limit != 0 && stats_.activations >= activation_limit) {
        return budget_trip(StopReason::kActivationBudget);
      }
      if (delta_limit != 0 && stats_.delta_cycles >= delta_limit) {
        return budget_trip(StopReason::kDeltaBudget);
      }
      ++deltas_without_advance;
      if (budget.max_deltas_without_advance != 0 &&
          deltas_without_advance >= budget.max_deltas_without_advance) {
        return budget_trip(StopReason::kLivelock);
      }
    }
    if (!runnable_.empty()) continue;  // another delta cycle at the same time
    if (!advance_time(until)) {
      return RunStatus{timed_.empty() ? StopReason::kIdle : StopReason::kTimeLimit, now_};
    }
    deltas_without_advance = 0;
  }
}

// ---------------------------------------------------------------------------
// Snapshot / restore
// ---------------------------------------------------------------------------

KernelSnapshot Kernel::snapshot() const {
  ensure(current_ == nullptr && runnable_.empty() && update_requests_.empty() &&
             delta_notifications_.empty() && !pending_error_,
         "Kernel::snapshot: kernel is not quiescent (call between run() calls)");
  KernelSnapshot s;
  s.now = now_;
  s.next_seq = next_seq_;
  s.init_seq_mark = init_seq_mark_;
  s.stats = stats_;
  s.processes.reserve(processes_.size());
  for (const auto& p : processes_) {
    KernelSnapshot::ProcessImage img;
    img.state = static_cast<std::uint8_t>(p->state_);
    img.activations = p->activations_;
    img.wait_generation = p->wait_generation_;
    img.last_wait_timed_out = p->last_wait_timed_out_;
    s.processes.push_back(img);
  }
  s.events.reserve(events_by_ordinal_.size());
  for (const Event* e : events_by_ordinal_) {
    ensure(e != nullptr, "Kernel::snapshot: an event was destroyed during elaboration");
    KernelSnapshot::EventImage img;
    img.notify_generation = e->notify_generation_;
    img.fire_count = e->fire_count_;
    img.dynamic_waiters.reserve(e->dynamic_waiters_.size());
    for (const Event::DynamicWaiter& w : e->dynamic_waiters_) {
      img.dynamic_waiters.emplace_back(w.process->ordinal_, w.generation);
    }
    s.events.push_back(std::move(img));
  }
  s.timed.reserve(timed_.entries().size());
  for (const TimedEntry& e : timed_.entries()) {
    KernelSnapshot::TimedImage img;
    img.when = e.when;
    img.seq = e.seq;
    img.sub = e.sub;
    if (e.event != nullptr) {
      img.event_ordinal = e.event->ordinal_;
      img.event_generation = e.event_generation;
    } else {
      img.process_ordinal = e.process->ordinal_;
      img.process_generation = e.process_generation;
    }
    img.timeout_flag = e.timeout_flag;
    s.timed.push_back(img);
  }
  return s;
}

void Kernel::restore(const KernelSnapshot& snapshot) {
  ensure(current_ == nullptr, "Kernel::restore: kernel is mid-delta");
  // A never-run system may carry elaboration-time artifacts (initial signal
  // writes, delta notifications fired by module constructors). The snapshot
  // was taken after the source system consumed them, so they are superseded
  // by the overlay — discard rather than commit.
  for (UpdateHook* hook : update_requests_) hook->discard_update();
  update_requests_.clear();
  delta_notifications_.clear();
  ensure(processes_.size() == snapshot.processes.size() &&
             events_by_ordinal_.size() == snapshot.events.size(),
         "Kernel::restore: system shape differs from the snapshot source "
         "(processes/events must be created in the identical order)");
  // Fresh processes sit in the runnable queue awaiting their initial
  // dispatch; the snapshot's prefix already ran it, so park everything and
  // overlay the recorded scheduler state. Thread processes keep their fresh
  // never-started coroutine as the resume point — process bodies are written
  // so that running the body from the top with restored member state is
  // equivalent to resuming after the await the original was parked on.
  runnable_.clear();
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    Process& p = *processes_[i];
    const KernelSnapshot::ProcessImage& img = snapshot.processes[i];
    p.queued_ = false;
    p.state_ = static_cast<Process::State>(img.state);
    p.activations_ = img.activations;
    p.wait_generation_ = img.wait_generation;
    p.last_wait_timed_out_ = img.last_wait_timed_out;
  }
  for (std::size_t i = 0; i < events_by_ordinal_.size(); ++i) {
    Event* e = events_by_ordinal_[i];
    ensure(e != nullptr, "Kernel::restore: an event was destroyed during elaboration");
    const KernelSnapshot::EventImage& img = snapshot.events[i];
    e->notify_generation_ = img.notify_generation;
    e->fire_count_ = img.fire_count;
    e->delta_pending_ = false;
    e->dynamic_waiters_.clear();
    for (const auto& [ordinal, generation] : img.dynamic_waiters) {
      ensure(ordinal < processes_.size(), "Kernel::restore: waiter ordinal out of range");
      e->dynamic_waiters_.push_back({processes_[ordinal].get(), generation});
    }
  }
  std::vector<TimedEntry> entries;
  entries.reserve(snapshot.timed.size());
  for (const KernelSnapshot::TimedImage& img : snapshot.timed) {
    TimedEntry e;
    e.when = img.when;
    e.seq = img.seq;
    e.sub = img.sub;
    if (img.event_ordinal >= 0) {
      ensure(static_cast<std::size_t>(img.event_ordinal) < events_by_ordinal_.size(),
             "Kernel::restore: event ordinal out of range");
      e.event = events_by_ordinal_[static_cast<std::size_t>(img.event_ordinal)];
      e.event_generation = img.event_generation;
    } else {
      ensure(img.process_ordinal >= 0 &&
                 static_cast<std::size_t>(img.process_ordinal) < processes_.size(),
             "Kernel::restore: process ordinal out of range");
      e.process = processes_[static_cast<std::size_t>(img.process_ordinal)].get();
      e.process_generation = img.process_generation;
    }
    e.timeout_flag = img.timeout_flag;
    entries.push_back(e);
  }
  timed_.assign(std::move(entries));
  now_ = snapshot.now;
  next_seq_ = snapshot.next_seq;
  init_seq_mark_ = snapshot.init_seq_mark;
  init_seq_marked_ = true;
  stats_ = snapshot.stats;
  stop_requested_ = false;
}

}  // namespace vps::sim

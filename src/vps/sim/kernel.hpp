#pragma once

/// Discrete-event simulation kernel with SystemC-equivalent semantics:
/// evaluate / update / delta-notify cycles, timed event queue, method
/// processes (callback + static sensitivity) and thread processes
/// (C++20 coroutines with co_await on delays and events).
///
/// The kernel is the substrate that stands in for an IEEE-1666 SystemC
/// implementation in this reproduction; see DESIGN.md section 2.

#include <coroutine>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "vps/sim/time.hpp"

namespace vps::sim {

class Kernel;
class Process;
class Event;

// ---------------------------------------------------------------------------
// Coroutine task type for thread processes.
// ---------------------------------------------------------------------------

/// A lazily-started coroutine owned either by a Process (top level) or by the
/// co_await expression of its caller (nested call). All framework coroutines
/// use this single type so that the kernel/process context propagates through
/// nested co_awaits.
class [[nodiscard]] Coro {
 public:
  class promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  class promise_type {
   public:
    Coro get_return_object() noexcept;
    std::suspend_always initial_suspend() noexcept { return {}; }
    auto final_suspend() noexcept;
    void return_void() noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }

    Kernel* kernel = nullptr;
    Process* process = nullptr;
    std::coroutine_handle<> continuation;  // caller frame; null for top level
    std::exception_ptr exception;
  };

  Coro() noexcept = default;
  explicit Coro(Handle h) noexcept : handle_(h) {}
  Coro(Coro&& other) noexcept : handle_(other.handle_) { other.handle_ = nullptr; }
  Coro& operator=(Coro&& other) noexcept;
  Coro(const Coro&) = delete;
  Coro& operator=(const Coro&) = delete;
  ~Coro();

  [[nodiscard]] bool valid() const noexcept { return handle_ != nullptr; }
  [[nodiscard]] Handle handle() const noexcept { return handle_; }
  [[nodiscard]] bool done() const noexcept { return !handle_ || handle_.done(); }

  /// Awaiting a Coro runs it to completion within the awaiting process
  /// (symmetric transfer), then resumes the caller; exceptions propagate.
  auto operator co_await() && noexcept;

 private:
  Handle handle_;
};

// ---------------------------------------------------------------------------
// Event
// ---------------------------------------------------------------------------

/// Synchronization primitive equivalent to sc_event. Supports immediate,
/// delta and timed notification; method processes subscribe statically,
/// thread processes wait dynamically via co_await.
class Event {
 public:
  explicit Event(Kernel& kernel, std::string name = {});
  ~Event();
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  /// Triggers waiting processes within the current evaluation phase.
  void notify_immediate();
  /// Triggers at the end of the current delta cycle (after update phase).
  void notify();
  /// Triggers after the given simulated delay.
  void notify(Time delay);
  /// Cancels pending delta/timed notifications.
  void cancel() noexcept;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t fire_count() const noexcept { return fire_count_; }
  [[nodiscard]] Kernel& kernel() const noexcept { return kernel_; }

  /// co_await support for thread processes.
  auto operator co_await() noexcept;

 private:
  friend class Kernel;
  friend class Process;
  friend struct EventAwaiter;
  friend struct TimedEventAwaiter;

  struct DynamicWaiter {
    Process* process;
    std::uint64_t generation;
  };

  void fire();  // called by the kernel when the notification matures
  void add_static(Process* p) { static_waiters_.push_back(p); }
  void add_dynamic(Process* p, std::uint64_t gen) { dynamic_waiters_.push_back({p, gen}); }

  Kernel& kernel_;
  std::string name_;
  std::vector<Process*> static_waiters_;
  std::vector<DynamicWaiter> dynamic_waiters_;
  std::uint64_t notify_generation_ = 0;  // bump to invalidate queued notifications
  bool delta_pending_ = false;
  std::uint64_t fire_count_ = 0;
  std::uint32_t ordinal_ = 0;  // registration order; snapshot identity
};

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

/// A schedulable unit: either a method (callback re-run on sensitivity) or a
/// thread (coroutine resumed at its last suspension point).
class Process {
 public:
  enum class Kind : std::uint8_t { kMethod, kThread };
  enum class State : std::uint8_t { kWaiting, kRunnable, kTerminated };

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] bool done() const noexcept { return state_ == State::kTerminated; }
  /// Number of times this process has been activated by the scheduler.
  [[nodiscard]] std::uint64_t activation_count() const noexcept { return activations_; }
  /// Fired (delta) once when the process terminates; lets parents join forks.
  [[nodiscard]] Event& terminated_event() noexcept { return *terminated_; }
  /// True when the last co_await with a timeout expired before the event.
  [[nodiscard]] bool last_wait_timed_out() const noexcept { return last_wait_timed_out_; }

  /// Invalidates any pending wait so the process never resumes again
  /// (thread) or never re-triggers (method). Used by fault injectors to
  /// model a hung component.
  void kill();

 private:
  friend class Kernel;
  friend class Event;
  friend struct DelayAwaiter;
  friend struct PinnedDelayAwaiter;
  friend struct EventAwaiter;
  friend struct TimedEventAwaiter;

  Process(Kernel& kernel, std::string name, Kind kind);

  std::uint64_t bump_generation() noexcept { return ++wait_generation_; }

  Kernel& kernel_;
  std::string name_;
  Kind kind_;
  State state_ = State::kWaiting;
  std::uint64_t activations_ = 0;

  // Method processes.
  std::function<void()> body_;

  // Thread processes.
  Coro coro_;                             // owns the top-level frame
  std::coroutine_handle<> resume_point_;  // innermost suspended frame
  std::uint64_t wait_generation_ = 0;     // invalidates stale wakeups
  bool last_wait_timed_out_ = false;

  std::unique_ptr<Event> terminated_;
  bool queued_ = false;  // already in the runnable queue
  std::uint32_t ordinal_ = 0;  // spawn order; snapshot identity
};

// ---------------------------------------------------------------------------
// Update hook (primitive-channel update phase)
// ---------------------------------------------------------------------------

/// Channels (e.g. Signal<T>) implement this to take part in the update phase.
class UpdateHook {
 public:
  virtual ~UpdateHook() = default;
  virtual void perform_update() = 0;
  /// Drops a requested-but-unperformed update without committing it. Called
  /// by Kernel::restore when a snapshot overlay supersedes pending
  /// elaboration-time writes (the snapshot already contains their consumed
  /// effects — or their restored absence).
  virtual void discard_update() noexcept = 0;
};

// ---------------------------------------------------------------------------
// Kernel
// ---------------------------------------------------------------------------

/// Scheduler statistics exposed for the paper's kernel-overhead experiments
/// (EXPERIMENTS.md E3).
struct KernelStats {
  std::uint64_t activations = 0;       ///< process activations (context switches)
  std::uint64_t delta_cycles = 0;      ///< completed delta cycles
  std::uint64_t timed_steps = 0;       ///< time advances
  std::uint64_t notifications = 0;     ///< event notify() calls
  std::uint64_t updates = 0;           ///< channel updates performed
};

/// Watchdog budget for a single Kernel::run call. Faulted models can spin
/// forever in zero-time activity (a process that keeps re-notifying, a
/// combinational loop, a corrupted scheduler table); a budget bounds the run
/// without reference to wall-clock time so results stay deterministic. All
/// limits are relative to the state at the start of the run call; 0 disables
/// the corresponding limit. With every limit disabled the scheduler pays one
/// branch per delta cycle plus one per activation (measured in E16).
struct RunBudget {
  /// Maximum process activations before the run stops (0 = unlimited).
  /// Catches livelocks that never finish an evaluate phase (immediate
  /// self-notification), which the delta-based limits cannot see.
  std::uint64_t max_activations = 0;
  /// Maximum completed delta cycles before the run stops (0 = unlimited).
  std::uint64_t max_delta_cycles = 0;
  /// Livelock heuristic: stop after this many consecutive delta cycles
  /// without simulated time advancing (0 = disabled). A healthy model
  /// settles in a handful of deltas per instant; a faulted one can delta
  /// forever at the same timestamp.
  std::uint64_t max_deltas_without_advance = 0;

  [[nodiscard]] bool unlimited() const noexcept {
    return max_activations == 0 && max_delta_cycles == 0 && max_deltas_without_advance == 0;
  }
};

/// Why a budgeted run returned.
enum class StopReason : std::uint8_t {
  kIdle,              ///< no activity remains
  kTimeLimit,         ///< simulated time reached `until`
  kStopRequested,     ///< Kernel::stop() was called
  kActivationBudget,  ///< RunBudget::max_activations exhausted
  kDeltaBudget,       ///< RunBudget::max_delta_cycles exhausted
  kLivelock,          ///< RunBudget::max_deltas_without_advance tripped
};

[[nodiscard]] const char* to_string(StopReason reason) noexcept;

/// Structured result of a budgeted run: how it stopped and when.
struct RunStatus {
  StopReason reason = StopReason::kIdle;
  Time time;  ///< simulated time at which the run stopped

  /// True when the run was cut short by its RunBudget (as opposed to
  /// finishing, hitting the time limit, or an orderly stop()).
  [[nodiscard]] bool budget_exhausted() const noexcept {
    return reason == StopReason::kActivationBudget || reason == StopReason::kDeltaBudget ||
           reason == StopReason::kLivelock;
  }
};

/// Passive scheduler observer: the attachment point for the structured
/// observability layer (obs::KernelTracer). Callbacks fire synchronously on
/// the simulation thread; with no observer attached the kernel pays a single
/// empty-vector test per scheduler action, which keeps disabled-tracing
/// overhead within the E15 budget. KernelStats stays the cheap aggregate
/// view; an observer refines it into per-process / per-event attribution.
/// Any number of observers may attach (Kernel::add_observer); callbacks fire
/// in attachment order.
class KernelObserver {
 public:
  virtual ~KernelObserver() = default;
  // Every callback defaults to a no-op: with multiple observers attached,
  // most care about a single hook (a budget watchdog, a delta counter) and
  // should not have to stub out the rest.
  /// A process was dequeued and is about to run its evaluation slice.
  virtual void on_process_activation(const Process& process, Time now) { (void)process, (void)now; }
  /// The process's evaluation slice returned (same simulated instant).
  virtual void on_process_return(const Process& process, Time now) { (void)process, (void)now; }
  /// An event notification was requested (immediate, delta or timed).
  virtual void on_event_notified(const Event& event, Time now) { (void)event, (void)now; }
  /// One evaluate/update/delta-notify cycle completed.
  virtual void on_delta_cycle(Time now) { (void)now; }
  /// Simulated time advanced to `now`.
  virtual void on_time_advance(Time now) { (void)now; }
  /// A RunBudget limit cut the run short.
  virtual void on_budget_trip(const RunStatus& status) { (void)status; }
};

/// Value-type image of the scheduler state at a quiescent instant (between
/// Kernel::run calls). Processes and events are identified by *ordinal* —
/// spawn order and registration order respectively — so an image taken from
/// one kernel can be restored onto a freshly elaborated twin built in the
/// identical construction order. Coroutine frames are NOT captured: restore
/// relies on process bodies being written so that resuming from the top of
/// the body with restored member state is equivalent to resuming after the
/// await the original was parked on (see DESIGN.md "Replay engine").
struct KernelSnapshot {
  struct ProcessImage {
    std::uint8_t state = 0;  // Process::State
    std::uint64_t activations = 0;
    std::uint64_t wait_generation = 0;
    bool last_wait_timed_out = false;
  };
  struct EventImage {
    std::uint64_t notify_generation = 0;
    std::uint64_t fire_count = 0;
    /// (process ordinal, wait generation) of each parked dynamic waiter.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> dynamic_waiters;
  };
  struct TimedImage {
    Time when;
    std::uint64_t seq = 0;
    std::uint8_t sub = 1;
    std::int64_t event_ordinal = -1;    // -1: process entry
    std::uint64_t event_generation = 0;
    std::int64_t process_ordinal = -1;  // -1: event entry
    std::uint64_t process_generation = 0;
    bool timeout_flag = false;
  };

  Time now;
  std::uint64_t next_seq = 0;
  std::uint64_t init_seq_mark = 0;
  KernelStats stats;
  std::vector<ProcessImage> processes;
  std::vector<EventImage> events;
  std::vector<TimedImage> timed;
};

class Kernel {
 public:
  Kernel();
  ~Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Registers a thread process; it becomes runnable at the current time.
  Process& spawn(std::string name, Coro coro);

  /// Registers a method process with static sensitivity. When initialize is
  /// true the method also runs once at the start of simulation.
  Process& method(std::string name, std::function<void()> body,
                  std::vector<Event*> sensitivity = {}, bool initialize = true);

  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] const KernelStats& stats() const noexcept { return stats_; }

  /// Attaches a scheduler observer; callbacks fire in attachment order. The
  /// observer must outlive its attachment (detach via remove_observer).
  /// ensure()-fails on a duplicate attach — the single-slot set_observer it
  /// replaces silently evicted the previous observer, which lost trace data.
  void add_observer(KernelObserver& observer);
  /// Detaches an observer; no-op when it is not attached.
  void remove_observer(KernelObserver& observer) noexcept;
  [[nodiscard]] bool has_observer(const KernelObserver& observer) const noexcept;
  [[nodiscard]] std::size_t observer_count() const noexcept { return observers_.size(); }

  [[nodiscard]] Process* current_process() const noexcept { return current_; }
  [[nodiscard]] bool has_pending_activity() const noexcept;
  [[nodiscard]] Time next_activity_time() const noexcept;

  /// Runs until no activity remains or simulated time would exceed `until`.
  /// Returns the time at which simulation stopped.
  Time run(Time until = Time::max());
  /// Budgeted run: stops additionally when any RunBudget limit is exhausted
  /// and reports how it stopped. A trip leaves the kernel consistent (no
  /// torn delta cycle is visible to models) but pending activity remains
  /// queued; the campaign layer classifies such runs as Outcome::kTimeout.
  RunStatus run(Time until, const RunBudget& budget);
  /// Runs for a further duration from now().
  Time run_for(Time duration) { return run(now_ + duration); }
  /// Budgeted variant of run_for (saturating, so duration may be Time::max()).
  RunStatus run_for(Time duration, const RunBudget& budget) {
    return run(now_ + duration, budget);
  }
  /// Runs with no time limit until idle, stop() or a budget trip.
  RunStatus run_until_idle(const RunBudget& budget = RunBudget{}) {
    return run(Time::max(), budget);
  }
  /// Requests an orderly stop at the end of the current delta cycle.
  void stop() noexcept { stop_requested_ = true; }
  [[nodiscard]] bool stop_requested() const noexcept { return stop_requested_; }

  // --- cloneable scheduler state (snapshot-and-fork replay) -----------------

  /// Captures the scheduler state at a quiescent instant (no runnable
  /// processes, no pending update/delta phases — i.e. between run() calls).
  /// ensure()-fails when called mid-delta.
  [[nodiscard]] KernelSnapshot snapshot() const;
  /// Overlays a snapshot onto a freshly elaborated kernel whose processes
  /// and events were created in the identical order as the snapshot source.
  /// All pending timed entries, waiter registrations and generations are
  /// recreated; fresh never-started coroutines stand in for the original
  /// frames (see KernelSnapshot). ensure()-fails on a shape mismatch.
  void restore(const KernelSnapshot& snapshot);
  /// next_seq_ as it stood at the end of the very first evaluate phase: the
  /// seq an entry scheduled by a process spawned last during elaboration
  /// receives. The fork path pins the fault-injection delay to this seq so a
  /// forked replay orders same-instant entries exactly like a full replay.
  [[nodiscard]] std::uint64_t init_seq_mark() const noexcept { return init_seq_mark_; }

  // --- internal scheduling interface (used by Event / awaiters / channels) --
  void request_update(UpdateHook& hook);
  void queue_delta_notification(Event& event);
  void queue_timed_notification(Event& event, Time delay);
  void schedule_process_resume(Process& process, Time delay, bool timeout_flag);
  /// Variant with an explicit (seq, sub) key instead of the allocation
  /// counter; does not advance next_seq_. Used by delay_pinned() so a
  /// snapshot-forked replay reproduces the full replay's entry ordering.
  void schedule_process_resume_pinned(Process& process, Time delay, std::uint64_t seq);
  /// Queues a timeout entry that reuses the generation of an event wait the
  /// caller already registered (wait_with_timeout support).
  void schedule_timeout(Process& process, Time delay, std::uint64_t gen);
  void make_runnable(Process& process);
  [[nodiscard]] bool event_is_live(const Event* e) const {
    return live_events_.contains(e);
  }

 private:
  friend class Event;

  struct TimedEntry {
    Time when;
    std::uint64_t seq;  // insertion order for deterministic FIFO at same time
    // Tie-break under seq for *pinned* entries (sub = 0): a forked replay
    // pins the injection delay to the seq the full replay allocated for it,
    // which can collide with a restored prefix entry carrying the same seq.
    // The full replay orders the injection first (the prefix entry sits one
    // seq later there), so pinned-before-normal reproduces that order.
    std::uint8_t sub = 1;
    Event* event = nullptr;
    std::uint64_t event_generation = 0;
    Process* process = nullptr;
    std::uint64_t process_generation = 0;
    bool timeout_flag = false;

    bool operator>(const TimedEntry& other) const noexcept {
      if (when != other.when) return when > other.when;
      if (seq != other.seq) return seq > other.seq;
      return sub > other.sub;
    }
  };

  /// Min-heap over TimedEntry with the same pop order as the
  /// std::priority_queue it replaces, but with the backing vector readable
  /// (snapshot()) and assignable (restore()). (when, seq, sub) keys are
  /// unique, so heap layout never affects pop order.
  class TimedQueue {
   public:
    [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
    [[nodiscard]] const TimedEntry& top() const noexcept { return heap_.front(); }
    void push(const TimedEntry& entry);
    void pop();
    [[nodiscard]] const std::vector<TimedEntry>& entries() const noexcept { return heap_; }
    void assign(std::vector<TimedEntry> entries);

   private:
    std::vector<TimedEntry> heap_;
  };

  void register_event(Event& e) {
    e.ordinal_ = static_cast<std::uint32_t>(events_by_ordinal_.size());
    events_by_ordinal_.push_back(&e);
    live_events_.insert(&e);
  }
  void unregister_event(Event& e) {
    if (e.ordinal_ < events_by_ordinal_.size() && events_by_ordinal_[e.ordinal_] == &e) {
      events_by_ordinal_[e.ordinal_] = nullptr;
    }
    live_events_.erase(&e);
  }

  void run_process(Process& p);
  /// Runs runnable processes until the queue drains or `activation_limit`
  /// (absolute stats_.activations threshold; 0 = unlimited) is reached.
  /// Returns false when the limit cut the phase short.
  bool evaluate_phase(std::uint64_t activation_limit);
  void update_phase();
  void delta_notification_phase();
  bool advance_time(Time until);
  void rethrow_pending_error();
  RunStatus budget_trip(StopReason reason);

  Time now_ = Time::zero();
  bool stop_requested_ = false;
  Process* current_ = nullptr;
  std::vector<KernelObserver*> observers_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t init_seq_mark_ = 0;
  bool init_seq_marked_ = false;
  KernelStats stats_;
  std::exception_ptr pending_error_;

  std::vector<std::unique_ptr<Process>> processes_;
  std::deque<Process*> runnable_;
  std::vector<UpdateHook*> update_requests_;
  std::vector<Event*> delta_notifications_;
  TimedQueue timed_;
  std::unordered_set<const Event*> live_events_;
  std::vector<Event*> events_by_ordinal_;  // registration order; null = destroyed
};

// ---------------------------------------------------------------------------
// Awaiters
// ---------------------------------------------------------------------------

/// co_await delay(t): suspends the current thread process for t.
struct DelayAwaiter {
  Time delay;
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(Coro::Handle h);
  void await_resume() const noexcept {}
};

[[nodiscard]] inline DelayAwaiter delay(Time t) noexcept { return DelayAwaiter{t}; }

/// co_await delay_pinned(t, seq): like delay(), but the timed entry is keyed
/// by an explicit seq (with the pinned tie-break) instead of the allocation
/// counter. Snapshot-forked replays use this for the fault-injection delay —
/// pinned to Kernel::init_seq_mark() — so the injection orders against
/// restored prefix entries exactly as it does in a full replay.
struct PinnedDelayAwaiter {
  Time delay;
  std::uint64_t seq;
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(Coro::Handle h);
  void await_resume() const noexcept {}
};

[[nodiscard]] inline PinnedDelayAwaiter delay_pinned(Time t, std::uint64_t seq) noexcept {
  return PinnedDelayAwaiter{t, seq};
}

/// co_await event: suspends until the event fires.
struct EventAwaiter {
  Event& event;
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(Coro::Handle h);
  void await_resume() const noexcept {}
};

inline auto Event::operator co_await() noexcept { return EventAwaiter{*this}; }

/// co_await wait_with_timeout(event, t): resumes on whichever comes first;
/// await_resume returns true when the event fired, false on timeout.
struct TimedEventAwaiter {
  Event& event;
  Time timeout;
  Process* process = nullptr;
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(Coro::Handle h);
  [[nodiscard]] bool await_resume() const noexcept;
};

[[nodiscard]] inline TimedEventAwaiter wait_with_timeout(Event& e, Time t) noexcept {
  return TimedEventAwaiter{e, t};
}

// --- inline implementations needing complete types -------------------------

inline Coro Coro::promise_type::get_return_object() noexcept {
  return Coro(Handle::from_promise(*this));
}

inline auto Coro::promise_type::final_suspend() noexcept {
  struct FinalAwaiter {
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(Coro::Handle h) noexcept {
      auto& p = h.promise();
      if (p.continuation) return p.continuation;
      return std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };
  return FinalAwaiter{};
}

inline auto Coro::operator co_await() && noexcept {
  struct CoroAwaiter {
    Coro::Handle callee;
    [[nodiscard]] bool await_ready() const noexcept { return !callee || callee.done(); }
    std::coroutine_handle<> await_suspend(Coro::Handle caller) noexcept {
      auto& cp = callee.promise();
      cp.continuation = caller;
      cp.kernel = caller.promise().kernel;
      cp.process = caller.promise().process;
      return callee;  // symmetric transfer into the child coroutine
    }
    void await_resume() const {
      if (callee && callee.promise().exception) {
        std::rethrow_exception(callee.promise().exception);
      }
    }
  };
  return CoroAwaiter{handle_};
}

}  // namespace vps::sim

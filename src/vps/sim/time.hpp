#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace vps::sim {

/// Simulation time as an absolute/relative picosecond count.
///
/// Picosecond resolution with a 64-bit count covers ~213 days of simulated
/// time, far beyond any mission-profile segment the framework simulates,
/// while keeping arithmetic exact (no floating-point timebase drift).
///
/// Arithmetic saturates instead of wrapping: additions and multiplications
/// clamp to Time::max(), subtractions clamp to Time::zero(). Time::max()
/// therefore behaves as "infinitely far in the future" — in particular
/// `Kernel::run_for(Time::max())` runs until activity is exhausted rather
/// than returning immediately on a wrapped deadline, and `Time::sec(huge)`
/// yields Time::max() rather than an arbitrary small count.
class Time {
 public:
  constexpr Time() noexcept = default;

  [[nodiscard]] static constexpr Time zero() noexcept { return Time(0); }
  [[nodiscard]] static constexpr Time ps(std::uint64_t v) noexcept { return Time(v); }
  [[nodiscard]] static constexpr Time ns(std::uint64_t v) noexcept {
    return Time(sat_mul(v, 1000ULL));
  }
  [[nodiscard]] static constexpr Time us(std::uint64_t v) noexcept {
    return Time(sat_mul(v, 1000000ULL));
  }
  [[nodiscard]] static constexpr Time ms(std::uint64_t v) noexcept {
    return Time(sat_mul(v, 1000000000ULL));
  }
  [[nodiscard]] static constexpr Time sec(std::uint64_t v) noexcept {
    return Time(sat_mul(v, 1000000000000ULL));
  }
  [[nodiscard]] static constexpr Time max() noexcept {
    return Time(std::numeric_limits<std::uint64_t>::max());
  }
  /// Closest picosecond count to the given seconds value (for derived rates).
  [[nodiscard]] static Time from_seconds(double s) noexcept;

  [[nodiscard]] constexpr std::uint64_t picoseconds() const noexcept { return ps_; }
  [[nodiscard]] constexpr double to_seconds() const noexcept {
    return static_cast<double>(ps_) * 1e-12;
  }
  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const Time&) const noexcept = default;

  constexpr Time& operator+=(Time rhs) noexcept {
    ps_ = sat_add(ps_, rhs.ps_);
    return *this;
  }
  constexpr Time& operator-=(Time rhs) noexcept {
    ps_ = sat_sub(ps_, rhs.ps_);
    return *this;
  }
  friend constexpr Time operator+(Time a, Time b) noexcept { return Time(sat_add(a.ps_, b.ps_)); }
  friend constexpr Time operator-(Time a, Time b) noexcept { return Time(sat_sub(a.ps_, b.ps_)); }
  friend constexpr Time operator*(Time a, std::uint64_t k) noexcept {
    return Time(sat_mul(a.ps_, k));
  }
  friend constexpr Time operator*(std::uint64_t k, Time a) noexcept {
    return Time(sat_mul(a.ps_, k));
  }
  friend constexpr std::uint64_t operator/(Time a, Time b) noexcept {
    return b.ps_ ? a.ps_ / b.ps_ : 0;
  }
  friend constexpr Time operator/(Time a, std::uint64_t k) noexcept {
    return Time(k ? a.ps_ / k : 0);
  }
  friend constexpr Time operator%(Time a, Time b) noexcept {
    return Time(b.ps_ ? a.ps_ % b.ps_ : 0);
  }

 private:
  explicit constexpr Time(std::uint64_t ps) noexcept : ps_(ps) {}

  static constexpr std::uint64_t kMaxPs = std::numeric_limits<std::uint64_t>::max();
  [[nodiscard]] static constexpr std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) noexcept {
    return a > kMaxPs - b ? kMaxPs : a + b;
  }
  [[nodiscard]] static constexpr std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) noexcept {
    return a < b ? 0 : a - b;
  }
  [[nodiscard]] static constexpr std::uint64_t sat_mul(std::uint64_t a, std::uint64_t k) noexcept {
    return k != 0 && a > kMaxPs / k ? kMaxPs : a * k;
  }

  std::uint64_t ps_ = 0;
};

inline namespace time_literals {
constexpr Time operator""_ps(unsigned long long v) noexcept { return Time::ps(v); }
constexpr Time operator""_ns(unsigned long long v) noexcept { return Time::ns(v); }
constexpr Time operator""_us(unsigned long long v) noexcept { return Time::us(v); }
constexpr Time operator""_ms(unsigned long long v) noexcept { return Time::ms(v); }
constexpr Time operator""_sec(unsigned long long v) noexcept { return Time::sec(v); }
}  // namespace time_literals

}  // namespace vps::sim

#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "vps/sim/kernel.hpp"

namespace vps::sim {

/// Base class for hierarchical model components (sc_module analogue).
/// Carries the kernel reference and a hierarchical name; offers helpers to
/// register processes with names scoped to the module.
class Module {
 public:
  Module(Kernel& kernel, std::string name) : kernel_(kernel), name_(std::move(name)) {}
  Module(Module& parent, std::string name)
      : kernel_(parent.kernel_), name_(parent.name_ + "." + std::move(name)) {}
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  [[nodiscard]] Kernel& kernel() noexcept { return kernel_; }
  [[nodiscard]] const Kernel& kernel() const noexcept { return kernel_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Time now() const noexcept { return kernel_.now(); }

 protected:
  /// Registers a thread process named "<module>.<name>".
  Process& spawn(const std::string& process_name, Coro coro) {
    return kernel_.spawn(name_ + "." + process_name, std::move(coro));
  }

  /// Registers a method process named "<module>.<name>".
  Process& method(const std::string& process_name, std::function<void()> body,
                  std::vector<Event*> sensitivity = {}, bool initialize = true) {
    return kernel_.method(name_ + "." + process_name, std::move(body), std::move(sensitivity),
                          initialize);
  }

 private:
  Kernel& kernel_;
  std::string name_;
};

}  // namespace vps::sim

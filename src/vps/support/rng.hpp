#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace vps::support {

/// Deterministic xorshift64* generator. All stochastic behaviour in the
/// framework (fault sampling, sensor noise, workload generation) draws from
/// instances of this class so that a campaign is reproducible from its seed.
class Xorshift {
 public:
  explicit Xorshift(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Standard normal via Box-Muller.
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Samples an index with probability proportional to weights[i].
  /// Zero-total weights fall back to uniform choice.
  std::size_t weighted(std::span<const double> weights) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Forks an independent stream (used to give each campaign run its own
  /// stream so run order does not perturb per-run randomness).
  Xorshift fork() noexcept;

  /// Keyed fork: derives an independent stream from the current state and
  /// `key` WITHOUT advancing this generator. Stream `key` is therefore
  /// identical no matter how many other streams are forked or in which
  /// order — the property the parallel campaign executor relies on to be
  /// bitwise reproducible across worker counts (key = run index).
  [[nodiscard]] Xorshift fork(std::uint64_t key) const noexcept;

 private:
  std::uint64_t state_;
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace vps::support

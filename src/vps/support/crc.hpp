#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace vps::support {

/// CRC-8 SAE-J1850 (poly 0x1D, init 0xFF, xor-out 0xFF) — the polynomial
/// used by AUTOSAR E2E profile 1 for end-to-end protection of signals.
[[nodiscard]] std::uint8_t crc8_sae_j1850(std::span<const std::uint8_t> data);

/// CRC-15 as specified by CAN 2.0 (poly x^15+x^14+x^10+x^8+x^7+x^4+x^3+1,
/// i.e. 0x4599). Operates on a bit sequence because CAN computes the CRC
/// over the unstuffed bit stream. (vector<bool> rather than span: the bit
/// streams come straight from frame serialization, which uses vector<bool>.)
[[nodiscard]] std::uint16_t crc15_can(const std::vector<bool>& bits);

/// CRC-32 (IEEE 802.3, reflected). Used for memory-image signatures when
/// comparing golden vs faulty simulation state.
[[nodiscard]] std::uint32_t crc32_ieee(std::span<const std::uint8_t> data);

/// Incremental CRC-32 for streaming comparison signatures.
class Crc32 {
 public:
  void update(std::span<const std::uint8_t> data) noexcept;
  void update_u64(std::uint64_t v) noexcept;
  [[nodiscard]] std::uint32_t value() const noexcept { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace vps::support

#include "vps/support/rng.hpp"

#include <cmath>
#include <numbers>

namespace vps::support {

Xorshift::Xorshift(std::uint64_t seed) noexcept
    : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

std::uint64_t Xorshift::next() noexcept {
  std::uint64_t x = state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  state_ = x;
  return x * 0x2545f4914f6cdd1dULL;
}

std::uint64_t Xorshift::uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
  if (lo >= hi) return lo;
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next();  // full 64-bit range
  return lo + next() % span;
}

std::size_t Xorshift::index(std::size_t n) noexcept {
  if (n <= 1) return 0;
  return static_cast<std::size_t>(next() % n);
}

double Xorshift::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xorshift::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

bool Xorshift::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Xorshift::exponential(double rate) noexcept {
  if (rate <= 0.0) return 0.0;
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

double Xorshift::normal(double mean, double stddev) noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

std::size_t Xorshift::weighted(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0 || weights.empty()) return index(weights.size());
  double pick = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    pick -= weights[i];
    if (pick <= 0.0) return i;
  }
  return weights.size() - 1;
}

Xorshift Xorshift::fork() noexcept {
  // Mix the next output so the fork's stream is decorrelated from ours.
  return Xorshift(next() ^ 0xd1b54a32d192ed03ULL);
}

Xorshift Xorshift::fork(std::uint64_t key) const noexcept {
  // SplitMix64 finalizer over (state, key): adjacent keys land far apart,
  // so consecutive campaign runs get decorrelated streams.
  std::uint64_t z = state_ + (key + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return Xorshift(z);
}

}  // namespace vps::support

#pragma once

/// Small work-stealing thread pool for embarrassingly parallel campaign
/// work (one scenario replay per task). Each worker owns a deque;
/// submit() distributes round-robin, an idle worker first drains its own
/// deque (front) and then steals from the back of a victim's deque, so
/// uneven task durations rebalance without a central queue bottleneck.
///
/// The pool makes no ordering promises: callers that need deterministic
/// results must slot task outputs by index and reduce in index order
/// (see fault::ParallelCampaign).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace vps::support {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least one).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept { return threads_.size(); }

  /// Enqueues a task. Tasks must not submit to or destroy the pool.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task submitted
  /// since the last wait_idle() threw, the first captured exception is
  /// rethrown here (after all tasks finished) instead of std::terminate
  /// tearing the process down on the worker thread. An error never claimed
  /// by wait_idle() is dropped at destruction.
  void wait_idle();

  /// Runs body(i) for every i in [0, count) on the pool and blocks until
  /// all iterations finished. The first exception thrown by any iteration
  /// is rethrown here (remaining iterations still run to completion).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  bool try_get_task(std::size_t self, std::function<void()>& out);
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  std::mutex mutex_;  // guards sleeping/waking and the counters below
  std::condition_variable wake_cv_;
  std::condition_variable idle_cv_;
  std::size_t queued_ = 0;   // submitted, not yet popped
  std::size_t pending_ = 0;  // submitted, not yet finished
  std::size_t next_queue_ = 0;
  std::exception_ptr error_;  // first exception a pooled task threw
  bool stop_ = false;
};

}  // namespace vps::support

#include "vps/support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "vps/support/ensure.hpp"

namespace vps::support {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::ci95_half_width() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  ensure(bins > 0, "Histogram needs at least one bin");
  ensure(hi > lo, "Histogram range must be non-empty");
}

void Histogram::add(double x) noexcept {
  // A NaN/Inf sample would make the index cast below undefined behaviour;
  // drop it but keep it visible through dropped_non_finite().
  if (!std::isfinite(x)) {
    ++dropped_non_finite_;
    return;
  }
  // Clamp in floating point before the cast: a finite but huge sample
  // (|frac| ~ 1e300) would also overflow the integer cast.
  const double frac = (x - lo_) / (hi_ - lo_);
  const double scaled =
      std::clamp(frac, 0.0, 1.0) * static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(scaled);
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::uint64_t Histogram::count_in_bin(std::size_t i) const {
  ensure(i < counts_.size(), "Histogram bin out of range");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  ensure(i < counts_.size(), "Histogram bin out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + (hi_ - lo_) / static_cast<double>(counts_.size()); }

double Histogram::percentile(double p) const noexcept {
  if (total_ == 0) return lo_;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the requested sample (1-based, ceil): p50 of 4 samples is the
  // 2nd, p99 of 100 samples the 99th. ceil keeps p=1 at the last sample.
  const double exact = p * static_cast<double>(total_);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(exact));
  rank = std::clamp<std::uint64_t>(rank, 1, total_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (cum + counts_[i] >= rank) {
      // Interpolate the rank's position within the bin, assuming samples
      // spread uniformly across it.
      const double within =
          static_cast<double>(rank - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + (bin_hi(i) - bin_lo(i)) * within;
    }
    cum += counts_[i];
  }
  return hi_;  // unreachable for a consistent total_, but keep it total
}

void Histogram::merge(const Histogram& other) {
  ensure(counts_.size() == other.counts_.size(), "Histogram merge: bin count mismatch");
  ensure(lo_ == other.lo_ && hi_ == other.hi_, "Histogram merge: range mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  dropped_non_finite_ += other.dropped_non_finite_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "[%10.3g, %10.3g) %8llu |", bin_lo(i), bin_hi(i),
                  static_cast<unsigned long long>(counts_[i]));
    out += buf;
    const auto bar = static_cast<std::size_t>(static_cast<double>(counts_[i]) / static_cast<double>(peak) *
                                              static_cast<double>(width));
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

Proportion wilson_interval(std::uint64_t successes, std::uint64_t trials, double z) {
  Proportion p;
  if (trials == 0) return p;
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  p.estimate = phat;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = phat + z2 / (2.0 * n);
  const double margin = z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
  p.lo = std::max(0.0, (center - margin) / denom);
  p.hi = std::min(1.0, (center + margin) / denom);
  return p;
}

}  // namespace vps::support

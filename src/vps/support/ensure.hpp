#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace vps::support {

/// Error thrown when a framework invariant is violated. Distinguishing this
/// from std::logic_error lets tests assert on framework-detected misuse.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Checks a precondition/invariant; throws InvariantError with location info.
/// Used instead of assert() so that violations are testable and survive
/// release builds (safety tooling must not silently continue on bad state).
inline void ensure(bool condition, const std::string& message,
                   std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw InvariantError(std::string(loc.file_name()) + ":" +
                         std::to_string(loc.line()) + ": " + message);
  }
}

}  // namespace vps::support

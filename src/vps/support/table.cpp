#include "vps/support/table.hpp"

#include <algorithm>
#include <cstdio>

#include "vps/support/ensure.hpp"

namespace vps::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ensure(!headers_.empty(), "Table needs at least one column");
}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::add_row_numeric(const std::string& label, const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.push_back(label);
  for (double v : values) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.4g", v);
    cells.emplace_back(buf);
  }
  return add_row(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto line = [&](const std::vector<std::string>& cells) {
    std::string out = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out += ' ' + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    out += '\n';
    return out;
  };
  std::string sep = "+";
  for (std::size_t c = 0; c < headers_.size(); ++c) sep += std::string(widths[c] + 2, '-') + '+';
  sep += '\n';
  std::string out = sep + line(headers_) + sep;
  for (const auto& row : rows_) out += line(row);
  out += sep;
  return out;
}

}  // namespace vps::support

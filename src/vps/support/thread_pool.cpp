#include "vps/support/thread_pool.hpp"

#include <exception>
#include <utility>

#include "vps/support/ensure.hpp"

namespace vps::support {

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t n = workers == 0 ? 1 : workers;
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) queues_.push_back(std::make_unique<WorkerQueue>());
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  ensure(static_cast<bool>(task), "ThreadPool::submit: empty task");
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ensure(!stop_, "ThreadPool::submit: pool is shutting down");
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++queued_;
    ++pending_;
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_get_task(std::size_t self, std::function<void()>& out) {
  // Own deque first (front), then steal from the back of the others so a
  // thief and the owner contend on opposite ends.
  {
    WorkerQueue& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  for (std::size_t off = 1; off < queues_.size(); ++off) {
    WorkerQueue& victim = *queues_[(self + off) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  std::function<void()> task;
  for (;;) {
    if (try_get_task(self, task)) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --queued_;
      }
      try {
        task();
      } catch (...) {
        // A throwing task used to escape the thread entry point and
        // std::terminate the whole campaign; capture the first error and
        // hand it to whoever joins at wait_idle().
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
      task = nullptr;
      bool idle;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        idle = --pending_ == 0;
      }
      if (idle) idle_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    wake_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    if (stop_ && queued_ == 0) return;
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
  if (error_) {
    auto e = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  struct State {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
  };
  State state;
  state.remaining = count;
  for (std::size_t i = 0; i < count; ++i) {
    submit([&state, &body, i] {
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mutex);
        if (!state.error) state.error = std::current_exception();
      }
      {
        // Notify while holding the lock: the waiter destroys `state` as soon
        // as it observes remaining == 0, so an unlocked notify could touch a
        // dead condition_variable.
        std::lock_guard<std::mutex> lock(state.mutex);
        if (--state.remaining == 0) state.done.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(state.mutex);
  state.done.wait(lock, [&state] { return state.remaining == 0; });
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace vps::support

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace vps::support {

/// Splits on a single-character delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char delim);

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text);

/// Splits into whitespace-separated tokens (no empties).
[[nodiscard]] std::vector<std::string> tokenize(std::string_view text);

/// Parses an integer with optional 0x prefix; throws std::invalid_argument.
[[nodiscard]] long long parse_int(std::string_view text);

/// Parses a double; throws std::invalid_argument on garbage.
[[nodiscard]] double parse_double(std::string_view text);

/// Human-friendly engineering notation, e.g. 1.23e6 -> "1.23M".
[[nodiscard]] std::string format_si(double value, int digits = 3);

/// True if text starts with / ends with the prefix/suffix.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix);

/// Lower-cases ASCII.
[[nodiscard]] std::string to_lower(std::string_view text);

}  // namespace vps::support

#include "vps/support/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace vps::support {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) text.remove_suffix(1);
  return text;
}

std::vector<std::string> tokenize(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

long long parse_int(std::string_view text) {
  text = trim(text);
  int base = 10;
  bool negative = false;
  if (!text.empty() && (text.front() == '-' || text.front() == '+')) {
    negative = text.front() == '-';
    text.remove_prefix(1);
  }
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    base = 16;
    text.remove_prefix(2);
  }
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value, base);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw std::invalid_argument("parse_int: bad integer '" + std::string(text) + "'");
  }
  return negative ? -value : value;
}

double parse_double(std::string_view text) {
  text = trim(text);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw std::invalid_argument("parse_double: bad number '" + std::string(text) + "'");
  }
  return value;
}

std::string format_si(double value, int digits) {
  static constexpr const char* kSuffix[] = {"a", "f", "p", "n", "u", "m", "", "k", "M", "G", "T", "P"};
  if (value == 0.0 || !std::isfinite(value)) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.*g", digits, value);
    return buf;
  }
  int exp3 = static_cast<int>(std::floor(std::log10(std::fabs(value)) / 3.0));
  exp3 = std::max(-6, std::min(5, exp3));
  const double scaled = value / std::pow(10.0, 3 * exp3);
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*g%s", digits, scaled, kSuffix[exp3 + 6]);
  return buf;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace vps::support

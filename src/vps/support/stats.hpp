#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vps::support {

/// Online mean/variance/min/max accumulator (Welford).
class Accumulator {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Half-width of the ~95% confidence interval on the mean (normal approx).
  [[nodiscard]] double ci95_half_width() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); finite out-of-range samples clamp
/// into the first/last bin so totals are conserved. Non-finite samples
/// (NaN/Inf) are dropped and counted separately instead of being fed into
/// the bin-index cast (which would be undefined behaviour).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count_in_bin(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Samples rejected by add() because they were NaN or infinite.
  [[nodiscard]] std::uint64_t dropped_non_finite() const noexcept { return dropped_non_finite_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  /// Percentile estimate (p in [0, 1]) by linear interpolation within the
  /// bin containing the requested rank. Returns lo() on an empty histogram.
  /// Resolution is bounded by the bin width, which is exactly what makes the
  /// estimate order-independent: the same samples in any order (or merged
  /// from any sharding) give bit-identical percentiles.
  [[nodiscard]] double percentile(double p) const noexcept;
  /// Adds another histogram's counts bin-by-bin. Both histograms must have
  /// the same range and bin count (order-independent shard merge).
  void merge(const Histogram& other);
  /// ASCII rendering used by bench reports.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t dropped_non_finite_ = 0;
};

/// Wilson score interval for a binomial proportion — used for failure-
/// probability estimates from fault campaigns, where p is tiny and the
/// normal approximation misbehaves.
struct Proportion {
  double estimate = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};
[[nodiscard]] Proportion wilson_interval(std::uint64_t successes,
                                         std::uint64_t trials,
                                         double z = 1.96);

}  // namespace vps::support

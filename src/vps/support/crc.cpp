#include "vps/support/crc.hpp"

#include <array>

namespace vps::support {
namespace {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace

std::uint8_t crc8_sae_j1850(std::span<const std::uint8_t> data) {
  std::uint8_t crc = 0xFF;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x80u) ? static_cast<std::uint8_t>((crc << 1) ^ 0x1D)
                          : static_cast<std::uint8_t>(crc << 1);
    }
  }
  return static_cast<std::uint8_t>(crc ^ 0xFF);
}

std::uint16_t crc15_can(const std::vector<bool>& bits) {
  std::uint16_t crc = 0;
  for (bool bit : bits) {
    const bool msb = (crc & 0x4000u) != 0;
    crc = static_cast<std::uint16_t>((crc << 1) & 0x7FFFu);
    if (bit != msb) crc ^= 0x4599u;
  }
  return crc;
}

std::uint32_t crc32_ieee(std::span<const std::uint8_t> data) {
  Crc32 crc;
  crc.update(data);
  return crc.value();
}

void Crc32::update(std::span<const std::uint8_t> data) noexcept {
  for (std::uint8_t byte : data) {
    state_ = kCrc32Table[(state_ ^ byte) & 0xFFu] ^ (state_ >> 8);
  }
}

void Crc32::update_u64(std::uint64_t v) noexcept {
  std::array<std::uint8_t, 8> bytes{};
  for (int i = 0; i < 8; ++i) bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (8 * i));
  update(bytes);
}

}  // namespace vps::support

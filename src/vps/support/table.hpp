#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vps::support {

/// Minimal ASCII table builder used by bench harnesses and report printers
/// to regenerate the paper-style result tables.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with %g.
  Table& add_row_numeric(const std::string& label, const std::vector<double>& values);

  [[nodiscard]] std::string render() const;
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vps::support

#pragma once

/// Functional-coverage machinery (covergroup / coverpoint / bins / cross)
/// plus the fault-space coverage model the error-effect simulation uses to
/// measure campaign completeness and steer coverage-driven injection
/// (paper Sec. 3.4: "intelligent coverage models are required to measure
/// the completeness of the error effect simulation").

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace vps::coverage {

/// Value bins over a signed integer domain.
class Coverpoint {
 public:
  explicit Coverpoint(std::string name) : name_(std::move(name)) {}

  /// Adds a bin covering [lo, hi].
  void add_bin(std::string bin_name, std::int64_t lo, std::int64_t hi);
  /// Adds `count` equal-width bins across [lo, hi].
  void add_uniform_bins(std::int64_t lo, std::int64_t hi, std::size_t count);

  void sample(std::int64_t value);

  /// Accumulates `other`'s per-bin hit counts into this point. Requires an
  /// identical bin layout (same count, same ranges). Merging is commutative
  /// and associative, so shards can be folded in any order.
  void merge(const Coverpoint& other);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t bin_count() const noexcept { return bins_.size(); }
  [[nodiscard]] std::size_t bins_hit() const noexcept;
  [[nodiscard]] double coverage() const noexcept;
  [[nodiscard]] std::uint64_t hits(std::size_t bin) const;
  [[nodiscard]] const std::string& bin_name(std::size_t bin) const;
  /// Index of the bin containing `value`, or npos.
  [[nodiscard]] std::size_t bin_of(std::int64_t value) const noexcept;
  [[nodiscard]] std::vector<std::string> holes() const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  struct Bin {
    std::string name;
    std::int64_t lo;
    std::int64_t hi;
    std::uint64_t hits = 0;
  };
  std::string name_;
  std::vector<Bin> bins_;
};

/// Cross coverage between two coverpoints of the same covergroup: the bin
/// matrix is hit when both points land in the respective bins on the same
/// sample() call.
class Cross {
 public:
  Cross(std::string name, const Coverpoint& a, const Coverpoint& b)
      : name_(std::move(name)), a_(a), b_(b) {}

  void sample(std::int64_t va, std::int64_t vb);

  /// Accumulates `other`'s hit matrix; requires the same matrix shape.
  void merge(const Cross& other);

  [[nodiscard]] std::size_t bin_count() const noexcept { return a_.bin_count() * b_.bin_count(); }
  [[nodiscard]] std::size_t bins_hit() const noexcept;
  [[nodiscard]] double coverage() const noexcept;
  [[nodiscard]] std::uint64_t hits(std::size_t bin_a, std::size_t bin_b) const;
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> holes() const;

 private:
  void ensure_storage() const;
  std::string name_;
  const Coverpoint& a_;
  const Coverpoint& b_;
  mutable std::vector<std::uint64_t> matrix_;
};

/// A group of coverpoints and crosses with an aggregate metric.
class Covergroup {
 public:
  explicit Covergroup(std::string name) : name_(std::move(name)) {}

  Coverpoint& add_coverpoint(std::string point_name);
  Cross& add_cross(std::string cross_name, const Coverpoint& a, const Coverpoint& b);

  /// Accumulates another group with the same structure (same points and
  /// crosses, by position and name) into this one.
  void merge(const Covergroup& other);

  [[nodiscard]] Coverpoint& point(const std::string& point_name);
  [[nodiscard]] double coverage() const noexcept;  ///< mean over points and crosses
  [[nodiscard]] std::string report() const;
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Coverpoint>> points_;
  std::vector<std::unique_ptr<Cross>> crosses_;
};

/// Fault-space coverage for error-effect campaigns: (fault class x location
/// bucket x injection-time window), with a class-by-location cross. The
/// campaign engine samples every injected fault and can query holes to
/// direct the next injection (coverage-driven closure).
class FaultSpaceCoverage {
 public:
  FaultSpaceCoverage(std::size_t fault_classes, std::size_t location_buckets,
                     std::size_t time_windows);

  /// Deep copy (same shape, same hit counts). Lets campaign results carry
  /// their coverage shard by value so CampaignResult::merge can recompute
  /// exact aggregate coverage instead of keeping the max.
  FaultSpaceCoverage(const FaultSpaceCoverage& other);
  FaultSpaceCoverage& operator=(const FaultSpaceCoverage&) = delete;
  /// Moves are safe: the cached Coverpoint/Cross pointers target heap
  /// objects owned through unique_ptr, whose addresses are move-stable.
  FaultSpaceCoverage(FaultSpaceCoverage&&) noexcept = default;
  FaultSpaceCoverage& operator=(FaultSpaceCoverage&&) noexcept = default;

  /// time_fraction in [0,1): injection time / scenario duration.
  void sample(std::size_t fault_class, std::size_t location_bucket, double time_fraction);

  /// Order-independent merge of a same-shaped shard: hit counts accumulate,
  /// so folding per-worker (or per-seed) shards in any order yields
  /// identical totals. Used by parallel campaign executors at their batch
  /// barrier and by sharded multi-seed aggregation.
  void merge(const FaultSpaceCoverage& other);

  [[nodiscard]] double coverage() const noexcept { return group_.coverage(); }
  [[nodiscard]] std::string report() const { return group_.report(); }
  /// First uncovered (class, location) pair, or nullopt when crossed out.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> class_location_holes() const {
    return cross_->holes();
  }
  [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }

 private:
  Covergroup group_;
  Coverpoint* class_point_ = nullptr;
  Coverpoint* location_point_ = nullptr;
  Coverpoint* time_point_ = nullptr;
  Cross* cross_ = nullptr;
  std::size_t fault_classes_;
  std::size_t location_buckets_;
  std::size_t time_windows_;
  std::uint64_t samples_ = 0;
};

}  // namespace vps::coverage

#include "vps/coverage/coverage.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "vps/support/ensure.hpp"

namespace vps::coverage {

using support::ensure;

void Coverpoint::add_bin(std::string bin_name, std::int64_t lo, std::int64_t hi) {
  ensure(lo <= hi, "Coverpoint::add_bin: empty range");
  bins_.push_back(Bin{std::move(bin_name), lo, hi, 0});
}

void Coverpoint::add_uniform_bins(std::int64_t lo, std::int64_t hi, std::size_t count) {
  ensure(count > 0 && hi >= lo, "Coverpoint::add_uniform_bins: bad arguments");
  const double width = static_cast<double>(hi - lo + 1) / static_cast<double>(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto b_lo = lo + static_cast<std::int64_t>(width * static_cast<double>(i));
    const auto b_hi = i + 1 == count
                          ? hi
                          : lo + static_cast<std::int64_t>(width * static_cast<double>(i + 1)) - 1;
    add_bin(name_ + "[" + std::to_string(i) + "]", b_lo, std::max(b_lo, b_hi));
  }
}

void Coverpoint::sample(std::int64_t value) {
  const std::size_t bin = bin_of(value);
  if (bin != npos) ++bins_[bin].hits;
}

void Coverpoint::merge(const Coverpoint& other) {
  ensure(bins_.size() == other.bins_.size(), "Coverpoint::merge: bin count mismatch");
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    ensure(bins_[i].lo == other.bins_[i].lo && bins_[i].hi == other.bins_[i].hi,
           "Coverpoint::merge: bin layout mismatch");
    bins_[i].hits += other.bins_[i].hits;
  }
}

std::size_t Coverpoint::bin_of(std::int64_t value) const noexcept {
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (value >= bins_[i].lo && value <= bins_[i].hi) return i;
  }
  return npos;
}

std::size_t Coverpoint::bins_hit() const noexcept {
  std::size_t hit = 0;
  for (const auto& b : bins_) hit += b.hits > 0;
  return hit;
}

double Coverpoint::coverage() const noexcept {
  return bins_.empty() ? 1.0 : static_cast<double>(bins_hit()) / static_cast<double>(bins_.size());
}

std::uint64_t Coverpoint::hits(std::size_t bin) const {
  ensure(bin < bins_.size(), "Coverpoint::hits: bin out of range");
  return bins_[bin].hits;
}

const std::string& Coverpoint::bin_name(std::size_t bin) const {
  ensure(bin < bins_.size(), "Coverpoint::bin_name: bin out of range");
  return bins_[bin].name;
}

std::vector<std::string> Coverpoint::holes() const {
  std::vector<std::string> out;
  for (const auto& b : bins_) {
    if (b.hits == 0) out.push_back(b.name);
  }
  return out;
}

void Cross::ensure_storage() const {
  if (matrix_.size() != bin_count()) matrix_.assign(bin_count(), 0);
}

void Cross::sample(std::int64_t va, std::int64_t vb) {
  ensure_storage();
  const std::size_t ba = a_.bin_of(va);
  const std::size_t bb = b_.bin_of(vb);
  if (ba == Coverpoint::npos || bb == Coverpoint::npos) return;
  ++matrix_[ba * b_.bin_count() + bb];
}

void Cross::merge(const Cross& other) {
  ensure(bin_count() == other.bin_count(), "Cross::merge: shape mismatch");
  ensure_storage();
  other.ensure_storage();
  for (std::size_t i = 0; i < matrix_.size(); ++i) matrix_[i] += other.matrix_[i];
}

std::size_t Cross::bins_hit() const noexcept {
  ensure_storage();
  std::size_t hit = 0;
  for (auto h : matrix_) hit += h > 0;
  return hit;
}

double Cross::coverage() const noexcept {
  return bin_count() == 0 ? 1.0
                          : static_cast<double>(bins_hit()) / static_cast<double>(bin_count());
}

std::uint64_t Cross::hits(std::size_t bin_a, std::size_t bin_b) const {
  ensure_storage();
  ensure(bin_a < a_.bin_count() && bin_b < b_.bin_count(), "Cross::hits: bin out of range");
  return matrix_[bin_a * b_.bin_count() + bin_b];
}

std::vector<std::pair<std::size_t, std::size_t>> Cross::holes() const {
  ensure_storage();
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t i = 0; i < a_.bin_count(); ++i) {
    for (std::size_t j = 0; j < b_.bin_count(); ++j) {
      if (matrix_[i * b_.bin_count() + j] == 0) out.emplace_back(i, j);
    }
  }
  return out;
}

Coverpoint& Covergroup::add_coverpoint(std::string point_name) {
  points_.push_back(std::make_unique<Coverpoint>(std::move(point_name)));
  return *points_.back();
}

Cross& Covergroup::add_cross(std::string cross_name, const Coverpoint& a, const Coverpoint& b) {
  crosses_.push_back(std::make_unique<Cross>(std::move(cross_name), a, b));
  return *crosses_.back();
}

void Covergroup::merge(const Covergroup& other) {
  ensure(points_.size() == other.points_.size() && crosses_.size() == other.crosses_.size(),
         "Covergroup::merge: structure mismatch");
  for (std::size_t i = 0; i < points_.size(); ++i) {
    ensure(points_[i]->name() == other.points_[i]->name(),
           "Covergroup::merge: coverpoint name mismatch");
    points_[i]->merge(*other.points_[i]);
  }
  for (std::size_t i = 0; i < crosses_.size(); ++i) {
    ensure(crosses_[i]->name() == other.crosses_[i]->name(),
           "Covergroup::merge: cross name mismatch");
    crosses_[i]->merge(*other.crosses_[i]);
  }
}

Coverpoint& Covergroup::point(const std::string& point_name) {
  for (auto& p : points_) {
    if (p->name() == point_name) return *p;
  }
  throw support::InvariantError("Covergroup: unknown coverpoint " + point_name);
}

double Covergroup::coverage() const noexcept {
  const std::size_t n = points_.size() + crosses_.size();
  if (n == 0) return 1.0;
  double acc = 0.0;
  for (const auto& p : points_) acc += p->coverage();
  for (const auto& c : crosses_) acc += c->coverage();
  return acc / static_cast<double>(n);
}

std::string Covergroup::report() const {
  char buf[128];
  std::string out = "covergroup " + name_ + "\n";
  for (const auto& p : points_) {
    std::snprintf(buf, sizeof buf, "  point %-16s %5.1f%% (%zu/%zu bins)\n", p->name().c_str(),
                  100.0 * p->coverage(), p->bins_hit(), p->bin_count());
    out += buf;
  }
  for (const auto& c : crosses_) {
    std::snprintf(buf, sizeof buf, "  cross %-16s %5.1f%% (%zu/%zu bins)\n", c->name().c_str(),
                  100.0 * c->coverage(), c->bins_hit(), c->bin_count());
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "  TOTAL %.1f%%\n", 100.0 * coverage());
  out += buf;
  return out;
}

FaultSpaceCoverage::FaultSpaceCoverage(std::size_t fault_classes, std::size_t location_buckets,
                                       std::size_t time_windows)
    : group_("fault_space"),
      fault_classes_(fault_classes),
      location_buckets_(location_buckets),
      time_windows_(time_windows) {
  ensure(fault_classes > 0 && location_buckets > 0 && time_windows > 0,
         "FaultSpaceCoverage: dimensions must be positive");
  class_point_ = &group_.add_coverpoint("fault_class");
  for (std::size_t i = 0; i < fault_classes; ++i) {
    class_point_->add_bin("class" + std::to_string(i), static_cast<std::int64_t>(i),
                          static_cast<std::int64_t>(i));
  }
  location_point_ = &group_.add_coverpoint("location");
  for (std::size_t i = 0; i < location_buckets; ++i) {
    location_point_->add_bin("loc" + std::to_string(i), static_cast<std::int64_t>(i),
                             static_cast<std::int64_t>(i));
  }
  time_point_ = &group_.add_coverpoint("time_window");
  for (std::size_t i = 0; i < time_windows; ++i) {
    time_point_->add_bin("t" + std::to_string(i), static_cast<std::int64_t>(i),
                         static_cast<std::int64_t>(i));
  }
  cross_ = &group_.add_cross("class_x_location", *class_point_, *location_point_);
}

FaultSpaceCoverage::FaultSpaceCoverage(const FaultSpaceCoverage& other)
    : FaultSpaceCoverage(other.fault_classes_, other.location_buckets_, other.time_windows_) {
  // Covergroup owns its points/crosses behind unique_ptr and Cross holds
  // references into its group, so copying = rebuild the same shape + fold
  // the source's hit counts in.
  merge(other);
}

void FaultSpaceCoverage::merge(const FaultSpaceCoverage& other) {
  ensure(fault_classes_ == other.fault_classes_ && location_buckets_ == other.location_buckets_ &&
             time_windows_ == other.time_windows_,
         "FaultSpaceCoverage::merge: shape mismatch");
  group_.merge(other.group_);
  samples_ += other.samples_;
}

void FaultSpaceCoverage::sample(std::size_t fault_class, std::size_t location_bucket,
                                double time_fraction) {
  ++samples_;
  const auto fc = static_cast<std::int64_t>(fault_class);
  const auto loc = static_cast<std::int64_t>(location_bucket);
  double tf = time_fraction;
  if (tf < 0.0) tf = 0.0;
  if (tf >= 1.0) tf = 0.999999;
  const auto tw = static_cast<std::int64_t>(tf * static_cast<double>(time_windows_));
  class_point_->sample(fc);
  location_point_->sample(loc);
  time_point_->sample(tw);
  cross_->sample(fc, loc);
}

}  // namespace vps::coverage

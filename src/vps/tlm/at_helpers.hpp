#pragma once

/// Approximately-timed protocol helpers: a pipelined AT target base class and
/// a blocking AT initiator adapter. They implement the four-phase base
/// protocol on top of the kernel so models can be written against either
/// coding style and compared (loosely-timed speed vs AT accuracy, E4/E5).

#include <deque>

#include "vps/sim/module.hpp"
#include "vps/tlm/payload.hpp"
#include "vps/tlm/sockets.hpp"

namespace vps::tlm {

/// AT target that accepts BEGIN_REQ, applies a functional handler after
/// `process_latency`, and sends BEGIN_RESP over the backward path. Handles
/// one outstanding transaction per accept slot (request pipelining allowed).
class AtTarget : public sim::Module, public NbTransportFw {
 public:
  AtTarget(sim::Kernel& kernel, std::string name, sim::Time accept_latency,
           sim::Time process_latency)
      : Module(kernel, std::move(name)),
        accept_latency_(accept_latency),
        process_latency_(process_latency),
        socket_(this->name() + ".tsock"),
        work_(kernel, this->name() + ".work") {
    socket_.set_nonblocking(*this);
    spawn("responder", responder());
  }

  [[nodiscard]] TargetSocket& socket() noexcept { return socket_; }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }

  /// Functional behaviour, supplied by the concrete target.
  virtual void handle(GenericPayload& payload) = 0;

  Sync nb_transport_fw(GenericPayload& payload, Phase& phase, sim::Time& delay) override {
    if (phase == Phase::kBeginReq) {
      pending_.push_back(&payload);
      work_.notify(delay + accept_latency_);
      phase = Phase::kEndReq;
      delay += accept_latency_;
      return Sync::kUpdated;
    }
    if (phase == Phase::kEndResp) {
      return Sync::kCompleted;
    }
    payload.set_response(Response::kCommandError);
    return Sync::kCompleted;
  }

 private:
  [[nodiscard]] sim::Coro responder() {
    for (;;) {
      while (pending_.empty()) co_await work_;
      GenericPayload* payload = pending_.front();
      pending_.pop_front();
      co_await sim::delay(process_latency_);
      handle(*payload);
      if (payload->response() == Response::kIncomplete) payload->set_response(Response::kOk);
      Phase phase = Phase::kBeginResp;
      sim::Time delay = sim::Time::zero();
      if (socket_.backward() != nullptr) {
        (void)socket_.backward()->nb_transport_bw(*payload, phase, delay);
      }
      ++completed_;
    }
  }

  sim::Time accept_latency_;
  sim::Time process_latency_;
  TargetSocket socket_;
  sim::Event work_;
  std::deque<GenericPayload*> pending_;
  std::uint64_t completed_ = 0;
};

/// Adapter that gives thread processes a blocking call over the AT protocol:
/// `co_await at.transport(payload)` completes when BEGIN_RESP arrives.
class AtInitiator : public sim::Module, public NbTransportBw {
 public:
  AtInitiator(sim::Kernel& kernel, std::string name)
      : Module(kernel, std::move(name)),
        socket_(this->name() + ".isock"),
        response_(kernel, this->name() + ".resp") {
    socket_.set_bw(*this);
  }

  [[nodiscard]] InitiatorSocket& socket() noexcept { return socket_; }

  [[nodiscard]] sim::Coro transport(GenericPayload& payload) {
    Phase phase = Phase::kBeginReq;
    sim::Time delay = sim::Time::zero();
    const Sync sync = socket_.nb_transport_fw(payload, phase, delay);
    if (sync == Sync::kCompleted) {
      if (delay != sim::Time::zero()) co_await sim::delay(delay);
      co_return;
    }
    // Wait for BEGIN_RESP on the backward path.
    while (!response_arrived_) co_await response_;
    response_arrived_ = false;
    Phase end = Phase::kEndResp;
    sim::Time zero = sim::Time::zero();
    (void)socket_.nb_transport_fw(payload, end, zero);
  }

  Sync nb_transport_bw(GenericPayload& /*payload*/, Phase& phase, sim::Time& /*delay*/) override {
    if (phase == Phase::kBeginResp) {
      response_arrived_ = true;
      response_.notify();
      return Sync::kAccepted;
    }
    return Sync::kAccepted;
  }

 private:
  InitiatorSocket socket_;
  sim::Event response_;
  bool response_arrived_ = false;
};

}  // namespace vps::tlm

#pragma once

#include "vps/sim/kernel.hpp"
#include "vps/sim/time.hpp"

namespace vps::tlm {

/// Temporal-decoupling helper (tlm_quantumkeeper analogue). An initiator
/// accumulates local time ahead of the kernel and only synchronizes when the
/// quantum is exhausted — the acceleration technique the paper names as a
/// research lever for making VP-based stress tests tractable (Sec. 3.4).
class QuantumKeeper {
 public:
  QuantumKeeper(sim::Kernel& kernel, sim::Time quantum) : kernel_(kernel), quantum_(quantum) {}

  [[nodiscard]] sim::Time quantum() const noexcept { return quantum_; }
  void set_quantum(sim::Time q) noexcept { quantum_ = q; }

  /// Local offset ahead of kernel time.
  [[nodiscard]] sim::Time local_time() const noexcept { return local_; }
  /// Effective simulated time as seen by the decoupled initiator.
  [[nodiscard]] sim::Time current_time() const noexcept { return kernel_.now() + local_; }

  void inc(sim::Time t) noexcept { local_ += t; }
  void set(sim::Time t) noexcept { local_ = t; }
  void reset() noexcept { local_ = sim::Time::zero(); }

  [[nodiscard]] bool need_sync() const noexcept { return quantum_ != sim::Time::zero() && local_ >= quantum_; }

  /// Yields to the kernel for the accumulated local time. A zero quantum
  /// means "sync on every call" (fully coupled reference behaviour). A call
  /// with no accumulated local time performs no kernel yield and is not
  /// counted: sync_count() reports actual yields only, so the E4 decoupling
  /// stats are not skewed by flush calls that had nothing to flush.
  [[nodiscard]] sim::Coro sync() {
    const sim::Time t = local_;
    local_ = sim::Time::zero();
    if (t != sim::Time::zero()) {
      ++sync_count_;
      co_await sim::delay(t);
    }
  }

  /// Syncs only when the quantum is exhausted.
  [[nodiscard]] sim::Coro sync_if_needed() {
    if (need_sync()) co_await sync();
  }

  /// Number of actual kernel yields performed by sync().
  [[nodiscard]] std::uint64_t sync_count() const noexcept { return sync_count_; }

  /// Value-type image for snapshot-and-fork replay.
  struct Snapshot {
    sim::Time local;
    std::uint64_t sync_count = 0;
  };

  [[nodiscard]] Snapshot snapshot() const noexcept { return Snapshot{local_, sync_count_}; }
  void restore(const Snapshot& s) noexcept {
    local_ = s.local;
    sync_count_ = s.sync_count;
  }

 private:
  sim::Kernel& kernel_;
  sim::Time quantum_;
  sim::Time local_ = sim::Time::zero();
  std::uint64_t sync_count_ = 0;
};

}  // namespace vps::tlm

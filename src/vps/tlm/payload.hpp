#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace vps::tlm {

/// Transaction command (TLM-2.0 generic payload subset).
enum class Command : std::uint8_t { kRead, kWrite, kIgnore };

/// Transaction completion status.
enum class Response : std::uint8_t {
  kIncomplete,
  kOk,
  kAddressError,
  kCommandError,
  kBurstError,
  kGenericError,
};

[[nodiscard]] constexpr const char* to_string(Response r) noexcept {
  switch (r) {
    case Response::kIncomplete: return "INCOMPLETE";
    case Response::kOk: return "OK";
    case Response::kAddressError: return "ADDRESS_ERROR";
    case Response::kCommandError: return "COMMAND_ERROR";
    case Response::kBurstError: return "BURST_ERROR";
    case Response::kGenericError: return "GENERIC_ERROR";
  }
  return "?";
}

/// Memory-mapped transaction payload. Owns its data buffer (unlike TLM-2.0's
/// raw pointer) so fault injectors can corrupt payloads without lifetime
/// hazards, and carries injection metadata for fault-effect tracking.
class GenericPayload {
 public:
  GenericPayload() = default;
  GenericPayload(Command cmd, std::uint64_t address, std::size_t size)
      : command_(cmd), address_(address), data_(size, 0) {}

  [[nodiscard]] Command command() const noexcept { return command_; }
  void set_command(Command c) noexcept { command_ = c; }

  [[nodiscard]] std::uint64_t address() const noexcept { return address_; }
  void set_address(std::uint64_t a) noexcept { address_ = a; }

  [[nodiscard]] std::span<const std::uint8_t> data() const noexcept { return data_; }
  [[nodiscard]] std::span<std::uint8_t> data() noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  void set_data(std::span<const std::uint8_t> bytes) { data_.assign(bytes.begin(), bytes.end()); }
  void resize(std::size_t n) { data_.resize(n, 0); }

  [[nodiscard]] Response response() const noexcept { return response_; }
  void set_response(Response r) noexcept { response_ = r; }
  [[nodiscard]] bool ok() const noexcept { return response_ == Response::kOk; }

  [[nodiscard]] bool dmi_allowed() const noexcept { return dmi_allowed_; }
  void set_dmi_allowed(bool v) noexcept { dmi_allowed_ = v; }

  /// Fault-injection metadata: marks the payload as corrupted by an injector
  /// with the given campaign fault id; monitors use it for fault-to-failure
  /// attribution in error-effect analysis.
  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }
  [[nodiscard]] std::uint64_t poison_id() const noexcept { return poison_id_; }
  void poison(std::uint64_t fault_id) noexcept {
    poisoned_ = true;
    poison_id_ = fault_id;
  }
  void clear_poison() noexcept {
    poisoned_ = false;
    poison_id_ = 0;
  }

  /// Little-endian scalar access helpers (the AR32 substrate is LE).
  [[nodiscard]] std::uint64_t value_le() const noexcept {
    std::uint64_t v = 0;
    for (std::size_t i = data_.size(); i-- > 0;) v = (v << 8) | data_[i];
    return v;
  }
  void set_value_le(std::uint64_t v) noexcept {
    for (auto& byte : data_) {
      byte = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }

  [[nodiscard]] std::string to_string() const;

 private:
  Command command_ = Command::kIgnore;
  std::uint64_t address_ = 0;
  std::vector<std::uint8_t> data_;
  Response response_ = Response::kIncomplete;
  bool dmi_allowed_ = false;
  bool poisoned_ = false;
  std::uint64_t poison_id_ = 0;
};

}  // namespace vps::tlm

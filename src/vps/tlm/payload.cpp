#include "vps/tlm/payload.hpp"

#include <cstdio>

namespace vps::tlm {

std::string GenericPayload::to_string() const {
  const char* cmd = command_ == Command::kRead    ? "R"
                    : command_ == Command::kWrite ? "W"
                                                  : "I";
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s@0x%08llx len=%zu resp=%s%s", cmd,
                static_cast<unsigned long long>(address_), data_.size(),
                vps::tlm::to_string(response_), poisoned_ ? " POISONED" : "");
  return buf;
}

}  // namespace vps::tlm

#pragma once

#include <cstdint>
#include <string>

#include "vps/sim/time.hpp"
#include "vps/support/ensure.hpp"
#include "vps/tlm/payload.hpp"

namespace vps::tlm {

/// Loosely-timed transport interface (b_transport). The callee annotates the
/// accumulated delay instead of consuming simulated time, which is what
/// enables temporal decoupling (DESIGN.md E4).
class BlockingTransport {
 public:
  virtual ~BlockingTransport() = default;
  virtual void b_transport(GenericPayload& payload, sim::Time& delay) = 0;
};

/// Approximately-timed protocol phases (TLM-2.0 base protocol subset).
enum class Phase : std::uint8_t { kBeginReq, kEndReq, kBeginResp, kEndResp };
enum class Sync : std::uint8_t { kAccepted, kUpdated, kCompleted };

class NbTransportFw {
 public:
  virtual ~NbTransportFw() = default;
  virtual Sync nb_transport_fw(GenericPayload& payload, Phase& phase, sim::Time& delay) = 0;
};

class NbTransportBw {
 public:
  virtual ~NbTransportBw() = default;
  virtual Sync nb_transport_bw(GenericPayload& payload, Phase& phase, sim::Time& delay) = 0;
};

/// Direct memory interface grant: a raw window into the target's backing
/// store, bypassing transport for LT fast paths.
struct DmiRegion {
  std::uint8_t* base = nullptr;
  std::uint64_t start = 0;
  std::uint64_t end = 0;  // inclusive
  sim::Time read_latency = sim::Time::zero();
  sim::Time write_latency = sim::Time::zero();
  bool allows_read = false;
  bool allows_write = false;

  [[nodiscard]] bool covers(std::uint64_t address, std::size_t size) const noexcept {
    return base != nullptr && address >= start && address + size - 1 <= end;
  }
};

class DmiProvider {
 public:
  virtual ~DmiProvider() = default;
  /// Returns true and fills `region` when DMI is granted for the address.
  virtual bool get_direct_mem_ptr(std::uint64_t address, DmiRegion& region) = 0;
};

class InitiatorSocket;

/// Target-side socket: the owning model registers the interfaces it
/// implements. Unset optional interfaces are reported as misuse when called.
class TargetSocket {
 public:
  explicit TargetSocket(std::string name) : name_(std::move(name)) {}

  void set_blocking(BlockingTransport& ifc) noexcept { blocking_ = &ifc; }
  void set_nonblocking(NbTransportFw& ifc) noexcept { nonblocking_ = &ifc; }
  void set_dmi(DmiProvider& ifc) noexcept { dmi_ = &ifc; }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool has_blocking() const noexcept { return blocking_ != nullptr; }
  [[nodiscard]] bool has_nonblocking() const noexcept { return nonblocking_ != nullptr; }
  /// Backward path to the bound initiator (AT responses).
  [[nodiscard]] NbTransportBw* backward() const noexcept { return bound_bw_; }

 private:
  friend class InitiatorSocket;
  std::string name_;
  BlockingTransport* blocking_ = nullptr;
  NbTransportFw* nonblocking_ = nullptr;
  DmiProvider* dmi_ = nullptr;
  NbTransportBw* bound_bw_ = nullptr;  // backward path to the bound initiator
};

/// Initiator-side socket: forwards transactions to the bound target.
class InitiatorSocket {
 public:
  explicit InitiatorSocket(std::string name) : name_(std::move(name)) {}

  void bind(TargetSocket& target) noexcept {
    target_ = &target;
    target.bound_bw_ = bw_;
  }
  /// Registers the initiator's backward interface (AT responses).
  void set_bw(NbTransportBw& bw) noexcept {
    bw_ = &bw;
    if (target_ != nullptr) target_->bound_bw_ = &bw;
  }

  [[nodiscard]] bool bound() const noexcept { return target_ != nullptr; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  void b_transport(GenericPayload& payload, sim::Time& delay) {
    support::ensure(target_ != nullptr && target_->blocking_ != nullptr,
                    "b_transport on unbound socket " + name_);
    target_->blocking_->b_transport(payload, delay);
  }

  Sync nb_transport_fw(GenericPayload& payload, Phase& phase, sim::Time& delay) {
    support::ensure(target_ != nullptr && target_->nonblocking_ != nullptr,
                    "nb_transport_fw on unbound socket " + name_);
    return target_->nonblocking_->nb_transport_fw(payload, phase, delay);
  }

  bool get_direct_mem_ptr(std::uint64_t address, DmiRegion& region) {
    if (target_ == nullptr || target_->dmi_ == nullptr) return false;
    return target_->dmi_->get_direct_mem_ptr(address, region);
  }

 private:
  std::string name_;
  TargetSocket* target_ = nullptr;
  NbTransportBw* bw_ = nullptr;
};

}  // namespace vps::tlm

#include "vps/tlm/router.hpp"

#include <cstdio>
#include <memory>

#include "vps/support/ensure.hpp"

namespace vps::tlm {

using support::ensure;

namespace {

/// Span label like "write@0x40000000" — command plus the initiator-side
/// address, stable across runs so traces diff cleanly.
std::string transaction_name(const GenericPayload& payload) {
  const char* verb = payload.command() == Command::kRead    ? "read"
                     : payload.command() == Command::kWrite ? "write"
                                                            : "ignore";
  char buf[32];
  std::snprintf(buf, sizeof buf, "@0x%llx",
                static_cast<unsigned long long>(payload.address()));
  return std::string(verb) + buf;
}

}  // namespace

Router::Router(std::string name, sim::Time hop_latency)
    : name_(std::move(name)), hop_latency_(hop_latency), socket_(name_ + ".tsock") {
  socket_.set_blocking(*this);
  socket_.set_dmi(*this);
}

void Router::map(std::uint64_t base, std::uint64_t size, TargetSocket& target) {
  ensure(size > 0, "Router::map: empty window");
  ensure(base + size - 1 >= base, "Router::map: window wraps the address space");
  for (const auto& w : map_) {
    const bool disjoint = base + size <= w->base || w->base + w->size <= base;
    ensure(disjoint, "Router::map: window overlaps existing mapping in " + name_);
  }
  auto window = std::make_unique<Window>(base, size, name_ + ".out" + std::to_string(map_.size()));
  window->out.bind(target);
  map_.push_back(std::move(window));
}

Router::Window* Router::decode(std::uint64_t address, std::size_t size) {
  for (const auto& w : map_) {
    if (address >= w->base && address + size <= w->base + w->size) return w.get();
  }
  return nullptr;
}

void Router::b_transport(GenericPayload& payload, sim::Time& delay) {
  Window* w = decode(payload.address(), payload.size());
  if (w == nullptr) {
    ++decode_errors_;
    payload.set_response(Response::kAddressError);
    if (probe_ != nullptr) {
      probe_->mark("tlm", "decode_error" + transaction_name(payload),
                   {obs::TraceArg::number("size", static_cast<double>(payload.size()))});
    }
    return;
  }
  ++forwarded_;
  const sim::Time delay_before = delay;
  delay += hop_latency_;
  const std::uint64_t original = payload.address();
  payload.set_address(original - w->base);
  w->out.b_transport(payload, delay);
  payload.set_address(original);
  if (provenance_ != nullptr && payload.poisoned()) {
    provenance_->touch(payload.poison_id(), "bus:" + name_);
  }
  if (probe_ != nullptr) {
    // Annotated LT timing: the transaction occupies [now + delay_before,
    // now + delay_after) of simulated time.
    probe_->record("tlm", transaction_name(payload), probe_->kernel().now() + delay_before,
                   delay - delay_before,
                   {obs::TraceArg::str("response", to_string(payload.response())),
                    obs::TraceArg::number("size", static_cast<double>(payload.size()))});
  }
}

bool Router::get_direct_mem_ptr(std::uint64_t address, DmiRegion& region) {
  Window* w = decode(address, 1);
  if (w == nullptr) return false;
  if (!w->out.get_direct_mem_ptr(address - w->base, region)) return false;
  // Translate the granted window back into the initiator's address space.
  region.start += w->base;
  region.end += w->base;
  // Clip to the mapping window so the grant never exceeds the decode range.
  const std::uint64_t window_end = w->base + w->size - 1;
  if (region.end > window_end) region.end = window_end;
  return true;
}

}  // namespace vps::tlm

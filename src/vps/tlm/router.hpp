#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vps/obs/probe.hpp"
#include "vps/obs/provenance.hpp"
#include "vps/sim/time.hpp"
#include "vps/tlm/payload.hpp"
#include "vps/tlm/sockets.hpp"

namespace vps::tlm {

/// Address-decoding interconnect: forwards b_transport to the target whose
/// window covers the address, subtracting the window base (subtractive
/// decode). Models a per-hop routing latency so bus contention-free timing
/// is still visible in LT simulations.
class Router final : public BlockingTransport, public DmiProvider {
 public:
  explicit Router(std::string name, sim::Time hop_latency = sim::Time::zero());

  /// Maps [base, base+size) to the given target socket.
  /// Overlapping windows are rejected.
  void map(std::uint64_t base, std::uint64_t size, TargetSocket& target);

  [[nodiscard]] TargetSocket& target_socket() noexcept { return socket_; }
  [[nodiscard]] std::size_t mapping_count() const noexcept { return map_.size(); }
  [[nodiscard]] std::uint64_t forwarded() const noexcept { return forwarded_; }
  [[nodiscard]] std::uint64_t decode_errors() const noexcept { return decode_errors_; }

  /// Attaches a transaction probe: every forwarded b_transport becomes a
  /// latency sample and (with a Tracer on the probe) a trace span; decode
  /// errors become instant marks. The probe supplies the kernel reference
  /// for timestamps — the router itself does not keep time. nullptr detaches.
  void set_probe(obs::TransactionProbe* probe) noexcept { probe_ = probe; }
  [[nodiscard]] obs::TransactionProbe* probe() const noexcept { return probe_; }

  /// Attaches a provenance tracker: poisoned payloads crossing this router
  /// become first-contact observations at site "bus:<name>". nullptr
  /// detaches; disabled cost is one pointer test per transaction.
  void set_provenance(obs::ProvenanceTracker* tracker) noexcept { provenance_ = tracker; }

  void b_transport(GenericPayload& payload, sim::Time& delay) override;
  bool get_direct_mem_ptr(std::uint64_t address, DmiRegion& region) override;

  // --- snapshot-and-fork replay -------------------------------------------
  struct Snapshot {
    std::uint64_t forwarded = 0;
    std::uint64_t decode_errors = 0;
  };
  [[nodiscard]] Snapshot snapshot() const { return Snapshot{forwarded_, decode_errors_}; }
  void restore(const Snapshot& s) {
    forwarded_ = s.forwarded;
    decode_errors_ = s.decode_errors;
  }

 private:
  struct Window {
    std::uint64_t base;
    std::uint64_t size;
    InitiatorSocket out;
    Window(std::uint64_t b, std::uint64_t s, const std::string& name)
        : base(b), size(s), out(name) {}
  };

  Window* decode(std::uint64_t address, std::size_t size);

  std::string name_;
  sim::Time hop_latency_;
  TargetSocket socket_;
  std::vector<std::unique_ptr<Window>> map_;
  obs::TransactionProbe* probe_ = nullptr;
  obs::ProvenanceTracker* provenance_ = nullptr;
  std::uint64_t forwarded_ = 0;
  std::uint64_t decode_errors_ = 0;
};

}  // namespace vps::tlm

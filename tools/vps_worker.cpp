// vps-worker: worker-process binary of the distributed fault-injection
// campaign. Two modes:
//
//   --fd N                 one-shot fleet member: the coordinator fork+execs
//                          this with one end of a socketpair on an inherited
//                          fd (conventionally 3) and drives it over the
//                          framed protocol: SETUP in, HELLO out, then
//                          ASSIGN/RESULT until SHUTDOWN.
//   --connect HOST:PORT    standing-pool member: connects to a running
//                          vps-serverd, REGISTERs, and serves many
//                          campaigns at once (job-tagged SETUPs, scenario
//                          cache per job) until the server shuts it down.
//                          Self-healing: a lost link, a refused connect or a
//                          restarted server is ridden out by reconnecting
//                          with exponential backoff + deterministic jitter
//                          and re-REGISTERing — only SHUTDOWN (or a fatal
//                          REJECT/version mismatch) ends the process.
//
// Pool-mode knobs:
//   --retry-ms MS          initial reconnect backoff (doubles to 50x)
//   --max-reconnects N     consecutive failed sessions before giving up
//   --idle-timeout-ms MS   silence tolerated in a session before reconnecting
//   --chaos-seed N         deterministic outbound fault injection (0 = off)
//   --trace-dir DIR        write run-lifecycle trace JSONL (replay spans,
//                          reconnect events) for vps-tracecat to merge
//
// Either way the scenario is rebuilt locally from the SETUP message's
// registry spec, so the worker shares no address space — a replay that
// corrupts or kills this process cannot take the coordinator, the server,
// or its siblings down with it.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "vps/apps/registry.hpp"
#include "vps/dist/worker.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --fd N | --connect HOST:PORT [--retry-ms MS] [--max-reconnects N] "
               "[--idle-timeout-ms MS] [--chaos-seed N] [--trace-dir DIR]\n"
               "  --fd N              serve one campaign on the socket inherited as\n"
               "                      file descriptor N (spawned by the coordinator)\n"
               "  --connect HOST:PORT join a vps-serverd standing worker pool\n"
               "                      (auto-reconnects across server restarts)\n"
               "  --retry-ms MS       initial reconnect backoff (default 100)\n"
               "  --max-reconnects N  consecutive failures before giving up (default 100)\n"
               "  --idle-timeout-ms MS longest server silence per session (default 30000)\n"
               "  --chaos-seed N      inject deterministic network faults (0 = off)\n"
               "  --trace-dir DIR     write run-lifecycle trace JSONL into DIR\n\n%s",
               argv0, vps::apps::registry_help().c_str());
  return 64;  // EX_USAGE
}

}  // namespace

int main(int argc, char** argv) {
  int fd = -1;
  std::string connect_to;
  vps::dist::PoolConfig pool;
  for (int i = 1; i < argc; ++i) {
    const auto want_value = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0 && i + 1 < argc;
    };
    if (want_value("--fd")) {
      fd = std::atoi(argv[++i]);
    } else if (want_value("--connect")) {
      connect_to = argv[++i];
    } else if (want_value("--retry-ms")) {
      pool.backoff_initial_ms = std::atoi(argv[++i]);
      pool.backoff_max_ms = pool.backoff_initial_ms * 50;
    } else if (want_value("--max-reconnects")) {
      pool.max_reconnects = std::atoi(argv[++i]);
    } else if (want_value("--idle-timeout-ms")) {
      pool.idle_timeout_ms = std::atoi(argv[++i]);
    } else if (want_value("--chaos-seed")) {
      pool.chaos.seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (want_value("--trace-dir")) {
      pool.trace_dir = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if ((fd < 0) == connect_to.empty()) return usage(argv[0]);  // exactly one mode

  const auto build = [](const vps::dist::SetupMsg& setup) {
    return vps::apps::make_scenario(setup.scenario_spec);
  };
  try {
    if (!connect_to.empty()) {
      const std::size_t colon = connect_to.rfind(':');
      if (colon == std::string::npos) return usage(argv[0]);
      const std::string host = connect_to.substr(0, colon);
      const int port = std::atoi(connect_to.c_str() + colon + 1);
      if (port <= 0 || port > 65535) return usage(argv[0]);
      pool.host = host;
      pool.port = static_cast<std::uint16_t>(port);
      return vps::dist::serve_pool(pool, build);
    }
    vps::dist::Channel channel(fd);
    return vps::dist::serve(channel, build);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vps-worker: %s\n", e.what());
    return 3;
  }
}

// vps-worker: worker-process binary of the distributed fault-injection
// campaign. The coordinator fork+execs this with one end of a socketpair on
// an inherited fd (conventionally 3) and drives it over the framed protocol:
// SETUP in, HELLO out, then ASSIGN/RESULT until SHUTDOWN. The scenario is
// rebuilt locally from the SETUP message's registry spec, so the worker
// shares no address space — a replay that corrupts or kills this process
// cannot take the coordinator (or its siblings) down with it.
//
// Usage: vps-worker --fd N

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "vps/apps/registry.hpp"
#include "vps/dist/worker.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --fd N\n"
               "  Serves the distributed-campaign worker protocol on the socket\n"
               "  inherited as file descriptor N. Not meant to be run by hand —\n"
               "  the campaign coordinator spawns it.\n\n%s",
               argv0, vps::apps::registry_help().c_str());
  return 64;  // EX_USAGE
}

}  // namespace

int main(int argc, char** argv) {
  int fd = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fd") == 0 && i + 1 < argc) {
      fd = std::atoi(argv[++i]);
    } else {
      return usage(argv[0]);
    }
  }
  if (fd < 0) return usage(argv[0]);

  try {
    vps::dist::Channel channel(fd);
    return vps::dist::serve(channel, [](const vps::dist::SetupMsg& setup) {
      return vps::apps::make_scenario(setup.scenario_spec);
    });
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vps-worker: %s\n", e.what());
    return 3;
  }
}

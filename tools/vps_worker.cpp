// vps-worker: worker-process binary of the distributed fault-injection
// campaign. Two modes:
//
//   --fd N                 one-shot fleet member: the coordinator fork+execs
//                          this with one end of a socketpair on an inherited
//                          fd (conventionally 3) and drives it over the
//                          framed protocol: SETUP in, HELLO out, then
//                          ASSIGN/RESULT until SHUTDOWN.
//   --connect HOST:PORT    standing-pool member: connects to a running
//                          vps-serverd, REGISTERs, and serves many
//                          campaigns at once (job-tagged SETUPs, scenario
//                          cache per job) until the server shuts it down.
//
// Either way the scenario is rebuilt locally from the SETUP message's
// registry spec, so the worker shares no address space — a replay that
// corrupts or kills this process cannot take the coordinator, the server,
// or its siblings down with it.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "vps/apps/registry.hpp"
#include "vps/dist/worker.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --fd N | --connect HOST:PORT\n"
               "  --fd N              serve one campaign on the socket inherited as\n"
               "                      file descriptor N (spawned by the coordinator)\n"
               "  --connect HOST:PORT join a vps-serverd standing worker pool\n\n%s",
               argv0, vps::apps::registry_help().c_str());
  return 64;  // EX_USAGE
}

}  // namespace

int main(int argc, char** argv) {
  int fd = -1;
  std::string connect_to;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fd") == 0 && i + 1 < argc) {
      fd = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect_to = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if ((fd < 0) == connect_to.empty()) return usage(argv[0]);  // exactly one mode

  const auto build = [](const vps::dist::SetupMsg& setup) {
    return vps::apps::make_scenario(setup.scenario_spec);
  };
  try {
    if (!connect_to.empty()) {
      const std::size_t colon = connect_to.rfind(':');
      if (colon == std::string::npos) return usage(argv[0]);
      const std::string host = connect_to.substr(0, colon);
      const int port = std::atoi(connect_to.c_str() + colon + 1);
      if (port <= 0 || port > 65535) return usage(argv[0]);
      vps::dist::Channel channel(
          vps::dist::tcp_connect(host, static_cast<std::uint16_t>(port)));
      return vps::dist::serve_pool(channel, build);
    }
    vps::dist::Channel channel(fd);
    return vps::dist::serve(channel, build);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vps-worker: %s\n", e.what());
    return 3;
  }
}

// vps-tracecat: merges the per-process run-lifecycle trace files that a
// traced campaign leaves behind (trace.server.<pid>.jsonl,
// trace.worker.<pid>.jsonl, trace.client.<pid>.<tok>.jsonl) into a single
// clock-aligned timeline:
//
//   vps-tracecat [--dir DIR | FILE...] [--out FILE] [--chains]
//                [--require-complete]
//
//   --dir DIR           merge every trace.*.jsonl directly inside DIR
//   FILE...             or name the trace files explicitly
//   --out FILE          write the merged Chrome-trace JSON (load it in
//                       chrome://tracing or https://ui.perfetto.dev)
//   --chains            print the per-(job token, run) chain summary —
//                       which of the six lifecycle hops each run left —
//                       to stdout (the golden-diffable view)
//   --require-complete  exit 1 listing any run whose chain is missing a
//                       hop (lost instrumentation or a lost process)
//
// The server's clock is the reference; other tiers are aligned with the
// min-delay offset estimator documented in obs/dist_trace.hpp. Output is
// deterministic: the same input files always produce the same bytes.

#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "vps/obs/dist_trace.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--dir DIR | FILE...] [--out FILE] [--chains] [--require-complete]\n"
               "  Merge per-process campaign trace files into one timeline.\n"
               "  --dir DIR           merge every trace.*.jsonl inside DIR\n"
               "  --out FILE          write merged Chrome-trace JSON (Perfetto-loadable)\n"
               "  --chains            print the per-run lifecycle chain summary\n"
               "  --require-complete  fail listing runs missing a lifecycle hop\n",
               argv0);
  return 64;  // EX_USAGE
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::string dir;
  std::string out_path;
  bool chains = false;
  bool require_complete = false;
  for (int i = 1; i < argc; ++i) {
    const auto want_value = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0 && i + 1 < argc;
    };
    if (want_value("--dir")) {
      dir = argv[++i];
    } else if (want_value("--out")) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--chains") == 0) {
      chains = true;
    } else if (std::strcmp(argv[i], "--require-complete") == 0) {
      require_complete = true;
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (dir.empty() == files.empty()) return usage(argv[0]);  // exactly one source
  if (out_path.empty() && !chains && !require_complete) return usage(argv[0]);

  try {
    if (!dir.empty()) files = vps::obs::list_trace_files(dir);
    if (files.empty()) {
      std::fprintf(stderr, "vps-tracecat: no trace.*.jsonl files to merge\n");
      return 1;
    }
    const vps::obs::DistTrace trace = vps::obs::load_dist_trace(files);

    if (!out_path.empty()) {
      const std::string json = vps::obs::merge_to_chrome(trace);
      std::FILE* out = std::fopen(out_path.c_str(), "wb");
      if (out == nullptr) {
        std::fprintf(stderr, "vps-tracecat: cannot open %s for writing\n", out_path.c_str());
        return 1;
      }
      const bool ok = std::fwrite(json.data(), 1, json.size(), out) == json.size();
      std::fclose(out);
      if (!ok) {
        std::fprintf(stderr, "vps-tracecat: short write to %s\n", out_path.c_str());
        return 1;
      }
    }

    if (chains) std::fputs(vps::obs::chains_summary(trace).c_str(), stdout);

    if (require_complete) {
      const std::vector<std::string> missing = vps::obs::incomplete_chains(trace);
      if (!missing.empty()) {
        std::fprintf(stderr, "vps-tracecat: %zu incomplete lifecycle chain(s):\n", missing.size());
        for (const std::string& line : missing) std::fprintf(stderr, "  %s\n", line.c_str());
        return 1;
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vps-tracecat: %s\n", e.what());
    return 1;
  }
}

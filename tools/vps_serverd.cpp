// vps-serverd: the persistent multi-tenant campaign server. Binds a TCP
// listener, prints "listening on PORT" on stdout (so scripts that start it
// with --port 0 can discover the ephemeral port), and serves until stopped:
//
//   vps-serverd [--host H] [--port P] [--max-jobs N]
//               [--heartbeat-ms MS] [--hello-ms MS]
//               [--state-dir DIR] [--orphan-ms MS] [--chaos-seed N]
//               [--trace-dir DIR]
//
// Workers join with `vps-worker --connect H:P`; clients submit campaigns
// through DistCampaign's server mode; `curl H:P/metrics` (or any raw GET)
// scrapes the server's counters as a plaintext name-sorted table, and
// `curl H:P/jobs` answers the per-job live status view (queue depth,
// latency percentiles, worker map, healing counters).
//
// Signals: SIGTERM drains gracefully — stop admitting fresh campaigns,
// finish the admitted ones, flush state, SHUTDOWN the pool. SIGINT stops
// immediately (state is still flushed, so `--state-dir` restarts re-adopt
// the interrupted jobs and their tenants reattach by job token).
//
// --chaos-seed arms deterministic outbound fault injection (frame drops,
// CRC-caught corruption, torn writes, mid-stream disconnects) on every
// connection — the self-healing paths exercised on purpose, replayable
// from the seed. 0 (default) disables it.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "vps/dist/server.hpp"

namespace {

std::atomic<bool> g_stop{false};
std::atomic<bool> g_drain{false};

void on_stop(int) { g_stop.store(true); }
void on_drain(int) { g_drain.store(true); }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--max-jobs N] [--heartbeat-ms MS] "
               "[--hello-ms MS] [--state-dir DIR] [--orphan-ms MS] [--chaos-seed N] "
               "[--trace-dir DIR]\n"
               "  Persistent campaign server: workers join with `vps-worker --connect`,\n"
               "  clients submit via DistCampaign server mode, GET /metrics scrapes,\n"
               "  GET /jobs answers the per-job live status view.\n"
               "  --state-dir DIR   persist jobs for crash recovery (DIR must exist)\n"
               "  --orphan-ms MS    reattach grace for jobs whose client vanished\n"
               "  --chaos-seed N    inject deterministic network faults (0 = off)\n"
               "  --trace-dir DIR   write run-lifecycle trace JSONL into DIR\n"
               "  SIGTERM drains gracefully; SIGINT stops now.\n",
               argv0);
  return 64;  // EX_USAGE
}

}  // namespace

int main(int argc, char** argv) {
  vps::dist::ServerConfig config;
  for (int i = 1; i < argc; ++i) {
    const auto want_value = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0 && i + 1 < argc;
    };
    if (want_value("--host")) {
      config.host = argv[++i];
    } else if (want_value("--port")) {
      config.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (want_value("--max-jobs")) {
      config.max_jobs = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (want_value("--heartbeat-ms")) {
      config.heartbeat_timeout_ms = std::atoi(argv[++i]);
    } else if (want_value("--hello-ms")) {
      config.hello_timeout_ms = std::atoi(argv[++i]);
    } else if (want_value("--state-dir")) {
      config.state_dir = argv[++i];
    } else if (want_value("--orphan-ms")) {
      config.orphan_grace_ms = std::atoi(argv[++i]);
    } else if (want_value("--chaos-seed")) {
      config.chaos.seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (want_value("--trace-dir")) {
      config.trace_dir = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }

  std::signal(SIGINT, on_stop);
  std::signal(SIGTERM, on_drain);

  try {
    vps::dist::CampaignServer server(std::move(config));
    std::printf("listening on %u\n", static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    server.serve(g_stop, &g_drain);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vps-serverd: %s\n", e.what());
    return 1;
  }
}

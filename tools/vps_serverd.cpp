// vps-serverd: the persistent multi-tenant campaign server. Binds a TCP
// listener, prints "listening on PORT" on stdout (so scripts that start it
// with --port 0 can discover the ephemeral port), and serves until SIGINT
// or SIGTERM:
//
//   vps-serverd [--host H] [--port P] [--max-jobs N]
//               [--heartbeat-ms MS] [--hello-ms MS]
//
// Workers join with `vps-worker --connect H:P`; clients submit campaigns
// through DistCampaign's server mode; `curl H:P/metrics` (or any raw GET)
// scrapes the server's counters as a plaintext name-sorted table.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "vps/dist/server.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--max-jobs N] [--heartbeat-ms MS] "
               "[--hello-ms MS]\n"
               "  Persistent campaign server: workers join with `vps-worker --connect`,\n"
               "  clients submit via DistCampaign server mode, GET /metrics scrapes.\n",
               argv0);
  return 64;  // EX_USAGE
}

}  // namespace

int main(int argc, char** argv) {
  vps::dist::ServerConfig config;
  for (int i = 1; i < argc; ++i) {
    const auto want_value = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0 && i + 1 < argc;
    };
    if (want_value("--host")) {
      config.host = argv[++i];
    } else if (want_value("--port")) {
      config.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (want_value("--max-jobs")) {
      config.max_jobs = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (want_value("--heartbeat-ms")) {
      config.heartbeat_timeout_ms = std::atoi(argv[++i]);
    } else if (want_value("--hello-ms")) {
      config.hello_timeout_ms = std::atoi(argv[++i]);
    } else {
      return usage(argv[0]);
    }
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  try {
    vps::dist::CampaignServer server(std::move(config));
    std::printf("listening on %u\n", static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    server.serve(g_stop);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vps-serverd: %s\n", e.what());
    return 1;
  }
}

// Parallel fault-injection campaigns: the Fig. 3 loop fanned out across a
// work-stealing thread pool, with bitwise-reproducible results for any
// worker count, plus sharded multi-seed aggregation via the
// order-independent coverage and result merges.

#include <cstdio>
#include <memory>

#include "vps/apps/caps.hpp"
#include "vps/coverage/coverage.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/obs/campaign_monitor.hpp"

using namespace vps;

int main() {
  const auto factory = [] {
    return std::make_unique<apps::CapsScenario>(
        apps::CapsConfig{.crash = true, .duration = sim::Time::ms(15)});
  };

  // 1. One campaign, many workers. The executor generates each run's fault
  //    from an RNG stream forked on the run index and applies guided
  //    learning in batched rounds at a barrier, so the worker count is pure
  //    throughput — it never changes the result.
  std::printf("== guided campaign on CAPS crash, 4 workers ==\n\n");
  fault::CampaignConfig cfg;
  cfg.runs = 200;
  cfg.seed = 2026;
  cfg.strategy = fault::Strategy::kGuided;
  cfg.location_buckets = 8;
  cfg.workers = 4;
  fault::ParallelCampaign campaign(factory, cfg);
  // Live progress: throttled runs/s + coverage lines while batches complete.
  obs::ProgressReporter::Options rep_opts;
  rep_opts.min_interval_seconds = 0.5;
  obs::ProgressReporter reporter(rep_opts);
  campaign.set_monitor(&reporter);
  const auto result = campaign.run();
  std::printf("%s\n", result.render().c_str());
  std::printf("weak spots:\n%s\n", result.render_weak_spots().c_str());

  // Rerun with a different worker count: identical outcome accounting.
  cfg.workers = 2;
  const auto replay = fault::ParallelCampaign(factory, cfg).run();
  std::printf("reproducible across worker counts: %s\n\n",
              replay.outcome_counts == result.outcome_counts &&
                      replay.coverage_curve == result.coverage_curve
                  ? "yes"
                  : "NO — BUG");

  // 2. Sharded aggregation: independent seeds run as separate campaigns
  //    (e.g. on separate machines) and merge order-independently.
  std::printf("== three-seed sharded aggregate ==\n\n");
  fault::CampaignResult aggregate;
  coverage::FaultSpaceCoverage merged_coverage(
      factory()->fault_types().size(), cfg.location_buckets, cfg.time_windows);
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    auto shard_cfg = cfg;
    shard_cfg.seed = seed;
    shard_cfg.runs = 100;
    fault::ParallelCampaign shard(factory, shard_cfg);
    const auto shard_result = shard.run();
    aggregate.merge(shard_result);
    // Replay the shard's samples into the merged coverage model.
    coverage::FaultSpaceCoverage shard_cov(factory()->fault_types().size(),
                                           shard_cfg.location_buckets, shard_cfg.time_windows);
    const auto types = factory()->fault_types();
    for (const auto& rec : shard_result.records) {
      for (std::size_t t = 0; t < types.size(); ++t) {
        if (types[t] == rec.fault.type) {
          shard_cov.sample(t, rec.fault.address % shard_cfg.location_buckets,
                           rec.fault.inject_at.to_seconds() /
                               sim::Time::ms(15).to_seconds());
          break;
        }
      }
    }
    merged_coverage.merge(shard_cov);
  }
  aggregate.final_coverage = merged_coverage.coverage();
  std::printf("%s\n", aggregate.render().c_str());
  std::printf("merged fault-space coverage:\n%s", merged_coverage.report().c_str());
  return 0;
}

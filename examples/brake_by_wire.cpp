// Brake-by-wire: a mixed-domain ECU built from the analog (TDF) frontend,
// the preemptive OS runtime, and alive supervision — then stressed with an
// analog drift fault and a task crash. Shows the degradation cascade the
// paper's error-effect simulation is meant to expose:
//   healthy -> drifted pedal (plausibility catches it) -> control task dead
//   (alive supervision escalates to the limp-home actuator state).

#include <algorithm>
#include <cstdio>

#include "vps/ams/tdf.hpp"
#include "vps/ecu/alive_supervision.hpp"
#include "vps/ecu/os.hpp"
#include "vps/sim/kernel.hpp"

using namespace vps;
using sim::Time;

int main() {
  sim::Kernel kernel;

  // --- analog pedal frontend (TDF cluster @ 1 kHz) -------------------------
  // pedal position (0..1) -> sensor gain -> anti-alias low-pass.
  double pedal_position = 0.2;
  ams::TdfCluster frontend(kernel, "frontend", Time::ms(1));
  auto& pedal = frontend.add<ams::Source>("pedal", [&](double) { return pedal_position; });
  auto& sensor = frontend.add<ams::Gain>("sensor", 5.0, 0.0);  // 0..5 V
  auto& filter = frontend.add<ams::LowPass>("filter", 0.004);
  sensor.connect(pedal);
  filter.connect(sensor);

  // --- digital side: control task + plausibility + limp-home ---------------
  ecu::OsScheduler os(kernel, "bbw_os");
  ecu::AliveSupervision wdgm(kernel, "wdgm", Time::ms(50), 2);
  const auto supervised = wdgm.add_entity("brake_control");

  double brake_torque = 0.0;     // actuator command (Nm, 0..3000)
  bool limp_home = false;        // degraded mode: constant safe braking
  int plausibility_trips = 0;

  const auto control = os.add_task(
      {.name = "brake_control",
       .period = Time::ms(10),
       .wcet = Time::ms(2),
       .priority = 5,
       .body = [&] {
         wdgm.report_alive(supervised);
         const double volts = filter.output();
         // Plausibility: a healthy sensor stays within 0..5 V minus margins.
         if (volts < -0.1 || volts > 5.1) {
           ++plausibility_trips;
           return;  // hold last command
         }
         brake_torque = std::clamp(volts / 5.0, 0.0, 1.0) * 3000.0;
       }});

  wdgm.set_on_failure([&](ecu::AliveSupervision::EntityId) {
    limp_home = true;
    brake_torque = 900.0;  // limp-home: moderate constant braking
  });

  // --- scenario script -------------------------------------------------------
  kernel.spawn("scenario", [](sim::Kernel& k, double& pedal_pos, ams::Gain& sensor,
                              ecu::OsScheduler& os, ecu::TaskId ctrl) -> sim::Coro {
    co_await sim::delay(Time::ms(300));
    pedal_pos = 0.6;  // driver brakes
    co_await sim::delay(Time::ms(300));
    sensor.set_offset(2.0);  // analog drift fault in the sensor ASIC
    co_await sim::delay(Time::ms(300));
    sensor.set_offset(9.0);  // severe drift: pushes past the plausible range
    co_await sim::delay(Time::ms(300));
    os.kill_task(ctrl);  // control task crashes entirely
    (void)k;
  }(kernel, pedal_position, sensor, os, control));

  std::printf("== brake-by-wire degradation cascade ==\n\n");
  std::printf("%-8s %-10s %-12s %-12s %s\n", "t [ms]", "pedal", "sensor [V]", "torque [Nm]",
              "mode");
  for (int t = 100; t <= 1600; t += 100) {
    kernel.run(Time::ms(static_cast<std::uint64_t>(t)));
    std::printf("%-8d %-10.2f %-12.2f %-12.0f %s\n", t, pedal_position, filter.output(),
                brake_torque,
                limp_home                 ? "LIMP-HOME (alive supervision)"
                : plausibility_trips > 0  ? "plausibility holding last value"
                                          : "normal");
  }

  std::printf("\nplausibility trips: %d, supervision failures: %llu, deadline misses: %llu\n",
              plausibility_trips, static_cast<unsigned long long>(wdgm.failures()),
              static_cast<unsigned long long>(os.total_deadline_misses()));
  std::printf(
      "\nThe cascade the campaign would classify: moderate drift -> wrong-but-\n"
      "plausible torque (silent data corruption at system level!); severe\n"
      "drift -> plausibility check holds the last safe command (detected);\n"
      "task death -> alive supervision escalates to limp-home (detected,\n"
      "degraded). Exactly the error-propagation / protection-layering story\n"
      "of the paper's Sec. 3.4.\n");
  return 0;
}

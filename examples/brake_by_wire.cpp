// Brake-by-wire: a mixed-domain ECU built from the analog (TDF) frontend,
// the preemptive OS runtime, alive supervision and a TLM actuator register
// bank — then stressed through the fault-injection hub with an analog drift
// fault and a task crash. Shows the degradation cascade the paper's
// error-effect simulation is meant to expose:
//   healthy -> drifted pedal (plausibility catches it) -> control task dead
//   (alive supervision escalates to the limp-home actuator state).
//
// The run is fully traced through the observability layer: process
// activations (KernelTracer), TLM writes to the actuator (TransactionProbe
// on the Router), and the injected faults (InjectorHub spans) all land in
//   brake_by_wire.trace.json   (load in Perfetto / chrome://tracing)
//   brake_by_wire.trace.jsonl  (one JSON object per event)
// and each injected fault's propagation DAG — sites reached, first
// detection, measured detection latency — lands in
//   brake_by_wire.provenance.jsonl / brake_by_wire.provenance.dot
// Both provenance files carry only simulated-time stamps, so they are
// byte-identical across reruns (CI diffs them against checked-in goldens).

#include <algorithm>
#include <cstdio>

#include "vps/ams/tdf.hpp"
#include "vps/ecu/alive_supervision.hpp"
#include "vps/ecu/os.hpp"
#include "vps/fault/injector.hpp"
#include "vps/hw/memory.hpp"
#include "vps/obs/kernel_tracer.hpp"
#include "vps/obs/metrics.hpp"
#include "vps/obs/probe.hpp"
#include "vps/obs/provenance.hpp"
#include "vps/obs/trace.hpp"
#include "vps/sim/kernel.hpp"
#include "vps/tlm/router.hpp"

using namespace vps;
using sim::Time;

int main() {
  sim::Kernel kernel;

  // --- observability: sinks + kernel tracer --------------------------------
  obs::Tracer tracer;
  obs::ChromeTraceSink chrome("brake_by_wire.trace.json");
  obs::JsonlSink jsonl("brake_by_wire.trace.jsonl");
  tracer.add_sink(chrome);
  tracer.add_sink(jsonl);
  obs::KernelTracer kernel_tracer(kernel);
  kernel_tracer.set_tracer(&tracer);

  // Metric registry + provenance tracker: the probes below publish counters
  // into `metrics`; every injected fault grows a propagation DAG in
  // `provenance`.
  obs::MetricRegistry metrics;
  kernel_tracer.set_metrics(&metrics);
  obs::ProvenanceTracker provenance(kernel);

  // --- analog pedal frontend (TDF cluster @ 1 kHz) -------------------------
  // pedal position (0..1) -> injectable channel -> sensor gain -> low-pass.
  double pedal_position = 0.2;
  fault::AnalogChannel pedal_channel([&pedal_position] { return pedal_position; });
  ams::TdfCluster frontend(kernel, "frontend", Time::ms(1));
  auto& pedal = frontend.add<ams::Source>("pedal", [&](double) { return pedal_channel.read(); });
  auto& sensor = frontend.add<ams::Gain>("sensor", 5.0, 0.0);  // 0..5 V
  auto& filter = frontend.add<ams::LowPass>("filter", 0.004);
  sensor.connect(pedal);
  filter.connect(sensor);

  // --- TLM actuator register bank behind a router --------------------------
  constexpr std::uint64_t kActuatorBase = 0x40000000;
  constexpr std::uint64_t kTorqueReg = 0x0;  // commanded torque, Nm as u32
  tlm::Router bus("bbw_bus", Time::ns(20));
  hw::Memory actuator("act_regs", 256, Time::ns(50));
  bus.map(kActuatorBase, actuator.size(), actuator.socket());
  tlm::InitiatorSocket cpu_port("cpu_port");
  cpu_port.bind(bus.target_socket());

  obs::TransactionProbe bus_probe(kernel, "bbw_bus", 0.0, 200.0, 10);
  bus_probe.set_tracer(&tracer);
  bus_probe.set_metrics(&metrics);
  bus.set_probe(&bus_probe);

  // --- digital side: control task + plausibility + limp-home ---------------
  ecu::OsScheduler os(kernel, "bbw_os");
  ecu::AliveSupervision wdgm(kernel, "wdgm", Time::ms(50), 2);
  const auto supervised = wdgm.add_entity("brake_control");

  bool limp_home = false;  // degraded mode: constant safe braking
  int plausibility_trips = 0;

  const auto command_torque = [&](double torque_nm) {
    tlm::GenericPayload payload(tlm::Command::kWrite, kActuatorBase + kTorqueReg, 4);
    payload.set_value_le(static_cast<std::uint64_t>(torque_nm));
    Time delay = Time::zero();  // LT write; annotated latency is traced
    cpu_port.b_transport(payload, delay);
  };

  (void)os.add_task(
      {.name = "brake_control",
       .period = Time::ms(10),
       .wcet = Time::ms(2),
       .priority = 5,
       .body = [&] {
         wdgm.report_alive(supervised);
         const double volts = filter.output();
         // Plausibility: a healthy sensor stays within 0..5 V minus margins.
         if (volts < -0.1 || volts > 5.1) {
           ++plausibility_trips;
           // Ambient detection: the check cannot name the fault it tripped
           // on, so every live undetected fault is marked detected here.
           provenance.detect_all("plausibility:brake_control");
           return;  // hold last command
         }
         command_torque(std::clamp(volts / 5.0, 0.0, 1.0) * 3000.0);
       }});

  wdgm.set_on_failure([&](ecu::AliveSupervision::EntityId) {
    limp_home = true;
    command_torque(900.0);  // limp-home: moderate constant braking
  });

  // --- fault injection through the hub (traced as spans) -------------------
  fault::InjectorHub hub(kernel);
  hub.bind_os(os);
  hub.bind_sensor(pedal_channel);
  hub.set_tracer(&tracer);
  hub.set_provenance(&provenance);
  wdgm.set_provenance(&provenance);

  // The channel sits before the 5x sensor gain, so a 0.4 offset in pedal
  // units is the same 2 V drift the cascade story needs; 1.8 is the severe
  // 9 V drift that violates plausibility.
  fault::FaultDescriptor drift;
  drift.id = 1;
  drift.type = fault::FaultType::kSensorOffset;
  drift.persistence = fault::Persistence::kPermanent;
  drift.inject_at = Time::ms(600);
  drift.magnitude = 0.4;
  drift.location = "pedal_channel";
  hub.schedule(drift);

  fault::FaultDescriptor severe = drift;
  severe.id = 2;
  severe.inject_at = Time::ms(900);
  severe.magnitude = 1.8;
  hub.schedule(severe);

  fault::FaultDescriptor crash;
  crash.id = 3;
  crash.type = fault::FaultType::kTaskKill;
  crash.persistence = fault::Persistence::kPermanent;
  crash.inject_at = Time::ms(1200);
  crash.address = 0;  // the control task
  crash.location = "brake_control";
  hub.schedule(crash);

  // --- scenario: only the driver action remains scripted -------------------
  kernel.spawn("scenario", [](double& pedal_pos) -> sim::Coro {
    co_await sim::delay(Time::ms(300));
    pedal_pos = 0.6;  // driver brakes
  }(pedal_position));

  std::printf("== brake-by-wire degradation cascade ==\n\n");
  std::printf("%-8s %-10s %-12s %-12s %s\n", "t [ms]", "pedal", "sensor [V]", "torque [Nm]",
              "mode");
  for (int t = 100; t <= 1600; t += 100) {
    kernel.run(Time::ms(static_cast<std::uint64_t>(t)));
    std::printf("%-8d %-10.2f %-12.2f %-12u %s\n", t, pedal_position, filter.output(),
                actuator.peek32(kTorqueReg),
                limp_home                 ? "LIMP-HOME (alive supervision)"
                : plausibility_trips > 0  ? "plausibility holding last value"
                                          : "normal");
  }

  std::printf("\nplausibility trips: %d, supervision failures: %llu, deadline misses: %llu\n",
              plausibility_trips, static_cast<unsigned long long>(wdgm.failures()),
              static_cast<unsigned long long>(os.total_deadline_misses()));
  std::printf("faults applied: %llu, actuator writes: %llu (mean latency %.0f ns)\n",
              static_cast<unsigned long long>(hub.applied_count()),
              static_cast<unsigned long long>(bus_probe.transactions()),
              bus_probe.latency().mean());
  std::printf(
      "\nThe cascade the campaign would classify: moderate drift -> wrong-but-\n"
      "plausible torque (silent data corruption at system level!); severe\n"
      "drift -> plausibility check holds the last safe command (detected);\n"
      "task death -> alive supervision escalates to limp-home (detected,\n"
      "degraded). Exactly the error-propagation / protection-layering story\n"
      "of the paper's Sec. 3.4.\n\n");

  // --- provenance: who saw each fault, and how fast ------------------------
  std::printf("== fault provenance ==\n\n");
  for (const auto& fp : provenance.faults()) {
    if (fp.detected()) {
      const sim::Time latency = *fp.detection_latency();
      std::printf("  %-18s detected at %-28s latency %6.1f ms  (depth %u, %zu sites)\n",
                  fp.label.c_str(), std::string(fp.containment_site()).c_str(),
                  static_cast<double>(latency.picoseconds()) / 1e9, fp.depth(), fp.breadth());
    } else {
      std::printf("  %-18s LATENT: never detected (reached %zu sites)\n", fp.label.c_str(),
                  fp.breadth());
    }
  }
  std::printf(
      "\nNote the drift fault's long latency: injected at 600 ms, it stayed\n"
      "silent-but-wrong until the severe drift pushed the same channel over\n"
      "the plausibility bound — exactly the latent-fault interval an FTTI\n"
      "check in safety::Fmeda must compare against the budget.\n\n");

  std::printf("%s\n", metrics.render().c_str());
  std::printf("%s\n", kernel_tracer.report(8).c_str());
  tracer.flush();
  chrome.close();
  provenance.write_jsonl("brake_by_wire.provenance.jsonl");
  provenance.write_dot("brake_by_wire.provenance.dot");
  std::printf("trace: brake_by_wire.trace.json (%llu events, Perfetto-loadable), "
              "brake_by_wire.trace.jsonl (%llu lines)\n",
              static_cast<unsigned long long>(chrome.events_written()),
              static_cast<unsigned long long>(jsonl.lines_written()));
  std::printf("provenance: brake_by_wire.provenance.jsonl / .dot (%zu faults, "
              "byte-stable across reruns)\n",
              provenance.faults().size());
  return 0;
}

// Testbench qualification by mutation analysis (paper Sec. 2.4): two test
// suites for the airbag deployment logic — one superficial, one thorough —
// are scored against the same mutant population. Structural coverage calls
// them equal; the mutation score exposes the difference.

#include <cstdio>

#include "vps/mutation/instrumented_models.hpp"
#include "vps/mutation/mutation.hpp"

using namespace vps::mutation;

namespace {

bool weak_suite(MutationRegistry& reg) {
  // "It deploys in a big crash" — and nothing else.
  InstrumentedDeployLogic dut(reg);
  (void)dut.step(10);  // touch the reset branch so coverage reads 100%
  bool deployed = false;
  for (int i = 0; i < 5; ++i) deployed = dut.step(250);
  return deployed;
}

bool strong_suite(MutationRegistry& reg) {
  {  // deploys after exactly three over-threshold samples
    InstrumentedDeployLogic dut(reg);
    if (dut.step(250) || dut.step(250) || !dut.step(250)) return false;
  }
  {  // never deploys in normal driving
    InstrumentedDeployLogic dut(reg);
    for (int i = 0; i < 20; ++i) {
      if (dut.step(10)) return false;
    }
  }
  {  // threshold boundary: 200 is not above, 201 is
    InstrumentedDeployLogic at(reg);
    for (int i = 0; i < 5; ++i) {
      if (at.step(200)) return false;
    }
    InstrumentedDeployLogic above(reg);
    (void)above.step(201);
    (void)above.step(201);
    if (!above.step(201)) return false;
  }
  {  // an interruption resets the consecutive counter
    InstrumentedDeployLogic dut(reg);
    (void)dut.step(250);
    (void)dut.step(250);
    (void)dut.step(10);
    (void)dut.step(250);
    if (dut.step(250)) return false;
    if (!dut.step(250)) return false;
  }
  return true;
}

}  // namespace

int main() {
  std::printf("== testbench qualification by mutation analysis ==\n\n");

  {
    MutationRegistry reg;
    { InstrumentedDeployLogic warmup(reg); }  // registers the mutation sites
    MutationEngine engine(reg);
    const auto report = engine.run([&] { return weak_suite(reg); });
    std::printf("weak suite   (1 scenario):\n%s\n", report.render(reg).c_str());
  }
  {
    MutationRegistry reg;
    { InstrumentedDeployLogic warmup(reg); }
    MutationEngine engine(reg);
    const auto report = engine.run([&] { return strong_suite(reg); });
    std::printf("strong suite (4 scenarios):\n%s\n", report.render(reg).c_str());
  }

  std::printf(
      "Both suites reach 100%% site coverage; only the mutation score separates\n"
      "them — the paper's argument for mutation analysis as the testbench metric.\n");
  return 0;
}

// Quickstart: the five-minute tour of the framework.
//
// 1. Build a virtual prototype (an ECU platform executing real firmware).
// 2. Run it fault-free (the golden run).
// 3. Inject a fault with an InjectorHub.
// 4. Compare and classify the outcome, ISO-26262 style.
//
// Build & run:  ./build/examples/example_quickstart

#include <cstdio>

#include "vps/apps/caps.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/fault/scenario.hpp"

using namespace vps;

int main() {
  std::printf("== VPS quickstart: error-effect simulation on a virtual prototype ==\n\n");

  // The CAPS airbag scenario bundles a complete system VP: a sensor node on
  // a CAN bus and an airbag ECU (AR32 core + RAM + watchdog + GPIO) running
  // assembled firmware. "normal" means: no crash happens — so the airbag
  // must never fire.
  apps::CapsScenario scenario(apps::CapsConfig{.crash = false});

  // Golden run: fixed seed, no fault.
  const fault::Observation golden = scenario.run(nullptr, /*seed=*/2026);
  std::printf("golden run:   signature=%08x  hazard=%d  detections=%llu\n",
              golden.output_signature, golden.hazard,
              static_cast<unsigned long long>(golden.detected));

  // A single fault: flip bit 5 of a RAM byte at 5 ms into the drive.
  fault::FaultDescriptor fault;
  fault.id = 1;
  fault.type = fault::FaultType::kMemoryBitFlip;
  fault.address = 0x80;  // inside the firmware image
  fault.bit = 5;
  fault.inject_at = sim::Time::ms(5);
  std::printf("\ninjecting:    %s\n", fault.to_string().c_str());

  const fault::Observation faulty = scenario.run(&fault, /*seed=*/2026);
  std::printf("faulty run:   signature=%08x  hazard=%d  detections=%llu  resets=%llu\n",
              faulty.output_signature, faulty.hazard,
              static_cast<unsigned long long>(faulty.detected),
              static_cast<unsigned long long>(faulty.resets));

  const fault::Outcome outcome = fault::classify(golden, faulty);
  std::printf("\nclassification: %s\n", fault::to_string(outcome));

  // Scale it up: a small Monte-Carlo campaign over the whole fault space.
  std::printf("\n== 100-run Monte-Carlo campaign over the fault space ==\n\n");
  fault::CampaignConfig cfg;
  cfg.runs = 100;
  cfg.seed = 2026;
  fault::Campaign campaign(scenario, cfg);
  const auto result = campaign.run();
  std::printf("%s\n", result.render().c_str());
  return 0;
}

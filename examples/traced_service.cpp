// Traced campaign service end to end: two tenants share one chaotic
// campaign server with run-lifecycle tracing armed on every tier — the
// server, all four pool workers, and both tenant clients each write their
// own trace JSONL. After the campaigns fold, the per-process files are
// merged the way tools/vps-tracecat does it (same library calls) and the
// program asserts the two properties the observability layer promises:
//
//   1. Determinism: tracing is pure observation. Both tenants' folded
//      record JSONL must be byte-identical to a solo in-process campaign
//      run with tracing off — chaos, healing and tracing all armed cannot
//      move a single bit of campaign output.
//   2. Completeness: every run of both tenants leaves the full
//      submit → admission → dispatch → replay → stream → fold chain in
//      the merged timeline. A missing hop means lost instrumentation.
//
// Artifacts (written to the working directory, uploaded by CI on failure):
//   traced_service.chains.txt   per-run chain summary (golden-diffed by CI)
//   traced_service.trace.json   merged Chrome-trace timeline (Perfetto)
//
// Usage: traced_service [chaos-seed]   (default 1)

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "vps/apps/caps.hpp"
#include "vps/apps/registry.hpp"
#include "vps/dist/coordinator.hpp"
#include "vps/dist/server.hpp"
#include "vps/dist/worker.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/fault/checkpoint.hpp"
#include "vps/obs/dist_trace.hpp"

using namespace vps;

namespace {

constexpr const char* kHost = "127.0.0.1";
constexpr const char* kTraceDir = "traced_service_traces";

/// Forks a self-healing pool worker with chaos and tracing both armed. Must
/// be forked before the server thread starts (fork + threads don't mix);
/// drops every inherited descriptor so the server's listener dies with the
/// server, not with the last worker.
pid_t fork_traced_worker(std::uint16_t port, std::uint64_t chaos_seed) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  for (int fd = 3; fd < 1024; ++fd) ::close(fd);
  dist::PoolConfig pc;
  pc.host = kHost;
  pc.port = port;
  pc.backoff_initial_ms = 20;
  pc.backoff_max_ms = 150;
  pc.max_reconnects = 40;
  pc.idle_timeout_ms = 2000;
  pc.chaos.seed = chaos_seed;
  pc.trace_dir = kTraceDir;
  const int code = dist::serve_pool(
      pc, [](const dist::SetupMsg& setup) { return apps::make_scenario(setup.scenario_spec); });
  ::_exit(code);
}

void reap(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
}

std::string folded_jsonl(const std::string& scenario, const fault::CampaignConfig& cfg,
                         const fault::Observation& golden, const fault::CampaignResult& result) {
  fault::CampaignCheckpoint cp;
  cp.driver = "parallel_campaign";
  cp.scenario = scenario;
  cp.config = cfg;
  cp.golden = golden;
  cp.records = result.records;
  return to_jsonl(cp);
}

bool write_file(const char* path, const std::string& data) {
  std::FILE* out = std::fopen(path, "wb");
  if (out == nullptr) return false;
  const bool ok = std::fwrite(data.data(), 1, data.size(), out) == data.size();
  std::fclose(out);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  // Fresh trace directory: stale files from a previous run would pollute the
  // merged timeline (and the golden-diffed chain summary).
  std::error_code ec;
  std::filesystem::remove_all(kTraceDir, ec);
  std::filesystem::create_directory(kTraceDir);

  fault::CampaignConfig cfg;
  cfg.runs = 48;
  cfg.seed = 11;
  cfg.batch_size = 16;
  const fault::ScenarioFactory factory = [] {
    return std::make_unique<apps::CapsScenario>(apps::CapsConfig{.crash = true});
  };

  // 1. Solo in-process golden, tracing off: the bits both tenants must hit.
  std::printf("== solo golden: caps:crash (%zu runs), tracing off ==\n", cfg.runs);
  const fault::CampaignResult solo = fault::ParallelCampaign(factory, cfg).run();

  // 2. Traced chaotic campaign server.
  dist::ServerConfig sc;
  sc.heartbeat_timeout_ms = 1500;
  sc.chaos.seed = seed;
  sc.trace_dir = kTraceDir;
  dist::CampaignServer server(sc);
  const std::uint16_t port = server.port();
  std::printf("== traced chaotic campaign server on port %u (seed %llu) ==\n", port,
              static_cast<unsigned long long>(seed));

  // 3. Four traced pool workers — forked before any thread starts.
  std::vector<pid_t> pool;
  for (int i = 0; i < 4; ++i) pool.push_back(fork_traced_worker(port, seed + 1));
  server.start();

  // 4. Two tenants submit concurrently, both traced, over chaotic links.
  const auto tenant_config = [&](const char* tenant, std::uint64_t chaos_seed) {
    dist::DistConfig dc;
    dc.campaign = cfg;
    dc.server_host = kHost;
    dc.server_port = port;
    dc.tenant = tenant;
    dc.scenario_spec = "caps:crash";
    dc.chaos.seed = chaos_seed;
    dc.heartbeat_timeout_ms = 1000;
    dc.hello_timeout_ms = 3000;
    dc.max_requeues = 10;
    dc.reconnect_backoff_ms = 50;
    dc.reconnect_backoff_max_ms = 500;
    dc.trace_dir = kTraceDir;
    return dc;
  };
  dist::DistCampaign campaign_a(factory, tenant_config("tenant-a", seed + 2));
  dist::DistCampaign campaign_b(factory, tenant_config("tenant-b", seed + 3));
  fault::CampaignResult result_b;
  std::thread tenant_b([&] { result_b = campaign_b.run(); });
  const fault::CampaignResult result_a = campaign_a.run();
  tenant_b.join();

  const dist::FleetStats fa = campaign_a.fleet_stats();
  const dist::FleetStats fb = campaign_b.fleet_stats();
  std::printf("== healed: %llu reconnects, %llu frames dropped, %llu bytes corrupted ==\n",
              static_cast<unsigned long long>(fa.reconnects + fb.reconnects),
              static_cast<unsigned long long>(fa.chaos_frames_dropped + fb.chaos_frames_dropped),
              static_cast<unsigned long long>(fa.chaos_bytes_corrupted + fb.chaos_bytes_corrupted));

  server.stop();
  for (pid_t pid : pool) reap(pid);

  // 5. Determinism verdict: both traced chaotic folds byte-identical to solo.
  const std::string scenario = factory()->name();
  const std::string golden_jsonl = folded_jsonl(scenario, cfg, campaign_a.golden(), solo);
  const std::string jsonl_a = folded_jsonl(scenario, cfg, campaign_a.golden(), result_a);
  const std::string jsonl_b = folded_jsonl(scenario, cfg, campaign_b.golden(), result_b);
  const bool bits_ok = golden_jsonl == jsonl_a && golden_jsonl == jsonl_b;
  std::printf("traced+chaotic folds identical to untraced solo: %s\n",
              bits_ok ? "yes" : "NO — BUG");
  if (!bits_ok) {
    fault::save_checkpoint(fault::CampaignCheckpoint{"parallel_campaign", scenario, cfg,
                                                     campaign_a.golden(), solo.records},
                           "traced_service.solo.jsonl");
    fault::save_checkpoint(fault::CampaignCheckpoint{"parallel_campaign", scenario, cfg,
                                                     campaign_a.golden(), result_a.records},
                           "traced_service.tenant_a.jsonl");
    fault::save_checkpoint(fault::CampaignCheckpoint{"parallel_campaign", scenario, cfg,
                                                     campaign_b.golden(), result_b.records},
                           "traced_service.tenant_b.jsonl");
    std::printf("  wrote traced_service.{solo,tenant_a,tenant_b}.jsonl for inspection\n");
  }

  // 6. Merge the per-process traces (vps-tracecat's library path) and demand
  //    a complete six-hop chain for every run of both tenants.
  const std::vector<std::string> files = obs::list_trace_files(kTraceDir);
  std::printf("== merging %zu trace files ==\n", files.size());
  const obs::DistTrace trace = obs::load_dist_trace(files);
  const std::string chains = obs::chains_summary(trace);
  const std::string timeline = obs::merge_to_chrome(trace);
  if (!write_file("traced_service.chains.txt", chains) ||
      !write_file("traced_service.trace.json", timeline)) {
    std::fprintf(stderr, "traced_service: cannot write artifacts\n");
    return 1;
  }
  const std::vector<std::string> missing = obs::incomplete_chains(trace);
  std::printf("lifecycle chains complete for all runs: %s\n",
              missing.empty() ? "yes" : "NO — BUG");
  for (const std::string& line : missing) std::printf("  incomplete: %s\n", line.c_str());
  std::printf("artifacts: traced_service.chains.txt, traced_service.trace.json (%zu sources)\n",
              trace.sources.size());

  return bits_ok && missing.empty() ? 0 : 1;
}

// CI guard for snapshot-and-fork replay: run the same campaign with
// snapshot replay forced OFF (every run is a full replay — the golden) and
// forced ON (runs fork from cached epoch snapshots), export both record
// streams as checkpoint-codec JSONL, and byte-diff them. Any divergence —
// an outcome, a provenance edge, a hexfloat digit — exits nonzero. Covers
// CAPS (provenance-heavy) and ACC (timing-heavy) under the parallel driver.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "vps/apps/registry.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/fault/codec.hpp"

using namespace vps;

namespace {

fault::ScenarioFactory factory(const std::string& spec, bool snapshot_replay) {
  return [spec, snapshot_replay] {
    auto scenario = apps::make_scenario(spec);
    scenario->set_snapshot_replay(snapshot_replay);
    return scenario;
  };
}

std::string to_jsonl(const fault::CampaignResult& result) {
  std::string out;
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    std::string line = "{";
    fault::codec::append_record(line, result.records[i], i);
    line += "}";
    out += fault::codec::with_crc(line);
    out += '\n';
  }
  return out;
}

bool check(const std::string& spec, std::size_t runs, const std::string& jsonl_dir) {
  fault::CampaignConfig cfg;
  cfg.runs = runs;
  cfg.seed = 2027;
  cfg.strategy = fault::Strategy::kGuided;
  cfg.location_buckets = 8;
  cfg.workers = 4;
  cfg.batch_size = 16;

  const auto golden = fault::ParallelCampaign(factory(spec, false), cfg).run();
  const auto forked = fault::ParallelCampaign(factory(spec, true), cfg).run();

  const std::string golden_jsonl = to_jsonl(golden);
  const std::string forked_jsonl = to_jsonl(forked);

  // Keep the artifacts: on mismatch CI uploads them for a line diff.
  std::string base = spec;
  for (char& c : base) {
    if (c == ':') c = '_';
  }
  std::ofstream(jsonl_dir + "/" + base + ".full.jsonl") << golden_jsonl;
  std::ofstream(jsonl_dir + "/" + base + ".forked.jsonl") << forked_jsonl;

  const bool records_same = golden_jsonl == forked_jsonl;
  const bool metrics_same = golden.outcome_counts == forked.outcome_counts &&
                            golden.final_coverage == forked.final_coverage &&
                            golden.coverage_curve == forked.coverage_curve;
  std::printf("%-28s %3zu runs  %5zu JSONL bytes  records: %s  metrics: %s\n", spec.c_str(),
              runs, golden_jsonl.size(), records_same ? "identical" : "DIVERGED",
              metrics_same ? "identical" : "DIVERGED");
  return records_same && metrics_same;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";
  std::printf("== snapshot-forked campaign vs full-replay golden (JSONL byte diff) ==\n");
  bool ok = true;
  ok = check("caps:crash:protected:prov", 48, dir) && ok;
  ok = check("caps:normal:unprotected", 32, dir) && ok;
  ok = check("acc", 32, dir) && ok;
  if (!ok) {
    std::printf("DIVERGENCE: snapshot-forked replay is not bitwise equal to full replay\n");
    return 1;
  }
  std::printf("all campaigns bitwise identical with snapshot replay on/off\n");
  return 0;
}

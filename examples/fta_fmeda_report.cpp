// Classical safety analyses on the CAPS architecture (paper Sec. 2.1):
// hand-built fault tree with minimal cut sets and importance measures,
// FMEDA with the ISO 26262-5 architectural metrics, FPTC propagation of
// failure classes through the signal chain, and the risk-graph ASIL
// determination for the inadvertent-deployment hazard.

#include <cstdio>

#include "vps/safety/fmeda.hpp"
#include "vps/safety/fptc.hpp"
#include "vps/safety/fta.hpp"

using namespace vps::safety;

int main() {
  // --- fault tree: inadvertent airbag deployment ---------------------------
  FaultTree ft;
  const auto sensor_ov = ft.add_basic_event("sensor_overreads", 2e-4);
  const auto frame_corrupt = ft.add_basic_event("frame_corrupted_undetected", 5e-6);
  const auto cpu_cf = ft.add_basic_event("ecu_control_flow_upset", 1e-4);
  const auto squib_short = ft.add_basic_event("squib_driver_short", 3e-5);
  const auto e2e_bypassed = ft.add_basic_event("e2e_check_defeated", 1e-3);

  // Deployment via the data path needs a bad value AND the E2E check to
  // miss it; control-flow upsets or a driver short fire directly.
  const auto bad_value = ft.add_gate("bad_accel_value", GateType::kOr, {sensor_ov, frame_corrupt});
  const auto data_path = ft.add_gate("data_path_deploy", GateType::kAnd, {bad_value, e2e_bypassed});
  const auto top = ft.add_gate("inadvertent_deployment", GateType::kOr,
                               {data_path, cpu_cf, squib_short});
  ft.set_top(top);

  std::printf("== FTA: inadvertent deployment ==\n\n%s\n", ft.render().c_str());
  std::printf("P(top) exact        = %.3g\n", ft.top_probability_exact());
  std::printf("single points of failure: %zu\n", ft.single_points_of_failure().size());
  for (const auto id : {sensor_ov, cpu_cf, squib_short}) {
    std::printf("  %-26s Birnbaum %.3g   Fussell-Vesely %.3g\n", ft.name(id).c_str(),
                ft.birnbaum_importance(id), ft.fussell_vesely_importance(id));
  }

  // --- FMEDA ---------------------------------------------------------------
  std::printf("\n== FMEDA: airbag ECU ==\n\n");
  Fmeda fmeda;
  fmeda.add_row({"sram", "bit flip", 50.0, true, 0.99, 0.9});          // ECC
  fmeda.add_row({"cpu", "register upset", 10.0, true, 0.90, 0.9});     // watchdog+lockstep-ish
  fmeda.add_row({"cpu", "control-flow upset", 8.0, true, 0.90, 0.9});  // watchdog
  fmeda.add_row({"can", "frame corruption", 30.0, true, 0.999, 1.0});  // CRC + E2E
  fmeda.add_row({"sensor", "drift", 15.0, true, 0.60, 0.8});           // plausibility only
  fmeda.add_row({"squib driver", "short", 3.0, true, 0.0, 1.0});       // unprotected!
  fmeda.add_row({"housing", "cosmetic", 100.0, false, 0.0, 1.0});
  std::printf("%s\n", fmeda.render().c_str());

  // --- FPTC ------------------------------------------------------------------
  std::printf("== FPTC: failure propagation through the signal chain ==\n\n");
  FptcGraph g;
  const auto sensor = g.add_component("accel_sensor",
                                      TransformRule{}.generate(FailureClass::kValue));
  const auto canbus = g.add_component(
      "can_bus", TransformRule{}.map(FailureClass::kValue, {FailureClass::kValue})
                     .generate(FailureClass::kLate));  // retransmissions add latency
  const auto e2e = g.add_component("e2e_check",
                                   TransformRule{}.map(FailureClass::kValue,
                                                       {FailureClass::kOmission}));
  const auto decision = g.add_component("deploy_logic");
  g.connect(sensor, canbus);
  g.connect(canbus, e2e);
  g.connect(e2e, decision);
  const auto flows = g.propagate();
  for (std::size_t i = 0; i < g.component_count(); ++i) {
    std::printf("  %-14s {", g.name(i).c_str());
    bool first = true;
    for (auto c : flows[i]) {
      std::printf("%s%s", first ? "" : ", ", to_string(c));
      first = false;
    }
    std::printf("}\n");
  }
  std::printf("  -> the E2E check turns value errors into omissions (safe state),\n"
              "     but latency introduced by retransmissions reaches the decision.\n");

  // --- HARA / ASIL -----------------------------------------------------------
  std::printf("\n== ASIL determination (ISO 26262-3 risk graph) ==\n\n");
  const Asil asil = determine_asil(Severity::kS3, Exposure::kE4, Controllability::kC3);
  std::printf("inadvertent deployment at speed: S3 E4 C3 -> %s\n", to_string(asil));
  const auto metrics = fmeda.metrics();
  std::printf("architecture meets %s targets: %s\n", to_string(asil),
              metrics.meets(asil) ? "yes" : "NO (squib driver needs a mechanism)");
  return 0;
}

// Chaos campaign end to end: every link in the campaign service — server
// side, worker side, and tenant side — runs behind a seeded fault injector
// that drops frames, flips bits, delays and splits writes, and tears down
// connections mid-stream. The service has to heal all of it: the server
// requeues work lost with dead workers, the pool workers reconnect and
// re-REGISTER, and the tenant client rides out torn links by reattaching to
// its job by token. The verdict is the determinism contract: the folded
// record JSONL of the chaotic run must be byte-identical to a solo
// in-process campaign. Exits nonzero on any divergence — exactly how CI
// uses this program.
//
// Usage: chaos_campaign [chaos-seed]
//   The seed (default 1) keys the server/worker/client fault streams.
//   Per-connection streams are forked per pid and per session, so reruns
//   with the same seed in fresh processes still explore new schedules —
//   the invariant has to hold for all of them.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "vps/apps/caps.hpp"
#include "vps/apps/registry.hpp"
#include "vps/dist/coordinator.hpp"
#include "vps/dist/server.hpp"
#include "vps/dist/worker.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/fault/checkpoint.hpp"

using namespace vps;

namespace {

constexpr const char* kHost = "127.0.0.1";

/// Forks a self-healing pool worker with outbound chaos on every session.
/// The child must be forked before the server thread starts (fork + threads
/// don't mix) and drops every inherited descriptor — above all the server's
/// listening socket, which would otherwise keep the port alive after the
/// server stops and turn worker shutdown into a black-hole wait.
pid_t fork_chaotic_worker(std::uint16_t port, std::uint64_t chaos_seed) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  for (int fd = 3; fd < 1024; ++fd) ::close(fd);
  dist::PoolConfig pc;
  pc.host = kHost;
  pc.port = port;
  pc.backoff_initial_ms = 20;
  pc.backoff_max_ms = 150;
  pc.max_reconnects = 40;
  pc.idle_timeout_ms = 2000;
  pc.chaos.seed = chaos_seed;
  const int code = dist::serve_pool(
      pc, [](const dist::SetupMsg& setup) { return apps::make_scenario(setup.scenario_spec); });
  ::_exit(code);
}

void reap(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
}

std::string folded_jsonl(const std::string& scenario, const fault::CampaignConfig& cfg,
                         const fault::Observation& golden, const fault::CampaignResult& result) {
  fault::CampaignCheckpoint cp;
  cp.driver = "parallel_campaign";
  cp.scenario = scenario;
  cp.config = cfg;
  cp.golden = golden;
  cp.records = result.records;
  return to_jsonl(cp);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  fault::CampaignConfig cfg;
  cfg.runs = 48;
  cfg.seed = 11;
  cfg.batch_size = 16;
  const fault::ScenarioFactory factory = [] {
    return std::make_unique<apps::CapsScenario>(apps::CapsConfig{.crash = true});
  };

  // 1. Solo in-process golden: the bits the chaotic run must reproduce.
  std::printf("== solo golden: caps:crash (%zu runs) ==\n", cfg.runs);
  const fault::CampaignResult solo = fault::ParallelCampaign(factory, cfg).run();

  // 2. Campaign server with chaos on every accepted connection's sends.
  dist::ServerConfig sc;
  sc.heartbeat_timeout_ms = 1500;
  sc.chaos.seed = seed;
  dist::CampaignServer server(sc);
  const std::uint16_t port = server.port();
  std::printf("== chaotic campaign server on port %u (seed %llu) ==\n", port,
              static_cast<unsigned long long>(seed));

  // 3. Four pool workers, each injecting faults on its own sends too.
  std::vector<pid_t> pool;
  for (int i = 0; i < 4; ++i) pool.push_back(fork_chaotic_worker(port, seed + 1));
  server.start();

  // 4. The tenant submits over an equally unreliable link.
  dist::DistConfig dc;
  dc.campaign = cfg;
  dc.server_host = kHost;
  dc.server_port = port;
  dc.tenant = "chaos";
  dc.scenario_spec = "caps:crash";
  dc.chaos.seed = seed + 2;
  dc.heartbeat_timeout_ms = 1000;
  dc.hello_timeout_ms = 3000;
  dc.max_requeues = 10;
  dc.reconnect_backoff_ms = 50;
  dc.reconnect_backoff_max_ms = 500;
  dist::DistCampaign campaign(factory, dc);
  const fault::CampaignResult chaotic = campaign.run();

  const dist::FleetStats fs = campaign.fleet_stats();
  std::printf(
      "== healed: %llu client reconnects, %llu frames dropped, %llu bytes corrupted ==\n",
      static_cast<unsigned long long>(fs.reconnects),
      static_cast<unsigned long long>(fs.chaos_frames_dropped),
      static_cast<unsigned long long>(fs.chaos_bytes_corrupted));

  server.stop();
  for (pid_t pid : pool) reap(pid);

  // 5. The verdict CI depends on: byte-identical folded JSONL.
  const std::string scenario = factory()->name();
  const std::string golden_jsonl = folded_jsonl(scenario, cfg, campaign.golden(), solo);
  const std::string chaos_jsonl = folded_jsonl(scenario, cfg, campaign.golden(), chaotic);
  const bool same = golden_jsonl == chaos_jsonl;
  std::printf("chaotic folded JSONL (%zu bytes) identical to solo: %s\n", golden_jsonl.size(),
              same ? "yes" : "NO — BUG");
  if (!same) {
    fault::save_checkpoint(
        fault::CampaignCheckpoint{"parallel_campaign", scenario, cfg, campaign.golden(),
                                  solo.records},
        "chaos_campaign.solo.jsonl");
    fault::save_checkpoint(
        fault::CampaignCheckpoint{"parallel_campaign", scenario, cfg, campaign.golden(),
                                  chaotic.records},
        "chaos_campaign.chaotic.jsonl");
    std::printf("  wrote chaos_campaign.{solo,chaotic}.jsonl for inspection\n");
  }
  return same ? 0 : 1;
}

// Campaign-as-a-service end to end: starts the persistent campaign server,
// registers a standing worker pool, submits two tenant campaigns (CAPS and
// ACC) concurrently, SIGKILLs one pool worker mid-run, and byte-diffs each
// tenant's folded record JSONL against its solo in-process golden. Exits
// nonzero on any divergence — exactly how CI uses this program.
//
// Usage: campaign_server [path-to-vps-serverd path-to-vps-worker]
//   Without arguments the server runs in-process and the pool workers are
//   forked (serving straight out of fork() via the app registry); with both
//   paths the real binaries are fork+exec'd and wired up over TCP the way a
//   production deployment would be.

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "vps/apps/caps.hpp"
#include "vps/apps/registry.hpp"
#include "vps/dist/coordinator.hpp"
#include "vps/dist/server.hpp"
#include "vps/dist/transport.hpp"
#include "vps/dist/worker.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/fault/checkpoint.hpp"

using namespace vps;

namespace {

constexpr const char* kHost = "127.0.0.1";

pid_t fork_pool_worker(std::uint16_t port, const char* worker_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  if (worker_path != nullptr) {
    const std::string target = std::string(kHost) + ":" + std::to_string(port);
    ::execl(worker_path, "vps-worker", "--connect", target.c_str(),
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  int code = 3;
  {
    dist::Channel channel(dist::tcp_connect(kHost, port));
    code = dist::serve_pool(channel, [](const dist::SetupMsg& setup) {
      return apps::make_scenario(setup.scenario_spec);
    });
  }
  ::_exit(code);
}

/// Spawns vps-serverd with its stdout on a pipe and parses the
/// "listening on PORT" line it prints once the listener is bound.
pid_t spawn_serverd(const char* serverd_path, std::uint16_t* port_out) {
  int fds[2];
  if (::pipe(fds) != 0) return -1;
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::close(fds[0]);
    ::dup2(fds[1], 1);
    ::close(fds[1]);
    ::execl(serverd_path, "vps-serverd", "--port", "0", static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ::close(fds[1]);
  char line[128] = {0};
  std::size_t got = 0;
  while (got + 1 < sizeof line) {
    const ssize_t n = ::read(fds[0], line + got, 1);
    if (n <= 0 || line[got] == '\n') break;
    ++got;
  }
  ::close(fds[0]);
  unsigned port = 0;
  if (std::sscanf(line, "listening on %u", &port) != 1 || port == 0 || port > 65535) {
    std::fprintf(stderr, "campaign_server: could not parse serverd banner '%s'\n", line);
    ::kill(pid, SIGKILL);
    return -1;
  }
  *port_out = static_cast<std::uint16_t>(port);
  return pid;
}

void reap(pid_t pid) {
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(pid, &status, 0);
  } while (r < 0 && errno == EINTR);
}

/// Canonical byte form of one tenant's folded campaign: the checkpoint
/// JSONL, which serializes every record (descriptors, outcomes, crash
/// diagnostics, provenance) with bitwise-exact doubles.
std::string folded_jsonl(const std::string& scenario, const fault::CampaignConfig& cfg,
                         const fault::Observation& golden, const fault::CampaignResult& result) {
  fault::CampaignCheckpoint cp;
  cp.driver = "parallel_campaign";
  cp.scenario = scenario;
  cp.config = cfg;
  cp.golden = golden;
  cp.records = result.records;
  return to_jsonl(cp);
}

struct Tenant {
  const char* name;
  const char* spec;
  fault::ScenarioFactory factory;
  fault::CampaignConfig cfg;
  fault::CampaignResult solo;
  fault::CampaignResult via_server;
  fault::Observation golden;
  std::string scenario_name;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc != 1 && argc != 3) {
    std::fprintf(stderr, "usage: %s [path-to-vps-serverd path-to-vps-worker]\n", argv[0]);
    return 64;
  }
  const char* serverd_path = argc == 3 ? argv[1] : nullptr;
  const char* worker_path = argc == 3 ? argv[2] : nullptr;

  std::vector<Tenant> tenants;
  {
    Tenant caps;
    caps.name = "caps";
    caps.spec = "caps:crash";
    caps.factory = [] { return std::make_unique<apps::CapsScenario>(apps::CapsConfig{.crash = true}); };
    caps.cfg.runs = 96;
    caps.cfg.seed = 2026;
    caps.cfg.strategy = fault::Strategy::kGuided;
    caps.cfg.location_buckets = 8;
    caps.cfg.batch_size = 16;
    tenants.push_back(std::move(caps));

    Tenant acc;
    acc.name = "acc";
    acc.spec = "acc";
    acc.factory = [] { return apps::make_scenario("acc"); };
    acc.cfg.runs = 24;
    acc.cfg.seed = 9;
    tenants.push_back(std::move(acc));
  }

  // 1. Solo in-process goldens: what the shared pool must reproduce, bit
  //    for bit, per tenant.
  for (Tenant& t : tenants) {
    std::printf("== solo golden: %s (%zu runs) ==\n", t.name, t.cfg.runs);
    t.solo = fault::ParallelCampaign(t.factory, t.cfg).run();
  }

  // 2. Server + standing pool. Workers are forked before any thread exists;
  //    the bound listener's backlog holds their connects until accept.
  std::uint16_t port = 0;
  pid_t serverd_pid = -1;
  std::unique_ptr<dist::CampaignServer> in_process;
  if (serverd_path != nullptr) {
    serverd_pid = spawn_serverd(serverd_path, &port);
    if (serverd_pid < 0) return 1;
    std::printf("== vps-serverd pid %d on port %u ==\n", static_cast<int>(serverd_pid), port);
  } else {
    in_process = std::make_unique<dist::CampaignServer>(dist::ServerConfig{});
    port = in_process->port();
    std::printf("== in-process campaign server on port %u ==\n", port);
  }
  std::vector<pid_t> pool;
  for (int i = 0; i < 4; ++i) pool.push_back(fork_pool_worker(port, worker_path));
  if (in_process != nullptr) in_process->start();

  // 3. Two tenants interleaved on the one pool, one worker SIGKILLed while
  //    the campaigns are in flight.
  std::vector<std::thread> threads;
  for (Tenant& t : tenants) {
    threads.emplace_back([&t, port] {
      dist::DistConfig dc;
      dc.campaign = t.cfg;
      dc.server_host = kHost;
      dc.server_port = port;
      dc.tenant = t.name;
      dc.scenario_spec = t.spec;
      dist::DistCampaign campaign(t.factory, dc);
      t.via_server = campaign.run();
      t.golden = campaign.golden();
      t.scenario_name = t.factory()->name();
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::printf("== SIGKILL pool worker pid %d mid-run ==\n", static_cast<int>(pool[0]));
  ::kill(pool[0], SIGKILL);
  for (std::thread& th : threads) th.join();

  if (in_process != nullptr) in_process->stop();
  if (serverd_pid > 0) {
    ::kill(serverd_pid, SIGTERM);
    reap(serverd_pid);
  }
  for (pid_t pid : pool) reap(pid);

  // 4. The verdict CI depends on: byte-identical folded JSONL per tenant.
  bool ok = true;
  for (Tenant& t : tenants) {
    const std::string golden_jsonl = folded_jsonl(t.scenario_name, t.cfg, t.golden, t.solo);
    const std::string server_jsonl = folded_jsonl(t.scenario_name, t.cfg, t.golden, t.via_server);
    const bool same = golden_jsonl == server_jsonl;
    std::printf("tenant %-5s folded JSONL (%zu bytes) identical to solo: %s\n", t.name,
                golden_jsonl.size(), same ? "yes" : "NO — BUG");
    if (!same) {
      const std::string base = std::string("campaign_server_") + t.name;
      fault::save_checkpoint(
          fault::CampaignCheckpoint{"parallel_campaign", t.scenario_name, t.cfg, t.golden, t.solo.records},
          base + ".solo.jsonl");
      fault::save_checkpoint(
          fault::CampaignCheckpoint{"parallel_campaign", t.scenario_name, t.cfg, t.golden, t.via_server.records},
          base + ".server.jsonl");
      std::printf("  wrote %s.{solo,server}.jsonl for inspection\n", base.c_str());
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

// Checkpoint/resume for long error-effect campaigns: run a parallel CAPS
// campaign, preempt it halfway (the driver writes a checkpoint at the batch
// barrier), resume from the file, and verify the stitched-together result is
// identical to an uninterrupted run. Exits nonzero on any mismatch — this is
// also the CI round-trip check.

#include <cstdio>
#include <memory>
#include <string>

#include "vps/apps/caps.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/fault/checkpoint.hpp"

using namespace vps;

namespace {

fault::ScenarioFactory factory() {
  return [] {
    return std::make_unique<apps::CapsScenario>(
        apps::CapsConfig{.crash = true, .duration = sim::Time::ms(15)});
  };
}

bool identical(const fault::CampaignResult& a, const fault::CampaignResult& b) {
  if (a.outcome_counts != b.outcome_counts || a.runs_executed != b.runs_executed ||
      a.final_coverage != b.final_coverage || a.coverage_curve != b.coverage_curve ||
      a.faults_to_first_hazard != b.faults_to_first_hazard ||
      a.records.size() != b.records.size() || a.quarantine.size() != b.quarantine.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& ra = a.records[i];
    const auto& rb = b.records[i];
    if (ra.fault.id != rb.fault.id || ra.fault.type != rb.fault.type ||
        ra.fault.inject_at != rb.fault.inject_at || ra.fault.address != rb.fault.address ||
        ra.fault.bit != rb.fault.bit || ra.fault.magnitude != rb.fault.magnitude ||
        ra.outcome != rb.outcome || ra.crash_what != rb.crash_what) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const std::string path = "/tmp/vps_example_checkpoint.jsonl";
  fault::CampaignConfig cfg;
  cfg.runs = 120;
  cfg.seed = 2026;
  cfg.strategy = fault::Strategy::kGuided;
  cfg.location_buckets = 8;
  cfg.workers = 4;
  cfg.batch_size = 20;
  cfg.checkpoint_every = 20;
  cfg.checkpoint_path = path;

  // Reference: the campaign nobody interrupted.
  std::printf("== uninterrupted run (%zu injections) ==\n", cfg.runs);
  const auto uninterrupted = fault::ParallelCampaign(factory(), cfg).run();
  std::printf("hazards: %llu, coverage: %.1f%%\n\n",
              static_cast<unsigned long long>(uninterrupted.count(fault::Outcome::kHazard)),
              uninterrupted.final_coverage * 100.0);

  // The same campaign, preempted at 50%. preempt_after stands in for a
  // SIGKILL'd worker: the driver stops at the next batch barrier after 60
  // runs, leaving only the checkpoint file behind.
  cfg.preempt_after = cfg.runs / 2;
  std::printf("== interrupted at %zu runs ==\n", cfg.preempt_after);
  const auto partial = fault::ParallelCampaign(factory(), cfg).run();
  std::printf("interrupted: %s after %zu runs, checkpoint at %s\n\n",
              partial.interrupted ? "yes" : "NO (bug)", partial.runs_executed, path.c_str());

  // Resume from disk — on a different worker count, to show the checkpoint
  // carries everything determinism needs.
  cfg.preempt_after = 0;
  cfg.workers = 2;
  const auto checkpoint = fault::load_checkpoint(path);
  std::printf("== resuming from run %zu on %zu workers ==\n", checkpoint.next_run(),
              cfg.workers);
  const auto resumed = fault::ParallelCampaign(factory(), cfg).resume(checkpoint);
  std::printf("%s\n", resumed.render().c_str());

  const bool ok = partial.interrupted && identical(resumed, uninterrupted);
  std::printf("resumed == uninterrupted: %s\n", ok ? "yes" : "NO — MISMATCH");
  std::remove(path.c_str());
  return ok ? 0 : 1;
}

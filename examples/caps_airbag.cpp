// CAPS airbag safety evaluation (the paper's running example, Sec. 1):
// quantifies both safety goals of the deployment function —
//   SG1: no component failure fires the airbag in normal operation, and
//   SG2: a crash deploys the airbag in time —
// across protection ablations (link protection and RAM ECC), then
// synthesizes a fault tree from the campaign observations.

#include <cstdio>
#include <map>

#include "vps/apps/caps.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/safety/ft_synthesis.hpp"
#include "vps/support/table.hpp"

using namespace vps;

namespace {

fault::CampaignResult evaluate(const apps::CapsConfig& config, std::size_t runs) {
  apps::CapsScenario scenario(config);
  fault::CampaignConfig cfg;
  cfg.runs = runs;
  cfg.seed = 42;
  cfg.strategy = fault::Strategy::kMonteCarlo;
  fault::Campaign campaign(scenario, cfg);
  return campaign.run();
}

}  // namespace

int main() {
  constexpr std::size_t kRuns = 150;

  std::printf("== CAPS airbag: error-effect campaigns over protection variants ==\n");
  std::printf("   (%zu faults per variant; shapes matter, not absolute numbers)\n\n", kRuns);

  support::Table table({"variant", "hazards", "SDC", "detected", "masked", "DC"});
  std::map<std::string, fault::CampaignResult> results;

  for (const bool crash : {false, true}) {
    for (const bool protected_link : {true, false}) {
      apps::CapsConfig config;
      config.crash = crash;
      config.protected_link = protected_link;
      const auto result = evaluate(config, kRuns);
      const std::string name =
          std::string(crash ? "crash" : "normal") + (protected_link ? "+e2e" : "-e2e");
      results.emplace(name, result);
      char dc[32];
      std::snprintf(dc, sizeof dc, "%.2f", result.diagnostic_coverage());
      table.add_row(
          {name, std::to_string(result.count(fault::Outcome::kHazard)),
           std::to_string(result.count(fault::Outcome::kSilentDataCorruption)),
           std::to_string(result.count(fault::Outcome::kDetectedCorrected) +
                          result.count(fault::Outcome::kDetectedUncorrected)),
           std::to_string(result.count(fault::Outcome::kNoEffect)), dc});
    }
  }
  std::printf("%s\n", table.render().c_str());

  // Fault-tree synthesis from the crash campaign: which fault populations
  // contribute to "airbag does not deploy in a crash"?
  const auto& crash_result = results.at("crash+e2e");
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> per_type;  // inj, hazards
  for (const auto& rec : crash_result.records) {
    auto& [inj, haz] = per_type[fault::to_string(rec.fault.type)];
    ++inj;
    haz += rec.outcome == fault::Outcome::kHazard ? 1 : 0;
  }
  std::vector<safety::HazardContribution> contributions;
  for (const auto& [type_name, counts] : per_type) {
    safety::HazardContribution c;
    c.fault_name = type_name;
    c.observed_injections = counts.first;
    c.observed_hazards = counts.second;
    c.conditional_hazard =
        counts.first ? static_cast<double>(counts.second) / static_cast<double>(counts.first) : 0;
    c.occurrence_probability = 1e-4;  // per-mission occurrence from the rate model
    contributions.push_back(c);
  }
  const auto synth = safety::synthesize_fault_tree("failed_deployment", contributions);
  std::printf("== synthesized fault tree (from simulation, per ref [8]) ==\n\n%s\n",
              synth.tree.render().c_str());
  return 0;
}

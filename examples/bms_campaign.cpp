// CI e2e for the BMS virtual ECU twin — two halves, one exit code:
//
//   (1) Replay-engine guard: the same BMS campaigns run with snapshot
//       replay forced OFF (every run a full replay — the golden) and ON
//       (runs fork from cached epoch snapshots), exported as
//       checkpoint-codec JSONL and byte-diffed. Any divergence — an
//       outcome, a provenance edge, a hexfloat digit — exits nonzero.
//
//   (2) Safety pipeline: the provenance-traced runaway campaign feeds the
//       ISO 26262-5 FMEDA — claimed diagnostic coverage replaced by the
//       campaign's measured per-fault-type coverage, and the measured p99
//       detection latency checked against each row's FTTI budget (a
//       detection arriving after the FTTI credits nothing). This is the
//       E23 pipeline of EXPERIMENTS.md in miniature.

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "vps/apps/registry.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/fault/codec.hpp"
#include "vps/safety/fmeda.hpp"

using namespace vps;

namespace {

fault::ScenarioFactory factory(const std::string& spec, bool snapshot_replay) {
  return [spec, snapshot_replay] {
    auto scenario = apps::make_scenario(spec);
    scenario->set_snapshot_replay(snapshot_replay);
    return scenario;
  };
}

std::string to_jsonl(const fault::CampaignResult& result) {
  std::string out;
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    std::string line = "{";
    fault::codec::append_record(line, result.records[i], i);
    line += "}";
    out += fault::codec::with_crc(line);
    out += '\n';
  }
  return out;
}

bool check(const std::string& spec, std::size_t runs, const std::string& jsonl_dir,
           fault::CampaignResult* keep_forked = nullptr) {
  fault::CampaignConfig cfg;
  cfg.runs = runs;
  cfg.seed = 2311;
  cfg.strategy = fault::Strategy::kGuided;
  cfg.location_buckets = 8;
  cfg.workers = 4;
  cfg.batch_size = 8;

  const auto golden = fault::ParallelCampaign(factory(spec, false), cfg).run();
  auto forked = fault::ParallelCampaign(factory(spec, true), cfg).run();

  const std::string golden_jsonl = to_jsonl(golden);
  const std::string forked_jsonl = to_jsonl(forked);

  // Keep the artifacts: on mismatch CI uploads them for a line diff.
  std::string base = spec;
  for (char& c : base) {
    if (c == ':') c = '_';
  }
  std::ofstream(jsonl_dir + "/" + base + ".full.jsonl") << golden_jsonl;
  std::ofstream(jsonl_dir + "/" + base + ".forked.jsonl") << forked_jsonl;

  const bool records_same = golden_jsonl == forked_jsonl;
  const bool metrics_same = golden.outcome_counts == forked.outcome_counts &&
                            golden.final_coverage == forked.final_coverage &&
                            golden.provenance_jsonl() == forked.provenance_jsonl();
  std::printf("%-24s %3zu runs  %6zu JSONL bytes  records: %s  metrics: %s\n", spec.c_str(), runs,
              golden_jsonl.size(), records_same ? "identical" : "DIVERGED",
              metrics_same ? "identical" : "DIVERGED");
  if (keep_forked != nullptr) *keep_forked = std::move(forked);
  return records_same && metrics_same;
}

/// How one campaign fault type appears in the FMEDA: which physical
/// component fails, how, at what assumed rate, and how quickly the safety
/// mechanism must react for its detection to count (the FTTI budget).
struct FmedaBinding {
  fault::FaultType type;
  const char* component;
  const char* failure_mode;
  double fit;
  /// Runaway physics: over-temp crossing ~3.2 s after onset, hazard
  /// temperature ~6.7 s — sensing faults get the ~3.5 s in between.
  /// Telemetry/OS faults are covered by the 1.5 s alive timeout and the
  /// per-period deadline monitors, so their budgets are tighter.
  double ftti_budget_s;
};

bool report_fmeda(const fault::CampaignResult& campaign, sim::Time mission) {
  static constexpr FmedaBinding kBindings[] = {
      {fault::FaultType::kSensorOffset, "cell sensor", "offset drift", 18.0, 3.5},
      {fault::FaultType::kSensorStuck, "cell sensor", "stuck-at", 12.0, 3.5},
      {fault::FaultType::kBusErrorInjection, "telemetry uart", "line error", 25.0, 2.0},
      {fault::FaultType::kTaskKill, "bms mcu", "task kill", 6.0, 2.0},
      {fault::FaultType::kExecutionSlowdown, "bms mcu", "execution slowdown", 9.0, 2.0},
  };

  // Measured per-type diagnostic coverage: detected over dangerous+detected.
  struct TypeCounts {
    std::uint64_t injected = 0;
    std::uint64_t bad = 0;
    std::uint64_t detected = 0;
  };
  std::map<fault::FaultType, TypeCounts> per_type;
  for (const auto& rec : campaign.records) {
    auto& c = per_type[rec.fault.type];
    ++c.injected;
    c.bad += rec.outcome == fault::Outcome::kHazard ||
             rec.outcome == fault::Outcome::kSilentDataCorruption ||
             rec.outcome == fault::Outcome::kTimeout;
    c.detected += rec.outcome == fault::Outcome::kDetectedCorrected ||
                  rec.outcome == fault::Outcome::kDetectedUncorrected;
  }

  const double hi_us = mission.to_seconds() * 1e6;
  const auto latency = campaign.detection_latency_stats(0.0, hi_us, 2048);

  safety::Fmeda fmeda;
  std::size_t measured_rows = 0;
  for (const auto& b : kBindings) {
    safety::FmedaRow row;
    row.component = b.component;
    row.failure_mode = b.failure_mode;
    row.fit = b.fit;
    row.safety_related = true;
    row.latent_coverage = 0.9;
    row.ftti_budget_s = b.ftti_budget_s;
    // A type whose every injection folded to no-effect never endangered the
    // goal; credit it fully rather than claiming an untestable mechanism.
    const auto it = per_type.find(b.type);
    const std::uint64_t relevant = it == per_type.end() ? 0 : it->second.bad + it->second.detected;
    row.diagnostic_coverage =
        relevant == 0 ? 1.0
                      : static_cast<double>(it->second.detected) / static_cast<double>(relevant);
    fmeda.add_row(row);
    for (const auto& ls : latency) {
      if (ls.type == b.type && ls.detected > 0) {
        measured_rows += fmeda.set_measured_latency(b.component, b.failure_mode,
                                                    ls.latency_us.percentile(0.99) / 1e6);
      }
    }
  }
  // Non-safety-related filler so SPFM is computed over a realistic base.
  fmeda.add_row({"pack enclosure", "cosmetic", 40.0, false, 0.0, 1.0});

  std::printf("\n== FMEDA from the traced runaway campaign ==\n\n%s\n", fmeda.render().c_str());
  std::printf("%s\n", campaign.render_latency(0.0, hi_us, 2048).c_str());

  const auto metrics = fmeda.metrics();
  std::printf("SPFM %.4f  LFM %.4f  PMHF %.2f FIT  -> meets ASIL C: %s\n", metrics.spfm,
              metrics.lfm, metrics.pmhf_fit, metrics.meets(safety::Asil::kC) ? "yes" : "NO");

  // The pipeline itself must have closed the loop: at least one row carries
  // a campaign-measured latency, and the traced mechanisms kept coverage.
  if (measured_rows == 0) {
    std::printf("FMEDA ERROR: no detection latency measured — provenance missing?\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";
  std::printf("== BMS campaigns: snapshot-forked vs full-replay golden (JSONL byte diff) ==\n");
  bool ok = true;
  fault::CampaignResult runaway;
  ok = check("bms:runaway:quick:prov", 32, dir, &runaway) && ok;
  ok = check("bms:short:quick:prov", 24, dir) && ok;
  ok = check("bms:nominal:quick", 16, dir) && ok;
  if (!ok) {
    std::printf("DIVERGENCE: snapshot-forked replay is not bitwise equal to full replay\n");
    return 1;
  }
  std::printf("all BMS campaigns bitwise identical with snapshot replay on/off\n");

  const auto mission = apps::make_scenario("bms:runaway:quick")->duration();
  if (!report_fmeda(runaway, mission)) return 1;
  return 0;
}

// Distributed fault-injection campaign: the Fig. 3 loop sharded across a
// fleet of worker processes over a framed local-socket protocol. The
// headline guarantee is demonstrated the hard way — one worker is SIGKILLed
// mid-campaign, its in-flight runs are requeued onto the survivors, and the
// merged result is diffed against the single-process golden. Exits nonzero
// on any mismatch, which is exactly how CI uses this program.
//
// Usage: distributed_campaign [path-to-vps-worker]
//   Without an argument the fleet is forked in-process (the child serves
//   straight out of fork()); with one, workers are fork+exec'd from the
//   given vps-worker binary and rebuild the scenario from its registry spec.

#include <cstdio>
#include <memory>
#include <string>

#include "vps/apps/caps.hpp"
#include "vps/dist/coordinator.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/obs/campaign_monitor.hpp"
#include "vps/obs/metrics.hpp"

using namespace vps;

namespace {

bool identical(const fault::CampaignResult& a, const fault::CampaignResult& b) {
  if (a.outcome_counts != b.outcome_counts) return false;
  if (a.runs_executed != b.runs_executed) return false;
  if (a.faults_to_first_hazard != b.faults_to_first_hazard) return false;
  if (a.final_coverage != b.final_coverage) return false;
  if (a.coverage_curve != b.coverage_curve) return false;
  if (a.records.size() != b.records.size()) return false;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& ra = a.records[i];
    const auto& rb = b.records[i];
    if (ra.fault.id != rb.fault.id || ra.fault.type != rb.fault.type ||
        ra.fault.inject_at != rb.fault.inject_at || ra.fault.address != rb.fault.address ||
        ra.fault.bit != rb.fault.bit || ra.fault.magnitude != rb.fault.magnitude ||
        ra.outcome != rb.outcome || ra.crash_what != rb.crash_what) {
      return false;
    }
  }
  return a.provenance_jsonl() == b.provenance_jsonl();
}

}  // namespace

int main(int argc, char** argv) {
  const auto factory = [] {
    return std::make_unique<apps::CapsScenario>(apps::CapsConfig{.crash = true});
  };

  fault::CampaignConfig cfg;
  cfg.runs = 96;
  cfg.seed = 2026;
  cfg.strategy = fault::Strategy::kGuided;
  cfg.location_buckets = 8;
  cfg.batch_size = 16;

  // 1. Single-process golden: the in-process parallel driver defines what
  //    the distributed fleet must reproduce, bit for bit.
  std::printf("== single-process golden (ParallelCampaign) ==\n");
  const auto golden = fault::ParallelCampaign(factory, cfg).run();
  std::printf("%s\n", golden.render().c_str());

  // 2. Distributed fleet, with worker 0 SIGKILLed after 20 results. The
  //    coordinator reaps the corpse, requeues its in-flight shard onto the
  //    survivors, and keeps going.
  dist::DistConfig dc;
  dc.campaign = cfg;
  dc.workers = 3;
  dc.kill_after_results = 20;
  dc.kill_worker = 0;
  if (argc > 1) {
    dc.worker_path = argv[1];
    dc.scenario_spec = "caps:crash";
    std::printf("== distributed fleet: 3x fork+exec %s, SIGKILL one mid-run ==\n", argv[1]);
  } else {
    std::printf("== distributed fleet: 3 forked workers, SIGKILL one mid-run ==\n");
  }

  obs::ProgressReporter::Options rep_opts;
  rep_opts.min_interval_seconds = 0.5;
  obs::ProgressReporter reporter(rep_opts);
  obs::MetricRegistry metrics;
  dist::DistCampaign campaign(factory, dc);
  campaign.set_monitor(&reporter);
  campaign.set_metrics(&metrics);
  const auto distributed = campaign.run();
  std::printf("%s\n", distributed.render().c_str());

  const auto& fleet = campaign.fleet_stats();
  std::printf("fleet: %llu spawned, %llu died, %llu runs requeued, "
              "%llu frames / %llu bytes received\n",
              static_cast<unsigned long long>(fleet.workers_spawned),
              static_cast<unsigned long long>(fleet.worker_deaths),
              static_cast<unsigned long long>(fleet.requeued_runs),
              static_cast<unsigned long long>(fleet.frames_received),
              static_cast<unsigned long long>(fleet.bytes_received));

  // 3. The verdict CI depends on.
  const bool match = identical(golden, distributed);
  const bool death_seen = fleet.worker_deaths == 1;
  std::printf("\ndistributed == single-process golden: %s\n", match ? "yes" : "NO — BUG");
  std::printf("worker death handled: %s\n", death_seen ? "yes" : "NO — kill hook never fired");
  return match && death_seen ? 0 : 1;
}

// Mission-profile-compliant verification (paper Fig. 2, Sec. 3.2):
// parse a mission profile, derive per-state fault rates via the
// acceleration models, build a stressor for the "highway" state, and run
// the accelerated error-effect simulation on the ACC scenario.

#include <cstdio>

#include "vps/apps/acc.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/fault/stressor.hpp"
#include "vps/mp/derivation.hpp"
#include "vps/mp/mission_profile.hpp"

using namespace vps;

int main() {
  // 1. The OEM hands down a formalized mission profile.
  const mp::MissionProfile profile = mp::reference_car_profile();
  std::printf("== mission profile '%s' (%.0f h lifetime, %zu states) ==\n\n",
              profile.name().c_str(), profile.lifetime_hours(), profile.states().size());

  // 2. Environmental stresses -> per-state fault rates (FIT).
  const mp::FaultRateTable table = mp::derive_fault_rates(profile);
  std::printf("%s\n", table.render().c_str());
  for (auto c : mp::all_fault_classes()) {
    std::printf("  lifetime expectation %-20s %.4g faults\n", mp::to_string(c),
                table.expected_lifetime_faults(c, profile.lifetime_hours()));
  }

  // 3. Stressor spec for the harshest state, heavily accelerated so that a
  //    20-second simulated segment sees a meaningful fault count.
  const auto spec = mp::make_stressor_spec(table, "highway", /*acceleration=*/5e8);
  std::printf("\n== stressor for state '%s' (acceleration %.0e) ==\n", spec.state.c_str(),
              spec.acceleration);
  std::printf("   total rate %.3g faults/s -> %.1f expected in a 20 s segment\n\n",
              spec.total_rate(), spec.expected_faults(20.0));

  // 4. Error-effect simulation: Poisson fault arrivals during the ACC
  //    following-and-braking maneuver.
  apps::AccScenario scenario;
  const auto golden = scenario.run(nullptr, 7);
  std::printf("golden: min gap %.1f m, deadline misses %llu\n", scenario.last_min_gap_m(),
              static_cast<unsigned long long>(golden.deadline_misses));

  // One accelerated stress segment per seed; classify against golden.
  int hazards = 0, detected = 0, quiet = 0;
  constexpr int kSegments = 20;
  for (int seg = 0; seg < kSegments; ++seg) {
    // The scenario API injects one descriptor; for a whole stressor
    // schedule we sample it here and pick the first arrival (the rest of
    // the schedule shape is exercised by bench_mission_profile).
    sim::Kernel scratch;
    fault::InjectorHub scratch_hub(scratch);
    fault::Stressor stressor(scratch_hub, spec, 1000 + static_cast<std::uint64_t>(seg));
    const auto schedule = stressor.sample_schedule(sim::Time::zero(), sim::Time::sec(20));
    if (schedule.empty()) {
      ++quiet;
      continue;
    }
    const auto obs = scenario.run(&schedule.front(), 7);
    switch (fault::classify(golden, obs)) {
      case fault::Outcome::kHazard: ++hazards; break;
      case fault::Outcome::kDetectedCorrected:
      case fault::Outcome::kDetectedUncorrected: ++detected; break;
      default: ++quiet; break;
    }
  }
  std::printf("\n%d stress segments: %d hazards, %d detected, %d without effect\n", kSegments,
              hazards, detected, quiet);
  std::printf("\n(Every run is reproducible from its seed; see EXPERIMENTS.md E2.)\n");
  return 0;
}

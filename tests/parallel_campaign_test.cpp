// Parallel campaign executor tests: the work-stealing thread pool, keyed
// RNG forking (independence + collision sanity), order-independent
// coverage/result merges, and the headline guarantee — a ParallelCampaign
// produces a bitwise-identical CampaignResult for any worker count.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "vps/apps/caps.hpp"
#include "vps/coverage/coverage.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/fault/checkpoint.hpp"
#include "vps/obs/provenance.hpp"
#include "vps/support/ensure.hpp"
#include "vps/support/rng.hpp"
#include "vps/support/thread_pool.hpp"

namespace {

using namespace vps::fault;
using vps::apps::CapsConfig;
using vps::apps::CapsScenario;
using vps::coverage::FaultSpaceCoverage;
using vps::sim::Time;
using vps::support::ThreadPool;
using vps::support::Xorshift;

// --------------------------------------------------------------------------
// Thread pool
// --------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, StealingRebalancesUnevenTasks) {
  // One long task round-robins onto a single deque; the short tasks behind
  // it must be stolen by the other workers instead of queueing.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 40; ++i) {
    pool.submit([&done, i] {
      if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(50));
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 40);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [](std::size_t i) {
                          if (i == 5) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> counter{0};
  pool.parallel_for(8, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPoolTest, SubmitRethrowsPooledExceptionAtWaitIdle) {
  // Regression: an exception thrown inside a submit()ed task used to unwind
  // the worker thread (std::terminate). It must instead be captured and
  // rethrown to the caller at the wait point.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&ran, i] {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i == 3) throw std::runtime_error("pooled task failed");
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 8);  // the failure did not kill the other tasks
  // The error is consumed by the rethrow: the pool stays usable.
  pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 9);
}

TEST(ThreadPoolTest, ZeroWorkersClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  std::atomic<int> counter{0};
  pool.parallel_for(5, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 5);
}

// --------------------------------------------------------------------------
// Keyed Xorshift fork
// --------------------------------------------------------------------------

TEST(XorshiftForkKeyed, SameKeySameStreamAndDoesNotAdvanceParent) {
  const Xorshift base(123);
  Xorshift a = base.fork(7);
  Xorshift b = base.fork(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
  // Forking never advanced the parent: a fresh copy forks identically.
  Xorshift c = Xorshift(123).fork(7);
  Xorshift d = base.fork(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(c.next(), d.next());
}

TEST(XorshiftForkKeyed, StreamsAreDistinctAcrossKeysAndSeeds) {
  const Xorshift base(99);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t key = 0; key < 4096; ++key) {
    firsts.insert(base.fork(key).next());
  }
  EXPECT_EQ(firsts.size(), 4096u) << "first draws of keyed streams collided";
  // Different base seeds give different streams for the same key.
  EXPECT_NE(Xorshift(1).fork(0).next(), Xorshift(2).fork(0).next());
}

TEST(XorshiftForkKeyed, StreamsLookIndependent) {
  // Cheap independence sanity: the mean of the first uniform draw over many
  // consecutive keys must be near 0.5 (adjacent-key correlation would skew
  // it), and consecutive streams must not be shifted copies of each other.
  const Xorshift base(2026);
  double sum = 0.0;
  const int n = 4096;
  for (int key = 0; key < n; ++key) sum += base.fork(static_cast<std::uint64_t>(key)).uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);

  Xorshift s0 = base.fork(0);
  Xorshift s1 = base.fork(1);
  std::vector<std::uint64_t> draws0(16), draws1(16);
  for (auto& v : draws0) v = s0.next();
  for (auto& v : draws1) v = s1.next();
  int matches = 0;
  for (int lag = 0; lag < 8; ++lag) {
    for (int i = 0; i + lag < 16; ++i) matches += draws0[i + lag] == draws1[i];
  }
  EXPECT_EQ(matches, 0) << "consecutive keyed streams overlap";
}

// --------------------------------------------------------------------------
// Order-independent merges
// --------------------------------------------------------------------------

TEST(FaultSpaceCoverageMerge, MergeOrderDoesNotMatter) {
  const auto build = [] { return FaultSpaceCoverage(3, 4, 2); };
  FaultSpaceCoverage shard_a = build();
  shard_a.sample(0, 1, 0.1);
  shard_a.sample(2, 3, 0.9);
  FaultSpaceCoverage shard_b = build();
  shard_b.sample(1, 0, 0.4);
  shard_b.sample(2, 3, 0.2);

  FaultSpaceCoverage ab = build();
  ab.merge(shard_a);
  ab.merge(shard_b);
  FaultSpaceCoverage ba = build();
  ba.merge(shard_b);
  ba.merge(shard_a);
  EXPECT_DOUBLE_EQ(ab.coverage(), ba.coverage());
  EXPECT_EQ(ab.samples(), ba.samples());
  EXPECT_EQ(ab.samples(), 4u);

  // Merging shards equals sampling everything into one instance.
  FaultSpaceCoverage direct = build();
  direct.sample(0, 1, 0.1);
  direct.sample(2, 3, 0.9);
  direct.sample(1, 0, 0.4);
  direct.sample(2, 3, 0.2);
  EXPECT_DOUBLE_EQ(ab.coverage(), direct.coverage());
  EXPECT_EQ(ab.report(), direct.report());
}

TEST(FaultSpaceCoverageMerge, ShapeMismatchThrows) {
  FaultSpaceCoverage a(2, 4, 2);
  FaultSpaceCoverage b(3, 4, 2);
  EXPECT_THROW(a.merge(b), vps::support::InvariantError);
}

TEST(CampaignResultMerge, AggregatesShardStatistics) {
  CampaignResult a;
  a.outcome_counts[static_cast<std::size_t>(Outcome::kNoEffect)] = 8;
  a.outcome_counts[static_cast<std::size_t>(Outcome::kHazard)] = 2;
  a.runs_executed = 10;
  a.records.resize(10);
  a.faults_to_first_hazard = 0;

  CampaignResult b;
  b.outcome_counts[static_cast<std::size_t>(Outcome::kHazard)] = 1;
  b.outcome_counts[static_cast<std::size_t>(Outcome::kTimeout)] = 4;
  b.runs_executed = 5;
  b.records.resize(5);
  b.faults_to_first_hazard = 3;

  a.merge(b);
  EXPECT_EQ(a.runs_executed, 15u);
  EXPECT_EQ(a.count(Outcome::kHazard), 3u);
  EXPECT_EQ(a.count(Outcome::kTimeout), 4u);
  EXPECT_EQ(a.records.size(), 15u);
  // First hazard of the merged sequence: shard b's hazard at offset 10.
  EXPECT_EQ(a.faults_to_first_hazard, 13u);
  EXPECT_NEAR(a.hazard_probability.estimate, 3.0 / 15.0, 1e-12);

  // Counts commute: merging in the other order gives the same tallies.
  CampaignResult a2;
  a2.outcome_counts[static_cast<std::size_t>(Outcome::kNoEffect)] = 8;
  a2.outcome_counts[static_cast<std::size_t>(Outcome::kHazard)] = 2;
  a2.runs_executed = 10;
  CampaignResult b2 = b;
  b2.records.clear();
  b2.merge(a2);
  EXPECT_EQ(b2.outcome_counts, a.outcome_counts);
}

// --------------------------------------------------------------------------
// ParallelCampaign determinism
// --------------------------------------------------------------------------

ScenarioFactory caps_factory(bool crash) {
  return [crash] {
    return std::make_unique<CapsScenario>(
        CapsConfig{.crash = crash, .duration = Time::ms(10)});
  };
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.outcome_counts, b.outcome_counts);
  EXPECT_EQ(a.runs_executed, b.runs_executed);
  EXPECT_EQ(a.faults_to_first_hazard, b.faults_to_first_hazard);
  EXPECT_EQ(a.final_coverage, b.final_coverage);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].fault.id, b.records[i].fault.id);
    EXPECT_EQ(a.records[i].fault.type, b.records[i].fault.type);
    EXPECT_EQ(a.records[i].fault.address, b.records[i].fault.address);
    EXPECT_EQ(a.records[i].fault.bit, b.records[i].fault.bit);
    EXPECT_EQ(a.records[i].fault.inject_at, b.records[i].fault.inject_at);
    EXPECT_EQ(a.records[i].fault.magnitude, b.records[i].fault.magnitude);
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome);
    EXPECT_EQ(a.records[i].crash_what, b.records[i].crash_what);
  }
  ASSERT_EQ(a.coverage_curve.size(), b.coverage_curve.size());
  for (std::size_t i = 0; i < a.coverage_curve.size(); ++i) {
    EXPECT_EQ(a.coverage_curve[i], b.coverage_curve[i]) << "curve diverges at run " << i;
  }
  EXPECT_EQ(a.interrupted, b.interrupted);
  ASSERT_EQ(a.quarantine.size(), b.quarantine.size());
  for (std::size_t i = 0; i < a.quarantine.size(); ++i) {
    EXPECT_EQ(a.quarantine[i].fault.id, b.quarantine[i].fault.id);
    EXPECT_EQ(a.quarantine[i].what, b.quarantine[i].what);
    EXPECT_EQ(a.quarantine[i].attempts, b.quarantine[i].attempts);
  }
}

CampaignResult run_parallel(Strategy strategy, std::size_t workers, std::size_t runs) {
  CampaignConfig cfg;
  cfg.runs = runs;
  cfg.seed = 42;
  cfg.strategy = strategy;
  cfg.location_buckets = 8;
  cfg.workers = workers;
  ParallelCampaign campaign(caps_factory(/*crash=*/false), cfg);
  return campaign.run();
}

TEST(ParallelCampaignTest, BitwiseIdenticalAcrossWorkerCounts) {
  for (const auto strategy : {Strategy::kMonteCarlo, Strategy::kGuided,
                              Strategy::kCoverageDriven, Strategy::kExhaustiveGrid}) {
    SCOPED_TRACE(to_string(strategy));
    const auto w1 = run_parallel(strategy, 1, 24);
    const auto w2 = run_parallel(strategy, 2, 24);
    const auto w8 = run_parallel(strategy, 8, 24);
    expect_identical(w1, w2);
    expect_identical(w1, w8);
  }
}

TEST(ParallelCampaignTest, RunsClassifiesAndCovers) {
  const auto result = run_parallel(Strategy::kMonteCarlo, 4, 30);
  EXPECT_EQ(result.runs_executed, 30u);
  std::uint64_t total = 0;
  for (auto c : result.outcome_counts) total += c;
  EXPECT_EQ(total, 30u);
  EXPECT_EQ(result.records.size(), 30u);
  EXPECT_EQ(result.coverage_curve.size(), 30u);
  EXPECT_GT(result.final_coverage, 0.0);
  // Fault ids are assigned in run order by the coordinator.
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    EXPECT_EQ(result.records[i].fault.id, i + 1);
  }
}

TEST(ParallelCampaignTest, StopAfterHazardsTrimsDeterministically) {
  CampaignConfig cfg;
  cfg.runs = 100;
  cfg.seed = 11;
  cfg.stop_after_hazards = 1;
  cfg.location_buckets = 8;

  cfg.workers = 1;
  const auto w1 = ParallelCampaign(caps_factory(/*crash=*/true), cfg).run();
  cfg.workers = 8;
  const auto w8 = ParallelCampaign(caps_factory(/*crash=*/true), cfg).run();
  expect_identical(w1, w8);
  if (w1.count(Outcome::kHazard) > 0) {
    EXPECT_EQ(w1.runs_executed, w1.faults_to_first_hazard);
    EXPECT_LT(w1.runs_executed, 100u);
  }
}

// --------------------------------------------------------------------------
// Crash isolation
// --------------------------------------------------------------------------

/// Wraps CapsScenario and throws for every descriptor whose id is divisible
/// by `crash_every` — a deterministic stand-in for a buggy injector/model.
class CrashyCaps final : public Scenario {
 public:
  explicit CrashyCaps(std::uint64_t crash_every) : inner_(CapsConfig{.duration = Time::ms(10)}),
                                                   crash_every_(crash_every) {}
  [[nodiscard]] std::string name() const override { return inner_.name(); }
  [[nodiscard]] vps::sim::Time duration() const override { return inner_.duration(); }
  [[nodiscard]] std::vector<FaultType> fault_types() const override {
    return inner_.fault_types();
  }
  [[nodiscard]] Observation run(const FaultDescriptor* fault, std::uint64_t seed) override {
    if (fault != nullptr && fault->id % crash_every_ == 0) {
      throw std::runtime_error("simulated model crash for fault " + std::to_string(fault->id));
    }
    return inner_.run(fault, seed);
  }

 private:
  CapsScenario inner_;
  std::uint64_t crash_every_;
};

TEST(ParallelCampaignTest, CrashingReplaysQuarantineAndStayDeterministic) {
  CampaignConfig cfg;
  cfg.runs = 24;
  cfg.seed = 42;
  cfg.location_buckets = 8;
  cfg.crash_retries = 1;
  const auto crashy_factory = [] { return std::make_unique<CrashyCaps>(5); };

  cfg.workers = 1;
  const auto w1 = ParallelCampaign(crashy_factory, cfg).run();
  cfg.workers = 4;
  const auto w4 = ParallelCampaign(crashy_factory, cfg).run();
  cfg.workers = 8;
  const auto w8 = ParallelCampaign(crashy_factory, cfg).run();
  expect_identical(w1, w4);
  expect_identical(w1, w8);

  // Every fifth descriptor crashed; the campaign completed all other runs.
  EXPECT_EQ(w1.runs_executed, 24u);
  EXPECT_EQ(w1.count(Outcome::kSimCrash), 24u / 5);
  ASSERT_EQ(w1.quarantine.size(), 24u / 5);
  for (const auto& q : w1.quarantine) {
    EXPECT_EQ(q.fault.id % 5, 0u);
    EXPECT_NE(q.what.find("simulated model crash"), std::string::npos);
    EXPECT_EQ(q.attempts, 2u);  // first try + one retry
  }
  // Quarantined descriptors carry their diagnostics in the record too.
  for (const auto& rec : w1.records) {
    EXPECT_EQ(rec.outcome == Outcome::kSimCrash, !rec.crash_what.empty());
  }
  // The quarantine shows up in the weak-spot report instead of vanishing.
  EXPECT_NE(w1.render_weak_spots().find("quarantine"), std::string::npos);
}

TEST(ParallelCampaignTest, CrashRetriesAreDeterministicPerDescriptor) {
  // Re-running the same crashing campaign reproduces the same quarantine —
  // retries do not inject host nondeterminism into the result.
  CampaignConfig cfg;
  cfg.runs = 20;
  cfg.seed = 7;
  cfg.location_buckets = 8;
  cfg.workers = 4;
  cfg.crash_retries = 3;
  const auto factory = [] { return std::make_unique<CrashyCaps>(3); };
  const auto first = ParallelCampaign(factory, cfg).run();
  const auto second = ParallelCampaign(factory, cfg).run();
  expect_identical(first, second);
  EXPECT_GT(first.quarantine.size(), 0u);
  for (const auto& q : first.quarantine) EXPECT_EQ(q.attempts, 4u);
}

// --------------------------------------------------------------------------
// Exact coverage recompute on merge
// --------------------------------------------------------------------------

TEST(CampaignResultMerge, RecomputesCoverageFromDisjointShards) {
  // Two shards covering disjoint fault classes: the exact merged coverage is
  // strictly greater than either shard's own, so a max() fallback would be
  // visibly wrong.
  auto cov_a = std::make_shared<FaultSpaceCoverage>(2, 2, 2);
  cov_a->sample(0, 0, 0.1);
  cov_a->sample(0, 1, 0.6);
  auto cov_b = std::make_shared<FaultSpaceCoverage>(2, 2, 2);
  cov_b->sample(1, 0, 0.1);
  cov_b->sample(1, 1, 0.6);

  CampaignResult a;
  a.runs_executed = 2;
  a.final_coverage = cov_a->coverage();
  a.coverage = cov_a;
  CampaignResult b;
  b.runs_executed = 2;
  b.final_coverage = cov_b->coverage();
  b.coverage = cov_b;

  FaultSpaceCoverage expected(2, 2, 2);
  expected.merge(*cov_a);
  expected.merge(*cov_b);

  a.merge(b);
  EXPECT_DOUBLE_EQ(a.final_coverage, expected.coverage());
  EXPECT_GT(a.final_coverage, cov_a->coverage());
  EXPECT_GT(a.final_coverage, cov_b->coverage());
  ASSERT_NE(a.coverage, nullptr);
  EXPECT_EQ(a.coverage->samples(), 4u);
  // The inputs were copied, not mutated.
  EXPECT_EQ(cov_a->samples(), 2u);
  EXPECT_EQ(cov_b->samples(), 2u);

  // Without a shard on one side the merge falls back to the max lower bound
  // (and adopts the surviving shard for later merges).
  CampaignResult c;
  c.runs_executed = 1;
  c.final_coverage = 0.9;
  CampaignResult d = c;
  d.merge(a);
  EXPECT_DOUBLE_EQ(d.final_coverage, std::max(0.9, a.final_coverage));
  EXPECT_EQ(d.coverage, a.coverage);
}

TEST(ParallelCampaignTest, BatchSizeIsPartOfTheContractWorkersAreNot) {
  // Same batch size, different workers: identical (tested above). Here the
  // converse sanity: an explicit batch size still reproduces across worker
  // counts, even when it does not divide the run count.
  CampaignConfig cfg;
  cfg.runs = 25;
  cfg.seed = 5;
  cfg.strategy = Strategy::kGuided;
  cfg.location_buckets = 8;
  cfg.batch_size = 7;
  cfg.workers = 2;
  const auto a = ParallelCampaign(caps_factory(false), cfg).run();
  cfg.workers = 5;
  const auto b = ParallelCampaign(caps_factory(false), cfg).run();
  expect_identical(a, b);
  EXPECT_EQ(a.runs_executed, 25u);
}

// --------------------------------------------------------------------------
// Provenance across workers + checkpoints
// --------------------------------------------------------------------------

ScenarioFactory traced_caps_factory() {
  return [] {
    return std::make_unique<CapsScenario>(
        CapsConfig{.duration = Time::ms(10), .provenance = true});
  };
}

TEST(ParallelCampaignTest, ProvenanceExportsAreWorkerCountInvariant) {
  // The headline determinism guarantee extended to the provenance layer:
  // JSONL/DOT exports and the latency table are byte-identical for any
  // worker count and across reruns, because the per-run DAGs ride on the
  // records and every aggregate is recomputed from them in run order.
  CampaignConfig cfg;
  cfg.runs = 18;
  cfg.seed = 7;
  cfg.location_buckets = 8;
  cfg.workers = 1;
  const auto w1 = ParallelCampaign(traced_caps_factory(), cfg).run();
  cfg.workers = 2;
  const auto w2 = ParallelCampaign(traced_caps_factory(), cfg).run();
  cfg.workers = 8;
  const auto w8 = ParallelCampaign(traced_caps_factory(), cfg).run();
  expect_identical(w1, w2);
  expect_identical(w1, w8);

  const std::string jsonl = w1.provenance_jsonl();
  EXPECT_FALSE(jsonl.empty());
  EXPECT_EQ(jsonl, w2.provenance_jsonl());
  EXPECT_EQ(jsonl, w8.provenance_jsonl());
  EXPECT_EQ(w1.provenance_dot(), w2.provenance_dot());
  EXPECT_EQ(w1.provenance_dot(), w8.provenance_dot());
  EXPECT_EQ(w1.render_latency(), w2.render_latency());
  EXPECT_EQ(w1.render_latency(), w8.render_latency());

  // Rerun with the same config: still the same bytes.
  cfg.workers = 2;
  EXPECT_EQ(ParallelCampaign(traced_caps_factory(), cfg).run().provenance_jsonl(), jsonl);

  // The latency table is well-formed: every traced run appears under exactly
  // one fault type, detections never exceed traced runs, and at least one
  // fault was actually traced through the model.
  std::uint64_t traced = 0;
  for (const auto& s : w1.detection_latency_stats()) {
    EXPECT_LE(s.detected, s.traced);
    traced += s.traced;
  }
  EXPECT_GT(traced, 0u);
  EXPECT_LE(traced, w1.runs_executed);
}

TEST(Checkpoint, V2RoundTripsProvenanceRecords) {
  using vps::obs::FaultProvenance;
  using vps::obs::HopKind;
  using vps::obs::ProvenanceNode;

  CampaignCheckpoint cp;
  cp.driver = "campaign";
  cp.scenario = "toy";
  cp.config.runs = 4;
  cp.config.seed = 1;
  cp.golden.completed = true;

  RunRecord rec;
  rec.fault.id = 1;
  rec.fault.type = FaultType::kMemoryBitFlip;
  rec.outcome = Outcome::kDetectedCorrected;
  FaultProvenance fp;
  fp.fault_id = 2;
  fp.label = "mem_bit_flip#1";
  fp.nodes.push_back(
      ProvenanceNode{"inject:mem_bit_flip", HopKind::kInjection, Time::us(3), -1, 0});
  fp.nodes.push_back(ProvenanceNode{"mem:ram", HopKind::kPropagation, Time::us(4), 0, 1});
  fp.nodes.push_back(ProvenanceNode{"hw.ecc:ram", HopKind::kDetection, Time::us(5), 1, 2});
  rec.provenance.push_back(fp);
  cp.records.push_back(rec);

  const std::string text = to_jsonl(cp);
  EXPECT_NE(text.find("\"version\":" + std::to_string(CampaignCheckpoint::kVersion)),
            std::string::npos);
  EXPECT_NE(text.find("\"prov0\""), std::string::npos);

  const CampaignCheckpoint back = checkpoint_from_jsonl(text);
  ASSERT_EQ(back.records.size(), 1u);
  ASSERT_EQ(back.records[0].provenance.size(), 1u);
  const FaultProvenance& got = back.records[0].provenance[0];
  EXPECT_EQ(got.fault_id, 2u);
  EXPECT_EQ(got.label, "mem_bit_flip#1");
  EXPECT_EQ(got.encode(), fp.encode());
  ASSERT_TRUE(got.detection_latency().has_value());
  EXPECT_EQ(*got.detection_latency(), Time::us(2));
  EXPECT_EQ(to_jsonl(back), text);

  // A record without provenance serializes without prov fields, and the line
  // still parses — i.e. the v2 field is genuinely optional (v1 shape).
  cp.records[0].provenance.clear();
  const std::string v1ish = to_jsonl(cp);
  EXPECT_EQ(v1ish.find("\"prov0\""), std::string::npos);
  const CampaignCheckpoint plain = checkpoint_from_jsonl(v1ish);
  ASSERT_EQ(plain.records.size(), 1u);
  EXPECT_TRUE(plain.records[0].provenance.empty());
}

}  // namespace

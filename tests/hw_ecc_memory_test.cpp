// Tests for the Hamming SEC-DED codec and the protected memory model:
// exhaustive single-bit correction, double-bit detection, sub-word access,
// scrubbing, DMI policy, and fault-injection entry points.

#include <gtest/gtest.h>

#include "vps/hw/ecc.hpp"
#include "vps/hw/memory.hpp"
#include "vps/support/rng.hpp"
#include "vps/tlm/payload.hpp"

namespace {

using namespace vps::hw;
using vps::sim::Time;
using namespace vps::sim::time_literals;

TEST(Ecc, RoundTripWithoutErrors) {
  vps::support::Xorshift rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto data = static_cast<std::uint32_t>(rng.next());
    const auto decoded = ecc_decode(ecc_encode(data));
    EXPECT_EQ(decoded.status, EccStatus::kOk);
    EXPECT_EQ(decoded.data, data);
  }
}

class EccSingleBit : public ::testing::TestWithParam<int> {};

TEST_P(EccSingleBit, EverySingleBitFlipIsCorrected) {
  const int bit = GetParam();
  vps::support::Xorshift rng(static_cast<std::uint64_t>(bit) + 1);
  for (int i = 0; i < 50; ++i) {
    const auto data = static_cast<std::uint32_t>(rng.next());
    const std::uint64_t corrupted = ecc_encode(data) ^ (1ULL << bit);
    const auto decoded = ecc_decode(corrupted);
    EXPECT_EQ(decoded.status, EccStatus::kCorrected) << "bit " << bit;
    EXPECT_EQ(decoded.data, data) << "bit " << bit;
    EXPECT_EQ(decoded.corrected_bit, bit);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodewordBits, EccSingleBit, ::testing::Range(0, kCodewordBits));

TEST(Ecc, AllDoubleBitFlipsAreDetected) {
  const std::uint32_t data = 0xA5C3F019;
  const std::uint64_t cw = ecc_encode(data);
  for (int b1 = 0; b1 < kCodewordBits; ++b1) {
    for (int b2 = b1 + 1; b2 < kCodewordBits; ++b2) {
      const auto decoded = ecc_decode(cw ^ (1ULL << b1) ^ (1ULL << b2));
      EXPECT_EQ(decoded.status, EccStatus::kUncorrectable) << b1 << "," << b2;
    }
  }
}

std::pair<vps::tlm::Response, std::uint32_t> mem_read(Memory& m, std::uint64_t addr,
                                                      std::size_t n) {
  vps::tlm::GenericPayload p(vps::tlm::Command::kRead, addr, n);
  Time d = Time::zero();
  m.b_transport(p, d);
  return {p.response(), static_cast<std::uint32_t>(p.value_le())};
}

vps::tlm::Response mem_write(Memory& m, std::uint64_t addr, std::size_t n, std::uint32_t v) {
  vps::tlm::GenericPayload p(vps::tlm::Command::kWrite, addr, n);
  p.set_value_le(v);
  Time d = Time::zero();
  m.b_transport(p, d);
  return p.response();
}

class MemoryModes : public ::testing::TestWithParam<EccMode> {};

TEST_P(MemoryModes, ReadWriteAllSizes) {
  Memory m("m", 64, 5_ns, GetParam());
  EXPECT_EQ(mem_write(m, 0, 4, 0xDDCCBBAA), vps::tlm::Response::kOk);
  EXPECT_EQ(mem_read(m, 0, 4).second, 0xDDCCBBAAu);
  EXPECT_EQ(mem_read(m, 0, 1).second, 0xAAu);
  EXPECT_EQ(mem_read(m, 1, 1).second, 0xBBu);
  EXPECT_EQ(mem_read(m, 2, 2).second, 0xDDCCu);
  EXPECT_EQ(mem_write(m, 1, 1, 0x55), vps::tlm::Response::kOk);
  EXPECT_EQ(mem_read(m, 0, 4).second, 0xDDCC55AAu);
  EXPECT_EQ(mem_write(m, 2, 2, 0x1234), vps::tlm::Response::kOk);
  EXPECT_EQ(mem_read(m, 0, 4).second, 0x123455AAu);
}

TEST_P(MemoryModes, RejectsBadAccesses) {
  Memory m("m", 64, 0_ns, GetParam());
  EXPECT_EQ(mem_read(m, 62, 4).first, vps::tlm::Response::kAddressError);   // straddles end
  EXPECT_EQ(mem_read(m, 1, 4).first, vps::tlm::Response::kAddressError);    // misaligned
  EXPECT_EQ(mem_read(m, 3, 2).first, vps::tlm::Response::kAddressError);    // misaligned
  EXPECT_EQ(mem_read(m, 100, 1).first, vps::tlm::Response::kAddressError);  // out of range
}

TEST_P(MemoryModes, LoadAndPeek) {
  Memory m("m", 64, 0_ns, GetParam());
  const std::array<std::uint8_t, 5> img{1, 2, 3, 4, 5};
  m.load(8, img);
  for (std::size_t i = 0; i < img.size(); ++i) EXPECT_EQ(m.peek(8 + i), img[i]);
  m.poke32(0, 0xCAFEBABE);
  EXPECT_EQ(m.peek32(0), 0xCAFEBABEu);
}

INSTANTIATE_TEST_SUITE_P(BothModes, MemoryModes,
                         ::testing::Values(EccMode::kNone, EccMode::kSecded));

TEST(Memory, UnprotectedBitFlipSilentlyCorrupts) {
  Memory m("m", 64, 0_ns, EccMode::kNone);
  m.poke32(0, 0);
  m.flip_bit(0, 3);
  const auto [resp, val] = mem_read(m, 0, 4);
  EXPECT_EQ(resp, vps::tlm::Response::kOk);
  EXPECT_EQ(val, 8u);  // silent data corruption
  EXPECT_EQ(m.corrected_errors(), 0u);
}

TEST(Memory, EccCorrectsSingleDataBitFlip) {
  Memory m("m", 64, 0_ns, EccMode::kSecded);
  m.poke32(4, 0x0F0F0F0F);
  m.flip_bit(5, 6);  // byte 1 of word 1, bit 6
  const auto [resp, val] = mem_read(m, 4, 4);
  EXPECT_EQ(resp, vps::tlm::Response::kOk);
  EXPECT_EQ(val, 0x0F0F0F0Fu);
  EXPECT_EQ(m.corrected_errors(), 1u);
  // Scrubbing: the next read needs no further correction.
  (void)mem_read(m, 4, 4);
  EXPECT_EQ(m.corrected_errors(), 1u);
}

TEST(Memory, EccDetectsDoubleBitFlipAsBusError) {
  Memory m("m", 64, 0_ns, EccMode::kSecded);
  m.poke32(0, 0x12345678);
  m.flip_codeword_bit(0, 7);
  m.flip_codeword_bit(0, 20);
  const auto [resp, val] = mem_read(m, 0, 4);
  EXPECT_EQ(resp, vps::tlm::Response::kGenericError);
  EXPECT_EQ(m.uncorrectable_errors(), 1u);
}

TEST(Memory, EccCorrectsCheckBitFlipToo) {
  Memory m("m", 64, 0_ns, EccMode::kSecded);
  m.poke32(0, 0x87654321);
  m.flip_codeword_bit(0, 1);  // position 1 is a Hamming check bit
  const auto [resp, val] = mem_read(m, 0, 4);
  EXPECT_EQ(resp, vps::tlm::Response::kOk);
  EXPECT_EQ(val, 0x87654321u);
  EXPECT_EQ(m.corrected_errors(), 1u);
}

TEST(Memory, DmiPolicyFollowsProtection) {
  Memory plain("p", 64, 0_ns, EccMode::kNone);
  Memory ecc("e", 64, 0_ns, EccMode::kSecded);
  vps::tlm::DmiRegion r;
  EXPECT_TRUE(plain.get_direct_mem_ptr(0, r));
  EXPECT_FALSE(ecc.get_direct_mem_ptr(0, r));
}

TEST(Memory, LatencyAccumulates) {
  Memory m("m", 64, 7_ns, EccMode::kNone);
  vps::tlm::GenericPayload p(vps::tlm::Command::kRead, 0, 4);
  Time d = 3_ns;
  m.b_transport(p, d);
  EXPECT_EQ(d, 10_ns);
}

TEST(Memory, StatsCountAccesses) {
  Memory m("m", 64, 0_ns, EccMode::kNone);
  (void)mem_write(m, 0, 4, 1);
  (void)mem_read(m, 0, 4);
  (void)mem_read(m, 0, 4);
  EXPECT_EQ(m.writes(), 1u);
  EXPECT_EQ(m.reads(), 2u);
}

}  // namespace

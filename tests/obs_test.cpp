// Observability-layer tests: JSON escaping, JSONL schema + determinism,
// Chrome trace-event structure, kernel attribution, transaction probes on
// the TLM router and the CAN bus, wall-clock profiling scopes, campaign
// progress monitoring, and fault-injection spans.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "vps/apps/caps.hpp"
#include "vps/can/bus.hpp"
#include "vps/can/frame.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/fault/injector.hpp"
#include "vps/hw/memory.hpp"
#include "vps/obs/campaign_monitor.hpp"
#include "vps/obs/metrics.hpp"
#include "vps/obs/provenance.hpp"
#include "vps/support/ensure.hpp"
#include "vps/obs/kernel_tracer.hpp"
#include "vps/obs/probe.hpp"
#include "vps/obs/profile.hpp"
#include "vps/obs/trace.hpp"
#include "vps/sim/kernel.hpp"
#include "vps/sim/signal.hpp"
#include "vps/tlm/payload.hpp"
#include "vps/tlm/router.hpp"
#include "vps/tlm/sockets.hpp"

namespace {

using namespace vps;
using namespace vps::sim;
using obs::TraceArg;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(Json, Escape) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(obs::json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(obs::json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(obs::json_escape(std::string("nul\0byte", 8)), "nul\\u0000byte");
  EXPECT_EQ(obs::json_escape("\x01"), "\\u0001");
}

TEST(Jsonl, SchemaAndArgs) {
  const std::string path = "/tmp/vps_obs_jsonl_test.jsonl";
  {
    obs::Tracer tracer;
    obs::JsonlSink sink(path);
    tracer.add_sink(sink);
    EXPECT_TRUE(tracer.has_sinks());
    tracer.complete("tlm", "write@0x40", Time::ns(12), Time::ps(250), "bus0",
                    {TraceArg::str("response", "OK"), TraceArg::number("size", 4)});
    tracer.instant("can", "crc_error", Time::us(3));
    tracer.counter("campaign", "caps", Time::ps(7),
                   {TraceArg::number("runs_done", 7), TraceArg::number("coverage", 0.5)});
    tracer.flush();
    EXPECT_EQ(tracer.events(), 3u);
    EXPECT_EQ(sink.lines_written(), 3u);
  }
  const auto lines = lines_of(slurp(path));
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0],
            "{\"kind\":\"complete\",\"ts_ps\":12000,\"dur_ps\":250,\"cat\":\"tlm\","
            "\"name\":\"write@0x40\",\"track\":\"bus0\","
            "\"args\":{\"response\":\"OK\",\"size\":4}}");
  // Instants carry no dur_ps; empty track/args are omitted entirely.
  EXPECT_EQ(lines[1],
            "{\"kind\":\"instant\",\"ts_ps\":3000000,\"cat\":\"can\",\"name\":\"crc_error\"}");
  EXPECT_EQ(lines[2],
            "{\"kind\":\"counter\",\"ts_ps\":7,\"cat\":\"campaign\",\"name\":\"caps\","
            "\"args\":{\"runs_done\":7,\"coverage\":0.5}}");
  std::remove(path.c_str());
}

TEST(Chrome, DocumentStructureAndThreadMetadata) {
  const std::string path = "/tmp/vps_obs_chrome_test.trace.json";
  {
    obs::Tracer tracer;
    obs::ChromeTraceSink sink(path);
    tracer.add_sink(sink);
    tracer.complete("kernel", "worker", Time::us(1), Time::ns(10), "worker");
    tracer.complete("kernel", "worker", Time::us(2), Time::ns(10), "worker");
    tracer.instant("fault", "skipped:stuck#1", Time::us(3), "faults");
    tracer.counter("campaign", "caps", Time::ps(4), {TraceArg::number("runs_done", 4)});
    sink.close();
    EXPECT_EQ(sink.events_written(), 4u);
    // Records after close are ignored, not appended to a finalized document.
    tracer.instant("kernel", "late", Time::us(9));
    EXPECT_EQ(sink.events_written(), 4u);
  }
  const std::string content = slurp(path);
  EXPECT_EQ(content.rfind("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(content.substr(content.size() - 4), "\n]}\n");
  // One thread_name metadata record per distinct track, emitted on first use:
  // "worker", "faults", and the counter's category lane "campaign".
  EXPECT_EQ(count_occurrences(content, "\"name\":\"thread_name\""), 3u);
  EXPECT_EQ(count_occurrences(content, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(count_occurrences(content, "\"ph\":\"i\""), 1u);
  EXPECT_EQ(count_occurrences(content, "\"ph\":\"C\""), 1u);
  EXPECT_NE(content.find("\"ts\":1.000000"), std::string::npos);  // 1us, ps-exact
  EXPECT_NE(content.find("\"dur\":0.010000"), std::string::npos);    // 10ns
  EXPECT_EQ(content.find("late"), std::string::npos);
  std::remove(path.c_str());
}

/// Shared workload for the determinism test: two processes, one notifying
/// an event the other waits on.
void traced_run(const std::string& path) {
  Kernel kernel;
  Event tick(kernel, "tick");
  obs::Tracer tracer;
  obs::JsonlSink sink(path);
  tracer.add_sink(sink);
  obs::KernelTracer::Options opts;
  opts.trace_notifications = true;
  obs::KernelTracer kt(kernel, opts);
  kt.set_tracer(&tracer);
  kernel.spawn("producer", [](Event& tick) -> Coro {
    for (int i = 0; i < 5; ++i) {
      co_await delay(10_ns);
      tick.notify();
    }
  }(tick));
  kernel.spawn("consumer", [](Event& tick) -> Coro {
    for (int i = 0; i < 5; ++i) co_await tick;
  }(tick));
  kernel.run();
  tracer.flush();
}

TEST(Trace, ByteIdenticalAcrossRuns) {
  const std::string a = "/tmp/vps_obs_det_a.jsonl";
  const std::string b = "/tmp/vps_obs_det_b.jsonl";
  traced_run(a);
  traced_run(b);
  const std::string ca = slurp(a);
  EXPECT_FALSE(ca.empty());
  EXPECT_EQ(ca, slurp(b));  // sim-time-only timestamps: byte-identical
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(KernelTracer, AttributionMatchesKernelStats) {
  Kernel kernel;
  Event tick(kernel, "tick");
  obs::KernelTracer::Options opts;
  opts.trace_notifications = true;
  obs::KernelTracer kt(kernel, opts);
  kernel.spawn("busy", [](Event& tick) -> Coro {
    for (int i = 0; i < 7; ++i) {
      co_await delay(1_ns);
      tick.notify();
    }
  }(tick));
  kernel.spawn("idle", []() -> Coro { co_await delay(2_ns); }());
  kernel.run();

  EXPECT_EQ(kt.activations_seen(), kernel.stats().activations);
  EXPECT_EQ(kt.notifications_seen(), kernel.stats().notifications);
  EXPECT_EQ(kt.delta_cycles_seen(), kernel.stats().delta_cycles);

  const auto procs = kt.process_attribution();
  ASSERT_GE(procs.size(), 2u);
  EXPECT_EQ(procs[0].name, "busy");  // sorted by activations descending
  std::uint64_t sum = 0;
  for (const auto& p : procs) sum += p.activations;
  EXPECT_EQ(sum, kernel.stats().activations);

  const auto events = kt.event_attribution();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].name, "tick");
  EXPECT_EQ(events[0].notifications, 7u);

  const std::string report = kt.report();
  EXPECT_NE(report.find("busy"), std::string::npos);
  EXPECT_NE(report.find("tick"), std::string::npos);
}

TEST(KernelTracer, CoexistsWithOtherObserversAndDetachesOnDestruction) {
  Kernel kernel;
  auto first = std::make_unique<obs::KernelTracer>(kernel);
  EXPECT_TRUE(kernel.has_observer(*first));
  {
    // A second tracer attaches alongside — no eviction in either direction,
    // and destroying the *old* tracer must not detach the new one.
    obs::KernelTracer second(kernel);
    EXPECT_TRUE(kernel.has_observer(*first));
    EXPECT_TRUE(kernel.has_observer(second));
    EXPECT_EQ(kernel.observer_count(), 2u);
    first.reset();
    EXPECT_TRUE(kernel.has_observer(second));
    EXPECT_EQ(kernel.observer_count(), 1u);
  }
  EXPECT_EQ(kernel.observer_count(), 0u);  // last one out detaches
  kernel.spawn("p", []() -> Coro { co_await delay(1_ns); }());
  kernel.run();  // no observer: must not crash
  EXPECT_EQ(kernel.now(), 1_ns);
}

TEST(KernelTracer, CoexistsWithUserObserverAndRecordsBudgetTrips) {
  // A KernelTracer and a plain user observer attached to the same kernel:
  // both must see every callback, and a tripped watchdog budget shows up as
  // a budget_trip instant on the scheduler track.
  struct TripCounter final : sim::KernelObserver {
    int trips = 0;
    void on_budget_trip(const sim::RunStatus&) override { ++trips; }
  };
  Kernel kernel;
  Event e(kernel, "e");
  kernel.method("storm", [&] { e.notify(); }, {&e}, /*initialize=*/true);

  obs::Tracer tracer;
  obs::KernelTracer kt(kernel);
  kt.set_tracer(&tracer);
  TripCounter user;
  kernel.add_observer(user);

  const sim::RunStatus status =
      kernel.run_until_idle(sim::RunBudget{.max_deltas_without_advance = 20});
  EXPECT_EQ(status.reason, sim::StopReason::kLivelock);
  EXPECT_EQ(kt.budget_trips_seen(), 1u);
  EXPECT_EQ(user.trips, 1);
  EXPECT_EQ(kt.delta_cycles_seen(), kernel.stats().delta_cycles);
  EXPECT_GT(tracer.events(), 0u);
  kernel.remove_observer(user);
}

TEST(Probe, AggregatesLatencyAndEmitsSpans) {
  Kernel kernel;
  obs::Tracer tracer;
  obs::TransactionProbe probe(kernel, "bus0", 0.0, 100.0, 10);
  probe.set_tracer(&tracer);
  probe.record("tlm", "write@0x0", Time::zero(), Time::ns(10));
  probe.record("tlm", "read@0x4", Time::ns(50), Time::ns(30));
  probe.mark("tlm", "decode_error");
  EXPECT_EQ(probe.transactions(), 2u);
  EXPECT_EQ(probe.marks(), 1u);
  EXPECT_DOUBLE_EQ(probe.latency().mean(), 20.0);  // (10 + 30) / 2 ns
  EXPECT_EQ(probe.latency_histogram().total(), 2u);
  EXPECT_EQ(tracer.events(), 3u);
}

TEST(Probe, RouterEmitsTransactionSpansAndDecodeMarks) {
  Kernel kernel;
  obs::Tracer tracer;
  obs::JsonlSink sink("/tmp/vps_obs_router_test.jsonl");
  tracer.add_sink(sink);

  tlm::Router router("bus", Time::ns(20));
  hw::Memory mem("mem", 256, Time::ns(50));
  router.map(0x1000, mem.size(), mem.socket());
  obs::TransactionProbe probe(kernel, "bus");
  probe.set_tracer(&tracer);
  router.set_probe(&probe);

  tlm::InitiatorSocket port("port");
  port.bind(router.target_socket());

  tlm::GenericPayload write(tlm::Command::kWrite, 0x1000, 4);
  write.set_value_le(0xDEADBEEF);
  Time delay = Time::zero();
  port.b_transport(write, delay);
  EXPECT_EQ(write.response(), tlm::Response::kOk);
  EXPECT_EQ(delay, Time::ns(70));  // hop + memory latency

  tlm::GenericPayload read(tlm::Command::kRead, 0x1000, 4);
  delay = Time::zero();
  port.b_transport(read, delay);
  EXPECT_EQ(read.value_le(), 0xDEADBEEFu);

  tlm::GenericPayload stray(tlm::Command::kRead, 0x9999, 4);
  delay = Time::zero();
  port.b_transport(stray, delay);
  EXPECT_EQ(stray.response(), tlm::Response::kAddressError);

  EXPECT_EQ(probe.transactions(), 2u);
  EXPECT_EQ(probe.marks(), 1u);
  EXPECT_DOUBLE_EQ(probe.latency().mean(), 70.0);
  tracer.flush();
  const std::string content = slurp("/tmp/vps_obs_router_test.jsonl");
  EXPECT_NE(content.find("write@0x1000"), std::string::npos);
  EXPECT_NE(content.find("read@0x1000"), std::string::npos);
  EXPECT_NE(content.find("decode_error"), std::string::npos);
  EXPECT_NE(content.find("\"response\":\"OK\""), std::string::npos);
  std::remove("/tmp/vps_obs_router_test.jsonl");
}

class Recorder final : public can::CanNode {
 public:
  void on_frame(const can::CanFrame& frame) override { received.push_back(frame); }
  std::vector<can::CanFrame> received;
};

TEST(Probe, CanBusFrameSpans) {
  Kernel kernel;
  can::CanBus bus(kernel, "can0", 500000);
  Recorder a, b;
  bus.attach(a);
  bus.attach(b);
  obs::Tracer tracer;
  obs::TransactionProbe probe(kernel, "can0", 0.0, 500000.0, 10);
  probe.set_tracer(&tracer);
  bus.set_probe(&probe);

  const auto frame = can::CanFrame::make(0x123, std::vector<std::uint8_t>{1, 2});
  bus.submit(a, frame);
  kernel.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(probe.transactions(), 1u);
  // The span covers the whole frame on the wire.
  const Time wire = bus.bit_time() * can::frame_bit_count(frame);
  EXPECT_DOUBLE_EQ(probe.latency().mean(),
                   static_cast<double>(wire.picoseconds()) / 1000.0);
  EXPECT_EQ(tracer.events(), 1u);
}

TEST(Profiler, ScopesAggregateByName) {
  obs::Profiler::instance().reset();
  for (int i = 0; i < 3; ++i) {
    VPS_PROFILE_SCOPE("obs_test.scope");
    volatile int sink = 0;
    for (int j = 0; j < 1000; ++j) sink += j;
  }
  const auto entries = obs::Profiler::instance().entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "obs_test.scope");
  EXPECT_EQ(entries[0].calls, 3u);
  EXPECT_GT(entries[0].total_ns, 0u);
  EXPECT_GE(entries[0].total_ns, entries[0].max_ns);
  EXPECT_NE(obs::Profiler::instance().report().find("obs_test.scope"), std::string::npos);
  obs::Profiler::instance().reset();
  EXPECT_TRUE(obs::Profiler::instance().entries().empty());
}

/// Minimal deterministic scenario: no kernel, instant runs. A fault flips
/// the output signature so classification exercises real outcomes.
class ToyScenario final : public fault::Scenario {
 public:
  [[nodiscard]] std::string name() const override { return "toy"; }
  [[nodiscard]] sim::Time duration() const override { return Time::ms(1); }
  [[nodiscard]] std::vector<fault::FaultType> fault_types() const override {
    return {fault::FaultType::kSensorOffset, fault::FaultType::kTaskKill};
  }
  [[nodiscard]] fault::Observation run(const fault::FaultDescriptor* fault,
                                       std::uint64_t seed) override {
    fault::Observation obs;
    obs.completed = true;
    obs.output_signature = static_cast<std::uint32_t>(seed);
    if (fault != nullptr && fault->type == fault::FaultType::kTaskKill) {
      obs.output_signature ^= 1;  // silent corruption
    }
    return obs;
  }
};

TEST(Monitor, CampaignReportsProgressPerRunAndCompletionOnce) {
  ToyScenario scenario;
  fault::CampaignConfig cfg;
  cfg.runs = 10;
  cfg.seed = 42;
  cfg.strategy = fault::Strategy::kMonteCarlo;

  obs::Tracer tracer;
  obs::ProgressReporter::Options opts;
  opts.print = false;
  opts.tracer = &tracer;
  obs::ProgressReporter reporter(opts);

  fault::Campaign campaign(scenario, cfg);
  campaign.set_monitor(&reporter);
  const auto result = campaign.run();
  EXPECT_EQ(result.runs_executed, 10u);
  EXPECT_EQ(reporter.progress_reports(), 10u);   // sequential: one per run
  EXPECT_EQ(reporter.complete_reports(), 1u);
  EXPECT_EQ(tracer.events(), 10u);               // one "campaign" counter per run
}

TEST(Monitor, ParallelCampaignReportsBatchesAndCompletion) {
  fault::CampaignConfig cfg;
  cfg.runs = 20;
  cfg.seed = 42;
  cfg.strategy = fault::Strategy::kMonteCarlo;
  cfg.workers = 2;
  cfg.batch_size = 8;

  obs::ProgressReporter::Options opts;
  opts.print = false;
  obs::ProgressReporter reporter(opts);

  fault::ParallelCampaign campaign([] { return std::make_unique<ToyScenario>(); }, cfg);
  campaign.set_monitor(&reporter);
  const auto result = campaign.run();
  EXPECT_EQ(result.runs_executed, 20u);
  EXPECT_EQ(reporter.progress_reports(), 3u);  // ceil(20 / 8) batch barriers
  EXPECT_EQ(reporter.complete_reports(), 1u);
}

TEST(Injector, EmitsSpansForAppliedAndInstantsForSkipped) {
  Kernel kernel;
  obs::Tracer tracer;
  obs::JsonlSink sink("/tmp/vps_obs_injector_test.jsonl");
  tracer.add_sink(sink);

  double raw = 1.0;
  fault::AnalogChannel channel([&raw] { return raw; });
  fault::InjectorHub hub(kernel);
  hub.bind_sensor(channel);
  hub.set_tracer(&tracer);

  fault::FaultDescriptor offset;
  offset.id = 1;
  offset.type = fault::FaultType::kSensorOffset;
  offset.persistence = fault::Persistence::kPermanent;
  offset.inject_at = Time::us(10);
  offset.magnitude = 0.5;
  hub.schedule(offset);

  fault::FaultDescriptor unbound;  // no platform bound: must be skipped
  unbound.id = 2;
  unbound.type = fault::FaultType::kRegisterBitFlip;
  unbound.inject_at = Time::us(20);
  hub.schedule(unbound);

  kernel.run();
  EXPECT_DOUBLE_EQ(channel.read(), 1.5);
  EXPECT_EQ(hub.applied_count(), 1u);
  EXPECT_EQ(hub.skipped_count(), 1u);
  tracer.flush();
  const std::string content = slurp("/tmp/vps_obs_injector_test.jsonl");
  EXPECT_NE(content.find("\"cat\":\"fault\""), std::string::npos);
  EXPECT_NE(content.find("sensor_offset#1"), std::string::npos);
  EXPECT_NE(content.find("skipped:register_bit_flip#2"), std::string::npos);
  EXPECT_NE(content.find("\"track\":\"faults\""), std::string::npos);
  std::remove("/tmp/vps_obs_injector_test.jsonl");
}

// --------------------------------------------------------------------------
// JSON escaping: full C0 sweep + invalid UTF-8
// --------------------------------------------------------------------------

TEST(Json, RegressionEscapesEveryC0ControlCharacter) {
  // Regression: only a handful of control characters used to be escaped;
  // Chrome's trace viewer rejects any raw byte in 0x00..0x1F. Sweep all 32.
  for (int c = 0x00; c < 0x20; ++c) {
    const std::string in(1, static_cast<char>(c));
    const std::string out = obs::json_escape(in);
    SCOPED_TRACE(c);
    // No raw control byte may survive.
    for (const char ch : out) EXPECT_GE(static_cast<unsigned char>(ch), 0x20u);
    switch (c) {
      case '\b': EXPECT_EQ(out, "\\b"); break;
      case '\f': EXPECT_EQ(out, "\\f"); break;
      case '\n': EXPECT_EQ(out, "\\n"); break;
      case '\r': EXPECT_EQ(out, "\\r"); break;
      case '\t': EXPECT_EQ(out, "\\t"); break;
      default: {
        char expected[8];
        std::snprintf(expected, sizeof expected, "\\u%04x", static_cast<unsigned>(c));
        EXPECT_EQ(out, expected);
      }
    }
  }
}

TEST(Json, PassesUtf8ThroughAndReplacesInvalidBytes) {
  // Well-formed multi-byte sequences survive untouched.
  EXPECT_EQ(obs::json_escape("caf\xC3\xA9"), "caf\xC3\xA9");
  EXPECT_EQ(obs::json_escape("\xE2\x82\xAC"), "\xE2\x82\xAC");   // €
  EXPECT_EQ(obs::json_escape("\xF0\x9F\x9A\x97"), "\xF0\x9F\x9A\x97");  // 🚗
  // Invalid bytes become the escaped replacement character, never raw bytes.
  EXPECT_EQ(obs::json_escape("\xFF"), "\\ufffd");
  EXPECT_EQ(obs::json_escape("\xC3"), "\\ufffd");          // truncated 2-byte
  EXPECT_EQ(obs::json_escape("\xE2\x82"), "\\ufffd\\ufffd");  // truncated 3-byte
  EXPECT_EQ(obs::json_escape("a\x80z"), "a\\ufffdz");      // stray continuation
  EXPECT_EQ(obs::json_escape("\xC0\xAF"), "\\ufffd\\ufffd");  // overlong encoding
}

// --------------------------------------------------------------------------
// ProgressReporter rate guards
// --------------------------------------------------------------------------

std::string emit_progress_line(const obs::CampaignProgress& progress) {
  const std::string path = "/tmp/vps_obs_monitor_guard_test.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  obs::ProgressReporter::Options opts;
  opts.stream = f;
  obs::ProgressReporter reporter(opts);
  reporter.on_complete(progress);
  std::fclose(f);
  const std::string line = slurp(path);
  std::remove(path.c_str());
  return line;
}

TEST(Monitor, RegressionDivideByZeroAndNonsenseRunsPerSecondAreClamped) {
  // Regression: the first progress sample arrives with wall_seconds == 0, so
  // a naive runs/wall division printed inf/NaN or absurd spikes.
  obs::CampaignProgress p;
  p.campaign = "guard";
  p.runs_done = 5;
  p.runs_total = 10;
  for (const double rps : {std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(), -3.0}) {
    p.wall_seconds = 1.0;
    p.runs_per_second = rps;
    const std::string line = emit_progress_line(p);
    EXPECT_NE(line.find("0.0 runs/s"), std::string::npos) << line;
    EXPECT_EQ(line.find("inf"), std::string::npos) << line;
    EXPECT_EQ(line.find("nan"), std::string::npos) << line;
  }
  // Zero wall clock with a "plausible" rate is still nonsense: clamp it too.
  p.wall_seconds = 0.0;
  p.runs_per_second = 1e9;
  EXPECT_NE(emit_progress_line(p).find("0.0 runs/s"), std::string::npos);
  // A sane sample passes through untouched.
  p.wall_seconds = 2.0;
  p.runs_per_second = 2.5;
  EXPECT_NE(emit_progress_line(p).find("2.5 runs/s"), std::string::npos);
}

TEST(Monitor, FinalSnapshotPrintsLatencyPercentilesWhenMeasured) {
  obs::CampaignProgress p;
  p.campaign = "latency";
  p.runs_done = p.runs_total = 4;
  p.wall_seconds = 1.0;
  p.runs_per_second = 4.0;
  EXPECT_EQ(emit_progress_line(p).find("detection latency"), std::string::npos);
  p.detections_with_latency = 3;
  p.latency_p50_us = 10.0;
  p.latency_p95_us = 20.0;
  p.latency_p99_us = 30.0;
  const std::string line = emit_progress_line(p);
  EXPECT_NE(line.find("detection latency p50/p95/p99 10.0/20.0/30.0 us"), std::string::npos)
      << line;
}

// --------------------------------------------------------------------------
// Metric registry
// --------------------------------------------------------------------------

TEST(Metrics, RegistryCountersGaugesHistogramsAndDeterministicSnapshots) {
  obs::MetricRegistry registry;
  obs::Counter& runs = registry.counter("campaign.runs");
  runs.add();
  runs.add(4);
  EXPECT_EQ(registry.counter("campaign.runs").value(), 5u);  // same object
  registry.gauge("campaign.coverage").set(0.75);
  auto& latency = registry.histogram("campaign.latency_us", 0.0, 100.0, 10);
  latency.add(10.0);
  latency.add(90.0);
  EXPECT_EQ(registry.size(), 3u);
  // Re-registration with a different shape is a bug, not a silent re-bin.
  EXPECT_THROW((void)registry.histogram("campaign.latency_us", 0.0, 50.0, 10),
               vps::support::InvariantError);
  // Snapshots are name-ordered: byte-identical regardless of insertion order.
  obs::MetricRegistry reordered;
  reordered.histogram("campaign.latency_us", 0.0, 100.0, 10).add(90.0);
  reordered.histogram("campaign.latency_us", 0.0, 100.0, 10).add(10.0);
  reordered.gauge("campaign.coverage").set(0.75);
  reordered.counter("campaign.runs").add(5);
  EXPECT_EQ(registry.to_jsonl(), reordered.to_jsonl());
  EXPECT_EQ(registry.render(), reordered.render());
  EXPECT_NE(registry.to_jsonl().find("\"metric\":\"campaign.runs\""), std::string::npos);
}

// --------------------------------------------------------------------------
// Provenance tracker
// --------------------------------------------------------------------------

TEST(Provenance, RecordsDagWithFirstContactDedupAndFirstDetection) {
  Kernel kernel;
  obs::ProvenanceTracker tracker(kernel);
  EXPECT_THROW(tracker.begin_fault(0, "bad", "inject"), vps::support::InvariantError);

  kernel.spawn("driver", [](obs::ProvenanceTracker& t) -> Coro {
    t.begin_fault(5, "mem_bit_flip#4", "inject:mem_bit_flip");
    co_await delay(Time::us(2));
    t.touch(5, "mem:ram");
    t.touch(5, "mem:ram");    // same site: first contact only
    t.touch(99, "mem:ram");   // unknown id (stale tag): ignored
    t.touch(5, "bus:bus0", "mem:ram");
    co_await delay(Time::us(3));
    t.detect(5, "hw.ecc:ram", "mem:ram");
    t.detect(5, "e2e:7");     // later detection: ignored
  }(tracker));
  kernel.run();

  ASSERT_EQ(tracker.faults().size(), 1u);
  const obs::FaultProvenance* fp = tracker.find(5);
  ASSERT_NE(fp, nullptr);
  ASSERT_EQ(fp->nodes.size(), 4u);
  EXPECT_EQ(fp->nodes[0].kind, obs::HopKind::kInjection);
  EXPECT_EQ(fp->nodes[1].site, "mem:ram");
  EXPECT_EQ(fp->nodes[2].site, "bus:bus0");
  EXPECT_EQ(fp->nodes[2].parent, 1);
  EXPECT_EQ(fp->nodes[2].depth, 2u);
  EXPECT_EQ(fp->nodes[3].kind, obs::HopKind::kDetection);
  EXPECT_TRUE(fp->detected());
  EXPECT_EQ(fp->containment_site(), "hw.ecc:ram");
  ASSERT_TRUE(fp->detection_latency().has_value());
  EXPECT_EQ(*fp->detection_latency(), Time::us(5));
  EXPECT_EQ(fp->depth(), 2u);
  EXPECT_EQ(fp->breadth(), 4u);
}

TEST(Provenance, AmbientDetectionAbandonAndLatentFaults) {
  Kernel kernel;
  obs::ProvenanceTracker tracker(kernel);
  tracker.begin_fault(1, "a#0", "inject:a");
  tracker.begin_fault(2, "b#1", "inject:b");
  tracker.begin_fault(3, "c#2", "inject:c");
  tracker.detect(2, "wdgm:w:e");
  tracker.abandon(3);  // skipped application: no trace survives
  EXPECT_EQ(tracker.find(3), nullptr);
  // Ambient detection hits every live undetected fault exactly once.
  tracker.detect_all("e2e:9");
  tracker.detect_all("e2e:9");
  ASSERT_NE(tracker.find(1), nullptr);
  EXPECT_EQ(tracker.find(1)->containment_site(), "e2e:9");
  EXPECT_EQ(tracker.find(1)->nodes.size(), 2u);
  EXPECT_EQ(tracker.find(2)->containment_site(), "wdgm:w:e");  // kept the first
  // A never-detected fault is latent: no latency, empty containment.
  tracker.begin_fault(7, "latent#6", "inject:z");
  EXPECT_FALSE(tracker.find(7)->detected());
  EXPECT_FALSE(tracker.find(7)->detection_latency().has_value());
  EXPECT_TRUE(tracker.find(7)->containment_site().empty());
}

TEST(Provenance, EncodeDecodeRoundTripsAndRejectsGarbage) {
  Kernel kernel;
  obs::ProvenanceTracker tracker(kernel);
  kernel.spawn("driver", [](obs::ProvenanceTracker& t) -> Coro {
    t.begin_fault(12, "can_frame_corruption#11", "inject:can_frame_corruption");
    co_await delay(Time::us(7));
    t.touch(12, "can:can0");
    t.touch(12, "mem:ram", "can:can0");
    co_await delay(Time::us(1));
    t.detect(12, "fw.link_check:airbag");
  }(tracker));
  kernel.run();

  const obs::FaultProvenance* fp = tracker.find(12);
  ASSERT_NE(fp, nullptr);
  const std::string text = fp->encode();
  const obs::FaultProvenance back = obs::FaultProvenance::decode(12, text);
  EXPECT_EQ(back.fault_id, fp->fault_id);
  EXPECT_EQ(back.label, fp->label);
  ASSERT_EQ(back.nodes.size(), fp->nodes.size());
  for (std::size_t i = 0; i < fp->nodes.size(); ++i) {
    EXPECT_EQ(back.nodes[i].site, fp->nodes[i].site);
    EXPECT_EQ(back.nodes[i].kind, fp->nodes[i].kind);
    EXPECT_EQ(back.nodes[i].at, fp->nodes[i].at);
    EXPECT_EQ(back.nodes[i].parent, fp->nodes[i].parent);
    EXPECT_EQ(back.nodes[i].depth, fp->nodes[i].depth);
  }
  EXPECT_EQ(back.encode(), text);  // stable re-encode
  EXPECT_THROW((void)obs::FaultProvenance::decode(1, "no-bar-delimiter"),
               vps::support::InvariantError);
  EXPECT_THROW((void)obs::FaultProvenance::decode(1, "label|site,X,5,0"),
               vps::support::InvariantError);
}

TEST(Provenance, ExportsAreByteIdenticalAcrossReruns) {
  const auto build = [] {
    Kernel kernel;
    obs::ProvenanceTracker tracker(kernel);
    kernel.spawn("driver", [](obs::ProvenanceTracker& t) -> Coro {
      t.begin_fault(3, "reg_flip#2", "inject:register_bit_flip");
      co_await delay(Time::ns(500));
      t.touch(3, "cpu:core.r5");
      t.begin_fault(4, "mem_flip#3", "inject:mem_bit_flip");
      co_await delay(Time::ns(500));
      t.detect(4, "hw.ecc:ram");
    }(tracker));
    kernel.run();
    return std::pair<std::string, std::string>(tracker.to_jsonl(), tracker.to_dot());
  };
  const auto [jsonl1, dot1] = build();
  const auto [jsonl2, dot2] = build();
  EXPECT_EQ(jsonl1, jsonl2);
  EXPECT_EQ(dot1, dot2);
  // Schema spot checks.
  EXPECT_NE(jsonl1.find("\"fault\":3"), std::string::npos);
  EXPECT_NE(jsonl1.find("\"detected\":false"), std::string::npos);
  EXPECT_NE(jsonl1.find("\"latency_ps\":"), std::string::npos);
  EXPECT_NE(dot1.find("digraph provenance"), std::string::npos);
  EXPECT_NE(dot1.find("cluster_f1"), std::string::npos);
}

TEST(Provenance, WatchSignalReportsPoisonedCommitsOnly) {
  Kernel kernel;
  Signal<std::uint32_t> sig(kernel, "squib", 0);
  obs::ProvenanceTracker tracker(kernel);
  tracker.watch_signal(sig, "sig:squib");
  tracker.begin_fault(9, "stuck#8", "inject:signal_stuck");
  kernel.spawn("driver", [](Signal<std::uint32_t>& s) -> Coro {
    s.write(1);  // clean commit: no provenance contact
    co_await delay(Time::us(1));
    s.force_poisoned(7, 9);
  }(sig));
  kernel.run();
  const obs::FaultProvenance* fp = tracker.find(9);
  ASSERT_NE(fp, nullptr);
  ASSERT_EQ(fp->nodes.size(), 2u);
  EXPECT_EQ(fp->nodes[1].site, "sig:squib");
  EXPECT_EQ(fp->nodes[1].at, Time::us(1));
}

// --------------------------------------------------------------------------
// Provenance through the CAPS scenario (end-to-end)
// --------------------------------------------------------------------------

TEST(Provenance, CapsScenarioTracesCanCorruptionToFirmwareLinkCheck) {
  vps::apps::CapsScenario scenario(
      vps::apps::CapsConfig{.duration = Time::ms(10), .provenance = true});
  // The golden run applies no fault: provenance must stay empty.
  const fault::Observation golden = scenario.run(nullptr, 42);
  EXPECT_TRUE(golden.provenance.empty());

  // Source-side CAN corruption (post-protection): the wire CRC is clean, so
  // only the firmware's complement/alive check can catch it.
  fault::FaultDescriptor corruption;
  corruption.id = 11;
  corruption.type = fault::FaultType::kCanFrameCorruption;
  corruption.persistence = fault::Persistence::kIntermittent;
  corruption.inject_at = Time::ms(3);
  const fault::Observation traced = scenario.run(&corruption, 42);
  ASSERT_EQ(traced.provenance.size(), 1u);
  const obs::FaultProvenance& fp = traced.provenance[0];
  EXPECT_EQ(fp.fault_id, fault::provenance_token(corruption));
  EXPECT_EQ(fp.label, "can_frame_corruption#11");
  EXPECT_EQ(fp.injected_at(), Time::ms(3));
  ASSERT_TRUE(fp.detected());
  const std::string site(fp.containment_site());
  EXPECT_TRUE(site == "fw.link_check:airbag" || site == "fw.alive_check:airbag") << site;
  // The corrupted frame crossed the CAN bus before the firmware saw it.
  bool touched_can = false;
  for (const auto& n : fp.nodes) touched_can |= n.site == "can:can0";
  EXPECT_TRUE(touched_can);
  // Detection latency is measured in simulated time, after injection.
  ASSERT_TRUE(fp.detection_latency().has_value());
  EXPECT_GT(*fp.detection_latency(), Time::zero());
  EXPECT_LT(*fp.detection_latency(), Time::ms(7));

  // Same fault, same seed: the propagation DAG is reproducible bit-for-bit.
  const fault::Observation again = scenario.run(&corruption, 42);
  ASSERT_EQ(again.provenance.size(), 1u);
  EXPECT_EQ(obs::provenance_to_json(again.provenance[0]), obs::provenance_to_json(fp));
}

}  // namespace

// Observability-layer tests: JSON escaping, JSONL schema + determinism,
// Chrome trace-event structure, kernel attribution, transaction probes on
// the TLM router and the CAN bus, wall-clock profiling scopes, campaign
// progress monitoring, and fault-injection spans.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "vps/can/bus.hpp"
#include "vps/can/frame.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/fault/injector.hpp"
#include "vps/hw/memory.hpp"
#include "vps/obs/campaign_monitor.hpp"
#include "vps/obs/kernel_tracer.hpp"
#include "vps/obs/probe.hpp"
#include "vps/obs/profile.hpp"
#include "vps/obs/trace.hpp"
#include "vps/sim/kernel.hpp"
#include "vps/sim/signal.hpp"
#include "vps/tlm/payload.hpp"
#include "vps/tlm/router.hpp"
#include "vps/tlm/sockets.hpp"

namespace {

using namespace vps;
using namespace vps::sim;
using obs::TraceArg;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(Json, Escape) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(obs::json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(obs::json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(obs::json_escape(std::string("nul\0byte", 8)), "nul\\u0000byte");
  EXPECT_EQ(obs::json_escape("\x01"), "\\u0001");
}

TEST(Jsonl, SchemaAndArgs) {
  const std::string path = "/tmp/vps_obs_jsonl_test.jsonl";
  {
    obs::Tracer tracer;
    obs::JsonlSink sink(path);
    tracer.add_sink(sink);
    EXPECT_TRUE(tracer.has_sinks());
    tracer.complete("tlm", "write@0x40", Time::ns(12), Time::ps(250), "bus0",
                    {TraceArg::str("response", "OK"), TraceArg::number("size", 4)});
    tracer.instant("can", "crc_error", Time::us(3));
    tracer.counter("campaign", "caps", Time::ps(7),
                   {TraceArg::number("runs_done", 7), TraceArg::number("coverage", 0.5)});
    tracer.flush();
    EXPECT_EQ(tracer.events(), 3u);
    EXPECT_EQ(sink.lines_written(), 3u);
  }
  const auto lines = lines_of(slurp(path));
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0],
            "{\"kind\":\"complete\",\"ts_ps\":12000,\"dur_ps\":250,\"cat\":\"tlm\","
            "\"name\":\"write@0x40\",\"track\":\"bus0\","
            "\"args\":{\"response\":\"OK\",\"size\":4}}");
  // Instants carry no dur_ps; empty track/args are omitted entirely.
  EXPECT_EQ(lines[1],
            "{\"kind\":\"instant\",\"ts_ps\":3000000,\"cat\":\"can\",\"name\":\"crc_error\"}");
  EXPECT_EQ(lines[2],
            "{\"kind\":\"counter\",\"ts_ps\":7,\"cat\":\"campaign\",\"name\":\"caps\","
            "\"args\":{\"runs_done\":7,\"coverage\":0.5}}");
  std::remove(path.c_str());
}

TEST(Chrome, DocumentStructureAndThreadMetadata) {
  const std::string path = "/tmp/vps_obs_chrome_test.trace.json";
  {
    obs::Tracer tracer;
    obs::ChromeTraceSink sink(path);
    tracer.add_sink(sink);
    tracer.complete("kernel", "worker", Time::us(1), Time::ns(10), "worker");
    tracer.complete("kernel", "worker", Time::us(2), Time::ns(10), "worker");
    tracer.instant("fault", "skipped:stuck#1", Time::us(3), "faults");
    tracer.counter("campaign", "caps", Time::ps(4), {TraceArg::number("runs_done", 4)});
    sink.close();
    EXPECT_EQ(sink.events_written(), 4u);
    // Records after close are ignored, not appended to a finalized document.
    tracer.instant("kernel", "late", Time::us(9));
    EXPECT_EQ(sink.events_written(), 4u);
  }
  const std::string content = slurp(path);
  EXPECT_EQ(content.rfind("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(content.substr(content.size() - 4), "\n]}\n");
  // One thread_name metadata record per distinct track, emitted on first use:
  // "worker", "faults", and the counter's category lane "campaign".
  EXPECT_EQ(count_occurrences(content, "\"name\":\"thread_name\""), 3u);
  EXPECT_EQ(count_occurrences(content, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(count_occurrences(content, "\"ph\":\"i\""), 1u);
  EXPECT_EQ(count_occurrences(content, "\"ph\":\"C\""), 1u);
  EXPECT_NE(content.find("\"ts\":1.000000"), std::string::npos);  // 1us, ps-exact
  EXPECT_NE(content.find("\"dur\":0.010000"), std::string::npos);    // 10ns
  EXPECT_EQ(content.find("late"), std::string::npos);
  std::remove(path.c_str());
}

/// Shared workload for the determinism test: two processes, one notifying
/// an event the other waits on.
void traced_run(const std::string& path) {
  Kernel kernel;
  Event tick(kernel, "tick");
  obs::Tracer tracer;
  obs::JsonlSink sink(path);
  tracer.add_sink(sink);
  obs::KernelTracer::Options opts;
  opts.trace_notifications = true;
  obs::KernelTracer kt(kernel, opts);
  kt.set_tracer(&tracer);
  kernel.spawn("producer", [](Event& tick) -> Coro {
    for (int i = 0; i < 5; ++i) {
      co_await delay(10_ns);
      tick.notify();
    }
  }(tick));
  kernel.spawn("consumer", [](Event& tick) -> Coro {
    for (int i = 0; i < 5; ++i) co_await tick;
  }(tick));
  kernel.run();
  tracer.flush();
}

TEST(Trace, ByteIdenticalAcrossRuns) {
  const std::string a = "/tmp/vps_obs_det_a.jsonl";
  const std::string b = "/tmp/vps_obs_det_b.jsonl";
  traced_run(a);
  traced_run(b);
  const std::string ca = slurp(a);
  EXPECT_FALSE(ca.empty());
  EXPECT_EQ(ca, slurp(b));  // sim-time-only timestamps: byte-identical
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(KernelTracer, AttributionMatchesKernelStats) {
  Kernel kernel;
  Event tick(kernel, "tick");
  obs::KernelTracer::Options opts;
  opts.trace_notifications = true;
  obs::KernelTracer kt(kernel, opts);
  kernel.spawn("busy", [](Event& tick) -> Coro {
    for (int i = 0; i < 7; ++i) {
      co_await delay(1_ns);
      tick.notify();
    }
  }(tick));
  kernel.spawn("idle", []() -> Coro { co_await delay(2_ns); }());
  kernel.run();

  EXPECT_EQ(kt.activations_seen(), kernel.stats().activations);
  EXPECT_EQ(kt.notifications_seen(), kernel.stats().notifications);
  EXPECT_EQ(kt.delta_cycles_seen(), kernel.stats().delta_cycles);

  const auto procs = kt.process_attribution();
  ASSERT_GE(procs.size(), 2u);
  EXPECT_EQ(procs[0].name, "busy");  // sorted by activations descending
  std::uint64_t sum = 0;
  for (const auto& p : procs) sum += p.activations;
  EXPECT_EQ(sum, kernel.stats().activations);

  const auto events = kt.event_attribution();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].name, "tick");
  EXPECT_EQ(events[0].notifications, 7u);

  const std::string report = kt.report();
  EXPECT_NE(report.find("busy"), std::string::npos);
  EXPECT_NE(report.find("tick"), std::string::npos);
}

TEST(KernelTracer, CoexistsWithOtherObserversAndDetachesOnDestruction) {
  Kernel kernel;
  auto first = std::make_unique<obs::KernelTracer>(kernel);
  EXPECT_TRUE(kernel.has_observer(*first));
  {
    // A second tracer attaches alongside — no eviction in either direction,
    // and destroying the *old* tracer must not detach the new one.
    obs::KernelTracer second(kernel);
    EXPECT_TRUE(kernel.has_observer(*first));
    EXPECT_TRUE(kernel.has_observer(second));
    EXPECT_EQ(kernel.observer_count(), 2u);
    first.reset();
    EXPECT_TRUE(kernel.has_observer(second));
    EXPECT_EQ(kernel.observer_count(), 1u);
  }
  EXPECT_EQ(kernel.observer_count(), 0u);  // last one out detaches
  kernel.spawn("p", []() -> Coro { co_await delay(1_ns); }());
  kernel.run();  // no observer: must not crash
  EXPECT_EQ(kernel.now(), 1_ns);
}

TEST(KernelTracer, CoexistsWithUserObserverAndRecordsBudgetTrips) {
  // A KernelTracer and a plain user observer attached to the same kernel:
  // both must see every callback, and a tripped watchdog budget shows up as
  // a budget_trip instant on the scheduler track.
  struct TripCounter final : sim::KernelObserver {
    int trips = 0;
    void on_budget_trip(const sim::RunStatus&) override { ++trips; }
  };
  Kernel kernel;
  Event e(kernel, "e");
  kernel.method("storm", [&] { e.notify(); }, {&e}, /*initialize=*/true);

  obs::Tracer tracer;
  obs::KernelTracer kt(kernel);
  kt.set_tracer(&tracer);
  TripCounter user;
  kernel.add_observer(user);

  const sim::RunStatus status =
      kernel.run_until_idle(sim::RunBudget{.max_deltas_without_advance = 20});
  EXPECT_EQ(status.reason, sim::StopReason::kLivelock);
  EXPECT_EQ(kt.budget_trips_seen(), 1u);
  EXPECT_EQ(user.trips, 1);
  EXPECT_EQ(kt.delta_cycles_seen(), kernel.stats().delta_cycles);
  EXPECT_GT(tracer.events(), 0u);
  kernel.remove_observer(user);
}

TEST(Probe, AggregatesLatencyAndEmitsSpans) {
  Kernel kernel;
  obs::Tracer tracer;
  obs::TransactionProbe probe(kernel, "bus0", 0.0, 100.0, 10);
  probe.set_tracer(&tracer);
  probe.record("tlm", "write@0x0", Time::zero(), Time::ns(10));
  probe.record("tlm", "read@0x4", Time::ns(50), Time::ns(30));
  probe.mark("tlm", "decode_error");
  EXPECT_EQ(probe.transactions(), 2u);
  EXPECT_EQ(probe.marks(), 1u);
  EXPECT_DOUBLE_EQ(probe.latency().mean(), 20.0);  // (10 + 30) / 2 ns
  EXPECT_EQ(probe.latency_histogram().total(), 2u);
  EXPECT_EQ(tracer.events(), 3u);
}

TEST(Probe, RouterEmitsTransactionSpansAndDecodeMarks) {
  Kernel kernel;
  obs::Tracer tracer;
  obs::JsonlSink sink("/tmp/vps_obs_router_test.jsonl");
  tracer.add_sink(sink);

  tlm::Router router("bus", Time::ns(20));
  hw::Memory mem("mem", 256, Time::ns(50));
  router.map(0x1000, mem.size(), mem.socket());
  obs::TransactionProbe probe(kernel, "bus");
  probe.set_tracer(&tracer);
  router.set_probe(&probe);

  tlm::InitiatorSocket port("port");
  port.bind(router.target_socket());

  tlm::GenericPayload write(tlm::Command::kWrite, 0x1000, 4);
  write.set_value_le(0xDEADBEEF);
  Time delay = Time::zero();
  port.b_transport(write, delay);
  EXPECT_EQ(write.response(), tlm::Response::kOk);
  EXPECT_EQ(delay, Time::ns(70));  // hop + memory latency

  tlm::GenericPayload read(tlm::Command::kRead, 0x1000, 4);
  delay = Time::zero();
  port.b_transport(read, delay);
  EXPECT_EQ(read.value_le(), 0xDEADBEEFu);

  tlm::GenericPayload stray(tlm::Command::kRead, 0x9999, 4);
  delay = Time::zero();
  port.b_transport(stray, delay);
  EXPECT_EQ(stray.response(), tlm::Response::kAddressError);

  EXPECT_EQ(probe.transactions(), 2u);
  EXPECT_EQ(probe.marks(), 1u);
  EXPECT_DOUBLE_EQ(probe.latency().mean(), 70.0);
  tracer.flush();
  const std::string content = slurp("/tmp/vps_obs_router_test.jsonl");
  EXPECT_NE(content.find("write@0x1000"), std::string::npos);
  EXPECT_NE(content.find("read@0x1000"), std::string::npos);
  EXPECT_NE(content.find("decode_error"), std::string::npos);
  EXPECT_NE(content.find("\"response\":\"OK\""), std::string::npos);
  std::remove("/tmp/vps_obs_router_test.jsonl");
}

class Recorder final : public can::CanNode {
 public:
  void on_frame(const can::CanFrame& frame) override { received.push_back(frame); }
  std::vector<can::CanFrame> received;
};

TEST(Probe, CanBusFrameSpans) {
  Kernel kernel;
  can::CanBus bus(kernel, "can0", 500000);
  Recorder a, b;
  bus.attach(a);
  bus.attach(b);
  obs::Tracer tracer;
  obs::TransactionProbe probe(kernel, "can0", 0.0, 500000.0, 10);
  probe.set_tracer(&tracer);
  bus.set_probe(&probe);

  const auto frame = can::CanFrame::make(0x123, std::vector<std::uint8_t>{1, 2});
  bus.submit(a, frame);
  kernel.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(probe.transactions(), 1u);
  // The span covers the whole frame on the wire.
  const Time wire = bus.bit_time() * can::frame_bit_count(frame);
  EXPECT_DOUBLE_EQ(probe.latency().mean(),
                   static_cast<double>(wire.picoseconds()) / 1000.0);
  EXPECT_EQ(tracer.events(), 1u);
}

TEST(Profiler, ScopesAggregateByName) {
  obs::Profiler::instance().reset();
  for (int i = 0; i < 3; ++i) {
    VPS_PROFILE_SCOPE("obs_test.scope");
    volatile int sink = 0;
    for (int j = 0; j < 1000; ++j) sink += j;
  }
  const auto entries = obs::Profiler::instance().entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "obs_test.scope");
  EXPECT_EQ(entries[0].calls, 3u);
  EXPECT_GT(entries[0].total_ns, 0u);
  EXPECT_GE(entries[0].total_ns, entries[0].max_ns);
  EXPECT_NE(obs::Profiler::instance().report().find("obs_test.scope"), std::string::npos);
  obs::Profiler::instance().reset();
  EXPECT_TRUE(obs::Profiler::instance().entries().empty());
}

/// Minimal deterministic scenario: no kernel, instant runs. A fault flips
/// the output signature so classification exercises real outcomes.
class ToyScenario final : public fault::Scenario {
 public:
  [[nodiscard]] std::string name() const override { return "toy"; }
  [[nodiscard]] sim::Time duration() const override { return Time::ms(1); }
  [[nodiscard]] std::vector<fault::FaultType> fault_types() const override {
    return {fault::FaultType::kSensorOffset, fault::FaultType::kTaskKill};
  }
  [[nodiscard]] fault::Observation run(const fault::FaultDescriptor* fault,
                                       std::uint64_t seed) override {
    fault::Observation obs;
    obs.completed = true;
    obs.output_signature = static_cast<std::uint32_t>(seed);
    if (fault != nullptr && fault->type == fault::FaultType::kTaskKill) {
      obs.output_signature ^= 1;  // silent corruption
    }
    return obs;
  }
};

TEST(Monitor, CampaignReportsProgressPerRunAndCompletionOnce) {
  ToyScenario scenario;
  fault::CampaignConfig cfg;
  cfg.runs = 10;
  cfg.seed = 42;
  cfg.strategy = fault::Strategy::kMonteCarlo;

  obs::Tracer tracer;
  obs::ProgressReporter::Options opts;
  opts.print = false;
  opts.tracer = &tracer;
  obs::ProgressReporter reporter(opts);

  fault::Campaign campaign(scenario, cfg);
  campaign.set_monitor(&reporter);
  const auto result = campaign.run();
  EXPECT_EQ(result.runs_executed, 10u);
  EXPECT_EQ(reporter.progress_reports(), 10u);   // sequential: one per run
  EXPECT_EQ(reporter.complete_reports(), 1u);
  EXPECT_EQ(tracer.events(), 10u);               // one "campaign" counter per run
}

TEST(Monitor, ParallelCampaignReportsBatchesAndCompletion) {
  fault::CampaignConfig cfg;
  cfg.runs = 20;
  cfg.seed = 42;
  cfg.strategy = fault::Strategy::kMonteCarlo;
  cfg.workers = 2;
  cfg.batch_size = 8;

  obs::ProgressReporter::Options opts;
  opts.print = false;
  obs::ProgressReporter reporter(opts);

  fault::ParallelCampaign campaign([] { return std::make_unique<ToyScenario>(); }, cfg);
  campaign.set_monitor(&reporter);
  const auto result = campaign.run();
  EXPECT_EQ(result.runs_executed, 20u);
  EXPECT_EQ(reporter.progress_reports(), 3u);  // ceil(20 / 8) batch barriers
  EXPECT_EQ(reporter.complete_reports(), 1u);
}

TEST(Injector, EmitsSpansForAppliedAndInstantsForSkipped) {
  Kernel kernel;
  obs::Tracer tracer;
  obs::JsonlSink sink("/tmp/vps_obs_injector_test.jsonl");
  tracer.add_sink(sink);

  double raw = 1.0;
  fault::AnalogChannel channel([&raw] { return raw; });
  fault::InjectorHub hub(kernel);
  hub.bind_sensor(channel);
  hub.set_tracer(&tracer);

  fault::FaultDescriptor offset;
  offset.id = 1;
  offset.type = fault::FaultType::kSensorOffset;
  offset.persistence = fault::Persistence::kPermanent;
  offset.inject_at = Time::us(10);
  offset.magnitude = 0.5;
  hub.schedule(offset);

  fault::FaultDescriptor unbound;  // no platform bound: must be skipped
  unbound.id = 2;
  unbound.type = fault::FaultType::kRegisterBitFlip;
  unbound.inject_at = Time::us(20);
  hub.schedule(unbound);

  kernel.run();
  EXPECT_DOUBLE_EQ(channel.read(), 1.5);
  EXPECT_EQ(hub.applied_count(), 1u);
  EXPECT_EQ(hub.skipped_count(), 1u);
  tracer.flush();
  const std::string content = slurp("/tmp/vps_obs_injector_test.jsonl");
  EXPECT_NE(content.find("\"cat\":\"fault\""), std::string::npos);
  EXPECT_NE(content.find("sensor_offset#1"), std::string::npos);
  EXPECT_NE(content.find("skipped:register_bit_flip#2"), std::string::npos);
  EXPECT_NE(content.find("\"track\":\"faults\""), std::string::npos);
  std::remove("/tmp/vps_obs_injector_test.jsonl");
}

}  // namespace

// Run-lifecycle tracing (obs/dist_trace + protocol v3): writer/parser round
// trips, the min-delay clock-offset estimator, chain summaries and
// incomplete-chain detection, merge determinism, the optional v3 wire
// fields (absent = zero, v2-shaped payloads still decode), locale-safe
// double formatting, and the headline pin — a traced campaign through the
// server folds bitwise identical to an untraced one and to the solo
// in-process run.

#include <gtest/gtest.h>

#include <cerrno>
#include <clocale>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "vps/apps/caps.hpp"
#include "vps/apps/registry.hpp"
#include "vps/dist/coordinator.hpp"
#include "vps/dist/protocol.hpp"
#include "vps/dist/server.hpp"
#include "vps/dist/worker.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/fault/checkpoint.hpp"
#include "vps/fault/codec.hpp"
#include "vps/obs/dist_trace.hpp"
#include "vps/obs/trace.hpp"

namespace {

using namespace vps;
using vps::obs::DistTrace;
using vps::obs::DistTraceWriter;

constexpr const char* kHost = "127.0.0.1";

// Fresh per-test trace directory under the working dir (ctest runs each
// binary in its own process, so a name keyed on the test is collision-free).
std::string fresh_dir(const std::string& name) {
  const std::string dir = "dist_trace_test_" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directory(dir);
  return dir;
}

TEST(SaturatingElapsed, ClampsReversedTimestamps) {
  static_assert(obs::saturating_elapsed_ns(100, 350) == 250);
  static_assert(obs::saturating_elapsed_ns(350, 100) == 0);  // requeue reset begin
  static_assert(obs::saturating_elapsed_ns(7, 7) == 0);
  EXPECT_EQ(obs::saturating_elapsed_ns(0, UINT64_MAX), UINT64_MAX);
}

TEST(DistTraceWriter, NullWhenDisabled) {
  EXPECT_EQ(DistTraceWriter::open("", "server"), nullptr);
}

TEST(DistTraceWriter, RoundTripsSpansEventsAndClockrefs) {
  const std::string dir = fresh_dir("roundtrip");
  {
    auto w = DistTraceWriter::open(dir, "server");
    ASSERT_NE(w, nullptr);
    w->span("admission", 0xabcdef, 3, 1000, 250);
    w->span("stream", 0xabcdef, 3, 2000, 0);
    w->event("requeue", 0xabcdef, 3, 1500, {{"pid", 42}, {"requeues", 1}});
    w->clockref("worker", 42, 0, 5000, 4000);
  }
  const std::vector<std::string> files = obs::list_trace_files(dir);
  ASSERT_EQ(files.size(), 1u);
  const DistTrace trace = obs::load_dist_trace(files);
  ASSERT_EQ(trace.sources.size(), 1u);
  const obs::DistTraceSource& src = trace.sources[0];
  EXPECT_EQ(src.tier, "server");
  EXPECT_EQ(src.pid, static_cast<std::uint64_t>(::getpid()));
  ASSERT_EQ(src.events.size(), 3u);
  EXPECT_TRUE(src.events[0].is_span);
  EXPECT_EQ(src.events[0].name, "admission");
  EXPECT_EQ(src.events[0].tok, 0xabcdefu);
  EXPECT_EQ(src.events[0].run, 3u);
  EXPECT_EQ(src.events[0].ts_ns, 1000u);
  EXPECT_EQ(src.events[0].dur_ns, 250u);
  EXPECT_TRUE(src.events[1].is_span);
  EXPECT_EQ(src.events[1].dur_ns, 0u);
  EXPECT_FALSE(src.events[2].is_span);
  EXPECT_EQ(src.events[2].name, "requeue");
  ASSERT_EQ(src.events[2].extra.size(), 2u);
  EXPECT_EQ(src.events[2].extra[0].first, "pid");
  EXPECT_EQ(src.events[2].extra[0].second, 42u);
  ASSERT_EQ(src.clockrefs.size(), 1u);
  EXPECT_EQ(src.clockrefs[0].peer_tier, "worker");
  EXPECT_EQ(src.clockrefs[0].peer_pid, 42u);
  EXPECT_EQ(src.clockrefs[0].local_ns, 5000u);
  EXPECT_EQ(src.clockrefs[0].remote_ns, 4000u);
}

TEST(DistTraceWriter, SkipsTornTrailingLine) {
  const std::string dir = fresh_dir("torn");
  std::string path;
  {
    auto w = DistTraceWriter::open(dir, "worker");
    ASSERT_NE(w, nullptr);
    w->span("replay", 9, 0, 100, 50);
    path = w->path();
  }
  // Simulate a SIGKILL mid-write: a torn, unterminated JSON fragment.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"kind\":\"span\",\"phase\":\"rep", f);
  std::fclose(f);
  const DistTrace trace = obs::load_dist_trace({path});
  ASSERT_EQ(trace.sources.size(), 1u);
  EXPECT_EQ(trace.sources[0].events.size(), 1u);  // torn line skipped, not fatal
}

TEST(ClockAlignment, OffsetIsMinOverSamples) {
  const std::string dir = fresh_dir("offset");
  const std::uint64_t self = static_cast<std::uint64_t>(::getpid());
  {
    auto server = DistTraceWriter::open(dir, "server");
    auto worker = DistTraceWriter::open(dir, "worker");
    ASSERT_NE(server, nullptr);
    ASSERT_NE(worker, nullptr);
    worker->span("replay", 1, 0, 10'000, 100);
    // Two samples about this worker pid: offsets 600 and 650 — the smaller
    // one saw less network delay, so it is the tighter (correct) estimate.
    server->clockref("worker", self, 0, 1'000, 400);
    server->clockref("worker", self, 0, 2'000, 1'350);
  }
  const DistTrace trace = obs::load_dist_trace(obs::list_trace_files(dir));
  ASSERT_EQ(trace.sources.size(), 2u);
  const auto& srv = trace.sources[0];  // sorted by tier: server < worker
  const auto& wrk = trace.sources[1];
  ASSERT_EQ(srv.tier, "server");
  ASSERT_EQ(wrk.tier, "worker");
  EXPECT_TRUE(srv.aligned);
  EXPECT_EQ(srv.offset_ns, 0);  // the server is the reference clock
  EXPECT_TRUE(wrk.aligned);
  EXPECT_EQ(wrk.offset_ns, 600);
}

TEST(ClockAlignment, SourceWithoutSamplesStaysUnaligned) {
  const std::string dir = fresh_dir("unaligned");
  {
    auto server = DistTraceWriter::open(dir, "server");
    auto client = DistTraceWriter::open(dir, "client", 0x77);
    ASSERT_NE(server, nullptr);
    ASSERT_NE(client, nullptr);
    client->span("submit", 0x77, 0, 5'000, 0);
    server->span("admission", 0x77, 0, 6'000, 10);
  }
  const DistTrace trace = obs::load_dist_trace(obs::list_trace_files(dir));
  ASSERT_EQ(trace.sources.size(), 2u);
  EXPECT_FALSE(trace.sources[0].aligned);  // client: no clockref about it
  EXPECT_EQ(trace.sources[0].offset_ns, 0);
  EXPECT_TRUE(trace.sources[1].aligned);  // server: reference
}

TEST(Chains, SummaryAndIncompleteDetection) {
  const std::string dir = fresh_dir("chains");
  {
    auto w = DistTraceWriter::open(dir, "server");
    ASSERT_NE(w, nullptr);
    // Run 0: all six hops. Run 1: replay and fold lost.
    for (const char* phase : obs::kChainPhases) w->span(phase, 5, 0, 100, 0);
    w->span("submit", 5, 1, 200, 0);
    w->span("admission", 5, 1, 210, 5);
    w->span("dispatch", 5, 1, 220, 5);
    w->span("stream", 5, 1, 230, 0);
    // Events never count as chain hops.
    w->event("requeue", 5, 1, 240);
  }
  const DistTrace trace = obs::load_dist_trace(obs::list_trace_files(dir));
  const std::string summary = obs::chains_summary(trace);
  EXPECT_NE(summary.find("run=0"), std::string::npos);
  EXPECT_NE(summary.find("complete=yes"), std::string::npos);
  EXPECT_NE(summary.find("complete=no"), std::string::npos);
  const std::vector<std::string> missing = obs::incomplete_chains(trace);
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_NE(missing[0].find("run=1"), std::string::npos);
  EXPECT_NE(missing[0].find("replay"), std::string::npos);
  EXPECT_NE(missing[0].find("fold"), std::string::npos);
  EXPECT_EQ(missing[0].find("submit"), std::string::npos);
}

TEST(Chains, MergeIsDeterministic) {
  const std::string dir = fresh_dir("merge");
  {
    auto server = DistTraceWriter::open(dir, "server");
    auto worker = DistTraceWriter::open(dir, "worker");
    ASSERT_NE(server, nullptr);
    ASSERT_NE(worker, nullptr);
    server->clockref("worker", static_cast<std::uint64_t>(::getpid()), 0, 1'000, 900);
    server->span("admission", 1, 0, 1'000, 100);
    worker->span("replay", 1, 0, 1'050, 40);
    server->event("chaos", 0, 0, 1'200, {{"frames_dropped", 2}});
  }
  const std::vector<std::string> files = obs::list_trace_files(dir);
  const std::string a = obs::merge_to_chrome(obs::load_dist_trace(files));
  const std::string b = obs::merge_to_chrome(obs::load_dist_trace(files));
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(a.find("admission"), std::string::npos);
  EXPECT_NE(a.find("replay"), std::string::npos);
}

TEST(ProtocolV3, OptionalFieldsRoundTripAndDefaultToZero) {
  // ASSIGN: ts_ns rides along when set, is absent from the bytes when not.
  dist::AssignMsg assign;
  assign.job = 4;
  assign.run = 9;
  assign.ts_ns = 123'456'789;
  const dist::AssignMsg assign2 = dist::decode_assign(dist::encode_assign(assign));
  EXPECT_EQ(assign2.ts_ns, 123'456'789u);
  assign.ts_ns = 0;
  const std::string v2_shaped = dist::encode_assign(assign);
  EXPECT_EQ(v2_shaped.find("ts_ns"), std::string::npos);
  EXPECT_EQ(dist::decode_assign(v2_shaped).ts_ns, 0u);

  // RESULT: replay_ns from the worker, queue_ns spliced by the server.
  dist::ResultMsg result;
  result.job = 4;
  result.run = 9;
  result.replay_ns = 5'000;
  result.queue_ns = 7'000;
  const dist::ResultMsg result2 = dist::decode_result(dist::encode_result(result));
  EXPECT_EQ(result2.replay_ns, 5'000u);
  EXPECT_EQ(result2.queue_ns, 7'000u);
  result.replay_ns = 0;
  result.queue_ns = 0;
  const std::string result_v2 = dist::encode_result(result);
  EXPECT_EQ(result_v2.find("replay_ns"), std::string::npos);
  EXPECT_EQ(result_v2.find("queue_ns"), std::string::npos);
  EXPECT_EQ(dist::decode_result(result_v2).replay_ns, 0u);

  // REGISTER and SUBMIT: the handshake clock samples.
  dist::RegisterMsg reg;
  reg.pid = 11;
  reg.ts_ns = 42;
  EXPECT_EQ(dist::decode_register(dist::encode_register(reg)).ts_ns, 42u);
  reg.ts_ns = 0;
  EXPECT_EQ(dist::encode_register(reg).find("ts_ns"), std::string::npos);

  dist::SubmitMsg submit;
  submit.tenant = "t";
  submit.scenario_spec = "caps";
  submit.scenario = "caps";
  submit.ts_ns = 99;
  EXPECT_EQ(dist::decode_submit(dist::encode_submit(submit)).ts_ns, 99u);

  // SETUP: the correlation token echo.
  dist::SetupMsg setup;
  setup.scenario_spec = "caps";
  setup.job_token = 0xdeadbeefcafe;
  EXPECT_EQ(dist::decode_setup(dist::encode_setup(setup)).job_token, 0xdeadbeefcafeu);
  setup.job_token = 0;
  EXPECT_EQ(dist::encode_setup(setup).find("job_token"), std::string::npos);
}

TEST(LocaleSafety, DoublesSpellTheRadixDot) {
  // The "C"-locale invariants hold everywhere; the comma-locale half below
  // additionally needs a localized libc and skips where none is installed.
  EXPECT_NE(obs::format_double(0.25, 6).find('.'), std::string::npos);
  {
    std::string line = "{\"kind\":\"t\"";
    fault::codec::append_double(line, "x", 0.1);
    line += "}";
    EXPECT_EQ(fault::codec::LineParser(line).hexdouble("x"), 0.1);
  }

  const char* saved = std::setlocale(LC_NUMERIC, nullptr);
  const std::string restore = saved != nullptr ? saved : "C";
  const char* comma = nullptr;
  for (const char* cand : {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8", "fr_FR"}) {
    if (std::setlocale(LC_NUMERIC, cand) != nullptr &&
        std::strcmp(std::localeconv()->decimal_point, ".") != 0) {
      comma = cand;
      break;
    }
  }
  if (comma == nullptr) {
    std::setlocale(LC_NUMERIC, restore.c_str());
    GTEST_SKIP() << "no comma-decimal locale installed";
  }

  // Scrape/JSONL formatting must not leak the locale's comma.
  const std::string text = obs::format_double(3.141592653589793, 6);
  EXPECT_NE(text.find('.'), std::string::npos) << text;
  EXPECT_EQ(text.find(','), std::string::npos) << text;

  // Hexfloat doubles written under "C" must read back bitwise under a comma
  // locale and vice versa (append_double normalizes, hexdouble localizes).
  for (const double value : {0.1, 1.5, -2.75e-3, 3.141592653589793}) {
    std::string line = "{\"kind\":\"t\"";
    fault::codec::append_double(line, "x", value);
    line += "}";
    EXPECT_NE(line.find('.'), std::string::npos) << line;
    EXPECT_EQ(line.find(','), std::string::npos) << line;
    const double back = fault::codec::LineParser(line).hexdouble("x");
    std::uint64_t want = 0;
    std::uint64_t got = 0;
    std::memcpy(&want, &value, sizeof want);
    std::memcpy(&got, &back, sizeof got);
    EXPECT_EQ(got, want) << line;
  }
  std::setlocale(LC_NUMERIC, restore.c_str());
}

// --- the bitwise pin: tracing is pure observation ---------------------------

pid_t fork_pool_worker(std::uint16_t port, const std::string& trace_dir) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  for (int fd = 3; fd < 1024; ++fd) ::close(fd);
  dist::PoolConfig pc;
  pc.host = kHost;
  pc.port = port;
  pc.backoff_initial_ms = 20;
  pc.backoff_max_ms = 150;
  pc.max_reconnects = 40;
  pc.idle_timeout_ms = 2000;
  pc.trace_dir = trace_dir;
  const int code = dist::serve_pool(pc, [](const dist::SetupMsg& setup) {
    return vps::apps::make_scenario(setup.scenario_spec);
  });
  ::_exit(code);
}

void reap(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
}

std::string folded_jsonl(const std::string& scenario, const fault::CampaignConfig& cfg,
                         const fault::Observation& golden, const fault::CampaignResult& result) {
  fault::CampaignCheckpoint cp;
  cp.driver = "parallel_campaign";
  cp.scenario = scenario;
  cp.config = cfg;
  cp.golden = golden;
  cp.records = result.records;
  return to_jsonl(cp);
}

TEST(TracedService, FoldBitwiseIdenticalTracedOrNot) {
  const std::string dir = fresh_dir("e2e");
  fault::CampaignConfig cfg;
  cfg.runs = 24;
  cfg.seed = 7;
  cfg.batch_size = 8;
  const fault::ScenarioFactory factory = [] {
    return std::make_unique<apps::CapsScenario>(apps::CapsConfig{.crash = true});
  };
  const fault::CampaignResult solo = fault::ParallelCampaign(factory, cfg).run();

  // Untraced server + pool on one port, traced on another. Workers are
  // forked before either serve thread starts (fork + threads don't mix).
  dist::ServerConfig plain_sc;
  dist::ServerConfig traced_sc;
  traced_sc.trace_dir = dir;
  dist::CampaignServer plain_server(plain_sc);
  dist::CampaignServer traced_server(traced_sc);
  std::vector<pid_t> pool;
  for (int i = 0; i < 2; ++i) pool.push_back(fork_pool_worker(plain_server.port(), ""));
  for (int i = 0; i < 2; ++i) pool.push_back(fork_pool_worker(traced_server.port(), dir));
  plain_server.start();
  traced_server.start();

  const std::string scenario = factory()->name();
  fault::Observation dist_golden;  // identical across tenants (same factory)
  const auto run_tenant = [&](std::uint16_t port, const char* tenant,
                              const std::string& trace_dir) {
    dist::DistConfig dc;
    dc.campaign = cfg;
    dc.server_host = kHost;
    dc.server_port = port;
    dc.tenant = tenant;
    dc.scenario_spec = "caps:crash";
    dc.trace_dir = trace_dir;
    dist::DistCampaign campaign(factory, dc);
    const fault::CampaignResult result = campaign.run();
    dist_golden = campaign.golden();
    return folded_jsonl(scenario, cfg, campaign.golden(), result);
  };
  const std::string untraced = run_tenant(plain_server.port(), "plain", "");
  const std::string traced = run_tenant(traced_server.port(), "traced", dir);

  plain_server.stop();
  traced_server.stop();
  for (pid_t pid : pool) reap(pid);

  const std::string golden = folded_jsonl(scenario, cfg, dist_golden, solo);
  EXPECT_EQ(untraced, traced);  // tracing moved no bit
  EXPECT_EQ(traced, golden);    // and the service matches the solo fold

  // Every tier left a file, every run a complete six-hop chain.
  const std::vector<std::string> files = obs::list_trace_files(dir);
  bool has_server = false;
  bool has_worker = false;
  bool has_client = false;
  for (const std::string& f : files) {
    has_server |= f.find("trace.server.") != std::string::npos;
    has_worker |= f.find("trace.worker.") != std::string::npos;
    has_client |= f.find("trace.client.") != std::string::npos;
  }
  EXPECT_TRUE(has_server);
  EXPECT_TRUE(has_worker);
  EXPECT_TRUE(has_client);
  const DistTrace trace = obs::load_dist_trace(files);
  const std::vector<std::string> missing = obs::incomplete_chains(trace);
  EXPECT_TRUE(missing.empty());
  for (const std::string& line : missing) ADD_FAILURE() << "incomplete chain: " << line;
  // And the merged timeline is well-formed + deterministic.
  const std::string merged = obs::merge_to_chrome(trace);
  EXPECT_EQ(merged, obs::merge_to_chrome(obs::load_dist_trace(files)));
  EXPECT_NE(merged.find("\"traceEvents\""), std::string::npos);
}

}  // namespace

// End-to-end integration of the paper's whole vision in one test file:
//   Fig. 2: vehicle mission profile -> component refinement -> fault rates
//           -> stressor spec
//   Fig. 3: stressor-driven error-effect campaign on the CAPS VP
//   Analyses: weak spots, fault-tree synthesis, FMEDA metrics
// Each stage's output feeds the next; the assertions pin the cross-stage
// invariants rather than isolated unit behaviour.

#include <gtest/gtest.h>

#include <map>

#include "vps/apps/caps.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/fault/stressor.hpp"
#include "vps/mp/derivation.hpp"
#include "vps/mp/mission_profile.hpp"
#include "vps/safety/fmeda.hpp"
#include "vps/safety/ft_synthesis.hpp"

namespace {

using namespace vps;

TEST(Refinement, ComponentContextsScaleStresses) {
  const auto vehicle = mp::reference_car_profile();
  const auto engine = mp::refine_for_component(vehicle, mp::engine_bay_context("engine_ecu"));
  const auto cabin = mp::refine_for_component(vehicle, mp::cabin_context("body_ecu"));
  const auto wheel = mp::refine_for_component(vehicle, mp::wheel_mounted_context("abs_sensor"));

  EXPECT_EQ(engine.name(), "reference_car/engine_ecu");
  EXPECT_EQ(engine.states().size(), vehicle.states().size());
  // Engine bay: hotter and shakier than the vehicle envelope.
  EXPECT_EQ(engine.state("highway").temp_max_c, vehicle.state("highway").temp_max_c + 25.0);
  EXPECT_GT(engine.state("highway").vibration_grms, vehicle.state("highway").vibration_grms);
  // Cabin: damped below the vehicle-level vibration.
  EXPECT_LT(cabin.state("highway").vibration_grms, vehicle.state("highway").vibration_grms);
  // Wheel-mounted: the harshest vibration environment of the three.
  EXPECT_GT(wheel.state("highway").vibration_grms, engine.state("highway").vibration_grms);
  // Functional loads survive the refinement.
  EXPECT_EQ(wheel.loads().size(), vehicle.loads().size());
}

TEST(Refinement, RatesFollowTheRefinedStresses) {
  const auto vehicle = mp::reference_car_profile();
  const auto engine = mp::refine_for_component(vehicle, mp::engine_bay_context("engine_ecu"));
  const auto cabin = mp::refine_for_component(vehicle, mp::cabin_context("body_ecu"));
  const auto vehicle_rates = mp::derive_fault_rates(vehicle);
  const auto engine_rates = mp::derive_fault_rates(engine);
  const auto cabin_rates = mp::derive_fault_rates(cabin);

  // Vibration-driven classes: wheel >> engine > vehicle > cabin.
  const auto conn = mp::FaultClass::kConnectorOpen;
  EXPECT_GT(engine_rates.mission_average_fit(conn), vehicle_rates.mission_average_fit(conn));
  EXPECT_LT(cabin_rates.mission_average_fit(conn), vehicle_rates.mission_average_fit(conn));
  // Thermal classes rise in the engine bay.
  const auto drift = mp::FaultClass::kSensorDrift;
  EXPECT_GT(engine_rates.mission_average_fit(drift), vehicle_rates.mission_average_fit(drift));
}

TEST(Pipeline, MissionProfileToCampaignToAnalyses) {
  // --- Fig. 2: derive the stressor for the refined component profile -----
  const auto vehicle = mp::reference_car_profile();
  const auto component = mp::refine_for_component(vehicle, mp::cabin_context("airbag_ecu"));
  const auto rates = mp::derive_fault_rates(component);
  const auto spec = mp::make_stressor_spec(rates, "city", 1e11);
  EXPECT_GT(spec.total_rate(), 0.0);

  // --- Fig. 3: error-effect campaign on the CAPS crash scenario ----------
  apps::CapsScenario scenario(
      apps::CapsConfig{.crash = true, .duration = sim::Time::ms(12)});
  fault::CampaignConfig cfg;
  cfg.runs = 60;
  cfg.seed = 31;
  cfg.strategy = fault::Strategy::kGuided;
  fault::Campaign campaign(scenario, cfg);
  const auto result = campaign.run();
  EXPECT_EQ(result.runs_executed, 60u);
  EXPECT_GT(result.final_coverage, 0.2);

  // --- weak spots ----------------------------------------------------------
  const auto spots = result.weak_spots();
  ASSERT_FALSE(spots.empty());
  // Ranked by danger rate, descending.
  for (std::size_t i = 1; i < spots.size(); ++i) {
    EXPECT_GE(spots[i - 1].danger_rate(), spots[i].danger_rate());
  }
  const auto table = result.render_weak_spots();
  EXPECT_NE(table.find("danger rate"), std::string::npos);

  // --- fault-tree synthesis -------------------------------------------------
  std::vector<safety::HazardContribution> contributions;
  for (const auto& s : spots) {
    safety::HazardContribution c;
    c.fault_name = fault::to_string(s.type);
    c.observed_injections = s.injected;
    c.observed_hazards = s.dangerous;
    c.conditional_hazard = s.danger_rate();
    c.occurrence_probability = 1e-4;
    contributions.push_back(c);
  }
  const auto synth = safety::synthesize_fault_tree("failed_deployment", contributions);
  const double p_top = synth.tree.top_probability_exact();
  if (result.count(fault::Outcome::kHazard) > 0) {
    EXPECT_GT(p_top, 0.0);
    EXPECT_LT(p_top, 1e-3);
    // The top probability is bounded by the rare-event sum of contributors.
    EXPECT_LE(p_top, synth.tree.top_probability_rare_event() + 1e-15);
  }

  // --- FMEDA from measured DC ------------------------------------------------
  safety::Fmeda fmeda;
  for (const auto& s : spots) {
    // DC per population: share of non-masked outcomes the system detected.
    std::uint64_t detected = 0, relevant = 0;
    for (const auto& rec : result.records) {
      if (rec.fault.type != s.type) continue;
      const bool det = rec.outcome == fault::Outcome::kDetectedCorrected ||
                       rec.outcome == fault::Outcome::kDetectedUncorrected;
      detected += det;
      relevant += det || rec.outcome == fault::Outcome::kHazard ||
                  rec.outcome == fault::Outcome::kSilentDataCorruption;
    }
    if (relevant == 0) continue;
    fmeda.add_row({"caps", fault::to_string(s.type), 20.0, true,
                   static_cast<double>(detected) / static_cast<double>(relevant), 0.9});
  }
  ASSERT_GT(fmeda.row_count(), 0u);
  const auto metrics = fmeda.metrics();
  EXPECT_GT(metrics.safety_related_fit, 0.0);
  EXPECT_GE(metrics.spfm, 0.0);
  EXPECT_LE(metrics.spfm, 1.0);
}

TEST(Pipeline, StressorScheduleDrivesLiveInjectors) {
  // Arm a stressor against a live kernel and verify faults actually land.
  sim::Kernel kernel;
  fault::InjectorHub hub(kernel);
  fault::AnalogChannel sensor([] { return 1.0; });
  hub.bind_sensor(sensor);

  mp::StressorSpec spec;
  spec.state = "test";
  spec.rate_per_second[static_cast<std::size_t>(mp::FaultClass::kSensorDrift)] = 200.0;
  fault::Stressor stressor(hub, spec, 3);
  const auto scheduled = stressor.arm(sim::Time::sec(1));
  EXPECT_GT(scheduled, 100u);
  kernel.run(sim::Time::sec(2));
  EXPECT_EQ(hub.applied_count() + hub.skipped_count(), scheduled);
  EXPECT_GT(hub.applied_count(), 100u);
}

}  // namespace

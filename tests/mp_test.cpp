// Mission-profile tests: parser (happy path + every syntax error), model
// validation invariants, acceleration-model physics properties, fault-rate
// derivation monotonicity, and stressor-spec scaling.

#include <gtest/gtest.h>

#include "vps/mp/derivation.hpp"
#include "vps/mp/mission_profile.hpp"
#include "vps/support/ensure.hpp"

namespace {

using namespace vps::mp;

TEST(Parser, ParsesReferenceProfile) {
  const MissionProfile p = reference_car_profile();
  EXPECT_EQ(p.name(), "reference_car");
  EXPECT_EQ(p.lifetime_hours(), 8000.0);
  ASSERT_EQ(p.states().size(), 4u);
  EXPECT_EQ(p.state("city").vibration_grms, 2.0);
  EXPECT_EQ(p.state("cranking").voltage_v, 6.5);
  EXPECT_EQ(p.state("parked").fraction, 0.915);
  ASSERT_EQ(p.loads().size(), 3u);
  EXPECT_EQ(p.loads()[0].name, "steering_against_curb");
  EXPECT_EQ(p.loads()[0].state, "city");
}

TEST(Parser, CommentsAndBlankLines) {
  const auto p = parse_mission_profile(R"(
    # a comment
    profile x

    state only fraction 1.0 temp 0 40 vibration 1.0 voltage 12  # trailing comment
  )");
  EXPECT_EQ(p.states().size(), 1u);
}

TEST(Parser, RejectsMalformedInput) {
  // unknown statement
  EXPECT_THROW((void)parse_mission_profile("bogus 1"), std::invalid_argument);
  // bad state arity
  EXPECT_THROW((void)parse_mission_profile("state x fraction 1.0"), std::invalid_argument);
  // non-numeric field
  EXPECT_THROW((void)parse_mission_profile(
                   "state x fraction abc temp 0 1 vibration 1 voltage 12"),
               std::invalid_argument);
  // no states at all
  EXPECT_THROW((void)parse_mission_profile("profile y"), std::invalid_argument);
  // error message carries the line number
  try {
    (void)parse_mission_profile("profile y\nwat 3\n");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Validation, FractionsMustSumToOne) {
  EXPECT_THROW((void)parse_mission_profile(R"(
    state a fraction 0.5 temp 0 40 vibration 1 voltage 12
    state b fraction 0.3 temp 0 40 vibration 1 voltage 12
  )"),
               std::invalid_argument);
}

TEST(Validation, RejectsDuplicateStateAndBadRanges) {
  MissionProfile p;
  p.add_state({"a", 1.0, 0, 40, 1.0, 12.0});
  EXPECT_THROW(p.add_state({"a", 0.5, 0, 40, 1.0, 12.0}), std::invalid_argument);
  MissionProfile q;
  q.add_state({"a", 1.0, 40, 0, 1.0, 12.0});  // inverted temperature range
  EXPECT_THROW(q.validate(), std::invalid_argument);
  MissionProfile r;
  r.add_state({"a", 1.0, 0, 40, 1.0, 12.0});
  r.add_load({"l", 1.0, "nonexistent"});
  EXPECT_THROW(r.validate(), std::invalid_argument);
}

TEST(Physics, ArrheniusProperties) {
  // Identity at reference, monotone in temperature, classic rule of thumb:
  // ~2x per 10K at Ea=0.7eV around room temperature.
  EXPECT_DOUBLE_EQ(arrhenius_factor(55, 55, 0.7), 1.0);
  EXPECT_GT(arrhenius_factor(85, 55, 0.7), arrhenius_factor(65, 55, 0.7));
  EXPECT_LT(arrhenius_factor(25, 55, 0.7), 1.0);
  const double doubling = arrhenius_factor(35, 25, 0.7);
  EXPECT_GT(doubling, 1.8);
  EXPECT_LT(doubling, 3.0);
}

TEST(Physics, VibrationPowerLaw) {
  EXPECT_DOUBLE_EQ(vibration_factor(1.0, 1.0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(vibration_factor(2.0, 1.0, 4.0), 16.0);
  EXPECT_EQ(vibration_factor(0.0, 1.0, 4.0), 0.0);
}

TEST(Physics, VoltageFactorShapes) {
  DerivationModel m;
  EXPECT_NEAR(voltage_factor(12.0, m), 1.0, 1e-9);
  EXPECT_GT(voltage_factor(6.5, m), 5.0);    // deep brownout
  EXPECT_GT(voltage_factor(16.0, m), 1.0);   // overvoltage
  EXPECT_LT(voltage_factor(13.8, m), 1.2);   // alternator nominal is benign
}

TEST(Derivation, HarsherStatesHaveHigherRates) {
  const auto profile = reference_car_profile();
  const auto table = derive_fault_rates(profile);
  ASSERT_EQ(table.rows.size(), 4u);

  const auto fit = [&](const std::string& state, FaultClass c) {
    for (const auto& row : table.rows) {
      if (row.state == state) return row.fit[static_cast<std::size_t>(c)];
    }
    return -1.0;
  };
  // Vibration-driven connector faults: highway > city > parked.
  EXPECT_GT(fit("highway", FaultClass::kConnectorOpen), fit("city", FaultClass::kConnectorOpen));
  EXPECT_GT(fit("city", FaultClass::kConnectorOpen), fit("parked", FaultClass::kConnectorOpen));
  // Brownout risk dominated by cranking.
  EXPECT_GT(fit("cranking", FaultClass::kSupplyBrownout), fit("city", FaultClass::kSupplyBrownout));
  // Thermal classes: highway (95C) > parked (50C).
  EXPECT_GT(fit("highway", FaultClass::kSensorDrift), fit("parked", FaultClass::kSensorDrift));
  // SEU rates barely move with stress state.
  EXPECT_NEAR(fit("highway", FaultClass::kMemoryBitFlip) / fit("parked", FaultClass::kMemoryBitFlip),
              1.0, 0.6);
}

TEST(Derivation, MissionAverageIsFractionWeighted) {
  MissionProfile p;
  p.add_state({"calm", 0.5, 20, 20, 1.0, 12.0});
  p.add_state({"harsh", 0.5, 20, 20, 2.0, 12.0});
  const auto table = derive_fault_rates(p);
  const double calm = table.rows[0].fit[static_cast<std::size_t>(FaultClass::kConnectorOpen)];
  const double harsh = table.rows[1].fit[static_cast<std::size_t>(FaultClass::kConnectorOpen)];
  EXPECT_NEAR(table.mission_average_fit(FaultClass::kConnectorOpen), 0.5 * calm + 0.5 * harsh,
              1e-9);
  // Lifetime expectation: FIT * 1e-9 * hours.
  EXPECT_NEAR(table.expected_lifetime_faults(FaultClass::kConnectorOpen, 1e9),
              table.mission_average_fit(FaultClass::kConnectorOpen), 1e-9);
}

TEST(Derivation, TableRenders) {
  const auto table = derive_fault_rates(reference_car_profile());
  const auto text = table.render();
  EXPECT_NE(text.find("connector_open"), std::string::npos);
  EXPECT_NE(text.find("highway"), std::string::npos);
}

TEST(Stressor, SpecScalesWithAcceleration) {
  const auto table = derive_fault_rates(reference_car_profile());
  const auto slow = make_stressor_spec(table, "city", 1.0);
  const auto fast = make_stressor_spec(table, "city", 1e6);
  EXPECT_NEAR(fast.total_rate() / slow.total_rate(), 1e6, 1.0);
  // Un-accelerated rates are tiny: FIT-scale per-second rates.
  EXPECT_LT(slow.total_rate(), 1e-9);
  EXPECT_GT(fast.expected_faults(10.0), 0.0);
  EXPECT_THROW((void)make_stressor_spec(table, "warp", 1.0), std::invalid_argument);
  EXPECT_THROW((void)make_stressor_spec(table, "city", 0.0), vps::support::InvariantError);
}

}  // namespace

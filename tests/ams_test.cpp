// AMS-lite (timed dataflow) tests: cluster scheduling, block semantics
// (filter step response, comparator hysteresis, PI regulation), the TDF->DE
// bridge, and analog fault injection through a Gain block's offset.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "vps/ams/tdf.hpp"
#include "vps/support/ensure.hpp"

namespace {

using namespace vps::ams;
using namespace vps::sim;

TEST(Tdf, ClusterRunsAtSampleRate) {
  Kernel k;
  TdfCluster cluster(k, "c", Time::us(100));
  auto& src = cluster.add<Source>("one", [](double) { return 1.0; });
  (void)src;
  k.run(Time::ms(10));
  EXPECT_EQ(cluster.samples_processed(), 100u);
}

TEST(Tdf, RejectsZeroPeriod) {
  Kernel k;
  EXPECT_THROW(TdfCluster(k, "c", Time::zero()), vps::support::InvariantError);
}

TEST(Tdf, GainAndSaturationChain) {
  Kernel k;
  TdfCluster cluster(k, "c", Time::us(10));
  auto& src = cluster.add<Source>("ramp", [](double t) { return 1000.0 * t; });  // V/s ramp
  auto& gain = cluster.add<Gain>("gain", 2.0, 0.5);
  auto& sat = cluster.add<Saturate>("sat", 0.0, 5.0);
  gain.connect(src);
  sat.connect(gain);
  k.run(Time::ms(1));
  // After 1 ms the ramp is ~1 V, gain output ~2.5 V.
  EXPECT_NEAR(gain.output(), 2.5, 0.1);
  k.run(Time::ms(5));
  EXPECT_DOUBLE_EQ(sat.output(), 5.0);  // railed
}

TEST(Tdf, LowPassStepResponseMatchesTimeConstant) {
  Kernel k;
  TdfCluster cluster(k, "c", Time::us(10));
  auto& step = cluster.add<Source>("step", [](double) { return 1.0; });
  auto& lp = cluster.add<LowPass>("lp", 0.001);  // tau = 1 ms
  lp.connect(step);
  // After one tau the output should be ~63% of the step.
  k.run(Time::ms(1));
  EXPECT_NEAR(lp.output(), 1.0 - std::exp(-1.0), 0.02);
  // After five tau, essentially settled.
  k.run(Time::ms(6));
  EXPECT_GT(lp.output(), 0.99);
}

TEST(Tdf, LowPassAttenuatesAboveCutoff) {
  // 1 kHz cutoff (tau ~ 159 us): a 10 kHz tone is attenuated ~10x more than
  // a 100 Hz tone.
  const auto amplitude_at = [](double freq_hz) {
    Kernel k;
    TdfCluster cluster(k, "c", Time::us(5));
    auto& src = cluster.add<Source>("sine", [freq_hz](double t) {
      return std::sin(2.0 * std::numbers::pi * freq_hz * t);
    });
    auto& lp = cluster.add<LowPass>("lp", 1.0 / (2.0 * std::numbers::pi * 1000.0));
    lp.connect(src);
    double peak = 0.0;
    k.spawn("peak", [](LowPass& lp, double& peak) -> Coro {
      // skip the transient, then track the peak
      co_await delay(Time::ms(20));
      for (int i = 0; i < 4000; ++i) {
        co_await delay(Time::us(5));
        peak = std::max(peak, std::fabs(lp.output()));
      }
    }(lp, peak));
    k.run(Time::ms(60));
    return peak;
  };
  const double low = amplitude_at(100.0);
  const double high = amplitude_at(10000.0);
  EXPECT_GT(low, 0.9);
  EXPECT_LT(high, 0.15);
}

TEST(Tdf, ComparatorHysteresisSuppressesChatter) {
  Kernel k;
  TdfCluster cluster(k, "c", Time::us(10));
  // Noisy signal oscillating +-0.3 around the 2.0 threshold.
  auto& src = cluster.add<Source>("noisy", [](double t) {
    return 2.0 + 0.3 * std::sin(2.0 * std::numbers::pi * 5000.0 * t);
  });
  auto& plain = cluster.add<Comparator>("plain", 2.0, 0.0);
  auto& hyst = cluster.add<Comparator>("hyst", 2.0, 0.5);
  plain.connect(src);
  hyst.connect(src);
  int plain_edges = 0, hyst_edges = 0;
  k.spawn("count", [](Kernel& k, TdfCluster& c, Comparator& p, Comparator& h, int& pe,
                      int& he) -> Coro {
    double lp = 0.0, lh = 0.0;
    for (int i = 0; i < 2000; ++i) {
      co_await c.sample_event();
      pe += p.output() != lp;
      he += h.output() != lh;
      lp = p.output();
      lh = h.output();
    }
    k.stop();
  }(k, cluster, plain, hyst, plain_edges, hyst_edges));
  k.run(Time::ms(50));
  EXPECT_GT(plain_edges, 50);  // chatters with the noise
  EXPECT_EQ(hyst_edges, 0);    // hysteresis band swallows it
}

TEST(Tdf, PiControllerRegulatesPlant) {
  // Close the loop around a first-order "plant" (the LowPass block):
  // setpoint 3.0, the PI must drive the measured value there.
  Kernel k;
  TdfCluster cluster(k, "c", Time::us(100));
  auto& setpoint = cluster.add<Source>("sp", [](double) { return 3.0; });
  auto& pi = cluster.add<PiController>("pi", 2.0, 40.0);
  auto& plant = cluster.add<LowPass>("plant", 0.005);
  pi.connect(setpoint);  // input 0: setpoint
  pi.connect(plant);     // input 1: measurement (one-sample feedback delay)
  plant.connect(pi);
  k.run(Time::ms(600));  // several integral time constants
  EXPECT_NEAR(plant.output(), 3.0, 0.03);
}

TEST(Tdf, BridgeCommitsToKernelSignal) {
  Kernel k;
  Signal<double> analog(k, "analog", 0.0);
  TdfCluster cluster(k, "c", Time::us(50));
  auto& src = cluster.add<Source>("ramp", [](double t) { return t; });
  auto& bridge = cluster.add<ToSignal>("bridge", analog);
  bridge.connect(src);
  int commits = 0;
  k.method("watch", [&] { ++commits; }, {&analog.changed()}, false);
  k.run(Time::ms(1));
  EXPECT_GT(commits, 15);
  EXPECT_NEAR(analog.read(), 0.001, 0.0002);
}

TEST(Tdf, OffsetFaultInjectionShiftsChain) {
  // Inject a drift fault into the sensor frontend mid-run (the AMS analogue
  // of AnalogChannel::set_offset) and verify the comparator trips.
  Kernel k;
  TdfCluster cluster(k, "c", Time::us(10));
  auto& src = cluster.add<Source>("flat", [](double) { return 1.0; });
  auto& frontend = cluster.add<Gain>("frontend", 1.0, 0.0);
  auto& cmp = cluster.add<Comparator>("cmp", 2.0);
  frontend.connect(src);
  cmp.connect(frontend);
  k.run(Time::ms(1));
  EXPECT_DOUBLE_EQ(cmp.output(), 0.0);
  frontend.set_offset(1.5);  // drift fault: 1.0 + 1.5 > 2.0
  k.run(Time::ms(2));
  EXPECT_DOUBLE_EQ(cmp.output(), 1.0);
}

}  // namespace

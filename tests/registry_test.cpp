// Scenario-registry contract: every app builds from its spec grammar, the
// built scenario's name() matches what the distributed handshake verifies,
// and malformed specs — unknown apps/options, empty segments from stray
// colons — are rejected with a diagnosable message instead of silently
// building the wrong scenario.

#include <gtest/gtest.h>

#include <string>

#include "vps/apps/registry.hpp"
#include "vps/sim/time.hpp"
#include "vps/support/ensure.hpp"

namespace {

using vps::apps::make_scenario;
using vps::apps::registry_help;
using vps::sim::Time;
using vps::support::InvariantError;

TEST(Registry, BuildsEveryAppFromItsSpec) {
  EXPECT_EQ(make_scenario("caps")->name(), "caps_normal_protected");
  EXPECT_EQ(make_scenario("caps:crash:unprotected")->name(), "caps_crash_unprotected");
  EXPECT_EQ(make_scenario("caps:crash:protected:ecc:prov")->name(),
            "caps_crash_protected_ecc");
  EXPECT_EQ(make_scenario("acc")->name(), "acc_follow_brake");
  EXPECT_EQ(make_scenario("bms")->name(), "bms_nominal");
  EXPECT_EQ(make_scenario("bms:nominal")->name(), "bms_nominal");
  EXPECT_EQ(make_scenario("bms:runaway")->name(), "bms_runaway");
  EXPECT_EQ(make_scenario("bms:short:prov")->name(), "bms_short");
}

TEST(Registry, BmsQuickShortensTheMission) {
  EXPECT_EQ(make_scenario("bms")->duration(), Time::sec(20));
  EXPECT_EQ(make_scenario("bms:runaway:quick")->duration(), Time::sec(12));
}

TEST(Registry, EmptySegmentsAreRejected) {
  EXPECT_THROW((void)make_scenario(""), InvariantError);
  EXPECT_THROW((void)make_scenario("caps:"), InvariantError);
  EXPECT_THROW((void)make_scenario("caps::crash"), InvariantError);
  EXPECT_THROW((void)make_scenario(":caps"), InvariantError);
  EXPECT_THROW((void)make_scenario("bms:"), InvariantError);
  EXPECT_THROW((void)make_scenario(":"), InvariantError);
}

TEST(Registry, EmptySegmentMessageNamesTheSpec) {
  try {
    (void)make_scenario("caps::crash");
    FAIL() << "expected InvariantError";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("empty segment"), std::string::npos) << what;
    EXPECT_NE(what.find("caps::crash"), std::string::npos) << what;
  }
}

TEST(Registry, UnknownAppsAndOptionsAreRejected) {
  EXPECT_THROW((void)make_scenario("warp_drive"), InvariantError);
  EXPECT_THROW((void)make_scenario("caps:bogus"), InvariantError);
  EXPECT_THROW((void)make_scenario("acc:fast"), InvariantError);
  EXPECT_THROW((void)make_scenario("bms:bogus"), InvariantError);
}

TEST(Registry, HelpListsEveryApp) {
  const std::string help = registry_help();
  EXPECT_NE(help.find("caps"), std::string::npos);
  EXPECT_NE(help.find("acc"), std::string::npos);
  EXPECT_NE(help.find("bms"), std::string::npos);
  EXPECT_NE(help.find("runaway"), std::string::npos);
}

}  // namespace

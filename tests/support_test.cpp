// Unit tests for vps::support — RNG determinism, CRC vectors, statistics,
// string parsing, and table rendering.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "vps/support/crc.hpp"
#include "vps/support/ensure.hpp"
#include "vps/support/rng.hpp"
#include "vps/support/stats.hpp"
#include "vps/support/strings.hpp"
#include "vps/support/table.hpp"

namespace {

using namespace vps::support;

TEST(Ensure, ThrowsWithLocation) {
  EXPECT_NO_THROW(ensure(true, "fine"));
  try {
    ensure(false, "boom");
    FAIL() << "ensure did not throw";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("support_test"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Xorshift a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xorshift a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsRemapped) {
  Xorshift z(0);
  EXPECT_NE(z.next(), 0u);
}

TEST(Rng, UniformRespectsBounds) {
  Xorshift rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
    const double d = rng.uniform(-1.0, 1.0);
    EXPECT_GE(d, -1.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, IndexZeroAndOneElement) {
  Xorshift rng(7);
  EXPECT_EQ(rng.index(0), 0u);
  EXPECT_EQ(rng.index(1), 0u);
}

TEST(Rng, ChanceExtremes) {
  Xorshift rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Xorshift rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Xorshift rng(13);
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(rng.exponential(2.0));
  EXPECT_NEAR(acc.mean(), 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Xorshift rng(17);
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(acc.mean(), 5.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.05);
}

TEST(Rng, WeightedFollowsWeights) {
  Xorshift rng(19);
  const std::array<double, 3> w{1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, ForkDecorrelates) {
  Xorshift a(42);
  Xorshift b = a.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Crc8, SaeJ1850KnownVectors) {
  // CRC over a single 0x00 byte (reference value from an independent
  // bitwise implementation of poly 0x1D, init 0xFF, xorout 0xFF).
  const std::array<std::uint8_t, 4> msg{0x00, 0x00, 0x00, 0x00};
  EXPECT_EQ(crc8_sae_j1850(std::span(msg).first(1)), 0x3B);
  const std::array<std::uint8_t, 9> digits{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc8_sae_j1850(digits), 0x4B);  // standard check value for CRC-8/SAE-J1850
}

TEST(Crc8, DetectsSingleBitErrors) {
  Xorshift rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> msg(8);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
    const auto crc = crc8_sae_j1850(msg);
    const std::size_t byte = rng.index(msg.size());
    const int bit = static_cast<int>(rng.index(8));
    msg[byte] ^= static_cast<std::uint8_t>(1u << bit);
    EXPECT_NE(crc8_sae_j1850(msg), crc) << "single-bit error escaped CRC-8";
  }
}

TEST(Crc15, ZeroBitsGiveZero) {
  std::vector<bool> bits(20, false);
  EXPECT_EQ(crc15_can(bits), 0u);
}

TEST(Crc15, DetectsBurstErrorsUpTo15Bits) {
  Xorshift rng(29);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<bool> bits(64);
    for (auto&& b : bits) b = rng.chance(0.5);
    const auto crc = crc15_can(bits);
    const std::size_t burst_len = 1 + rng.index(15);
    const std::size_t start = rng.index(bits.size() - burst_len);
    // Flip the boundary bits so the burst is exactly burst_len long.
    bits[start] = !bits[start];
    if (burst_len > 1) bits[start + burst_len - 1] = !bits[start + burst_len - 1];
    EXPECT_NE(crc15_can(bits), crc) << "burst of length " << burst_len << " escaped CRC-15";
  }
}

TEST(Crc32, KnownCheckValue) {
  const std::array<std::uint8_t, 9> digits{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32_ieee(digits), 0xCBF43926u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  Xorshift rng(31);
  std::vector<std::uint8_t> msg(128);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
  Crc32 inc;
  inc.update(std::span(msg).first(50));
  inc.update(std::span(msg).subspan(50));
  EXPECT_EQ(inc.value(), crc32_ieee(msg));
}

TEST(Stats, AccumulatorBasics) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  acc.add(1.0);
  acc.add(2.0);
  acc.add(3.0);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 1.0);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 3.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 6.0);
}

TEST(Stats, HistogramClampsOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  h.add(5.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count_in_bin(0), 1u);
  EXPECT_EQ(h.count_in_bin(4), 1u);
  EXPECT_EQ(h.count_in_bin(2), 1u);
}

TEST(Stats, HistogramDropsAndCountsNonFiniteSamples) {
  // Regression: NaN/Inf used to reach the bin-index cast, which is
  // undefined behaviour for values outside the target integer's range.
  Histogram h(0.0, 10.0, 5);
  h.add(std::nan(""));
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.dropped_non_finite(), 3u);
  // Finite but huge samples clamp into the edge bins instead of
  // overflowing the cast.
  h.add(1e300);
  h.add(-1e300);
  h.add(5.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.dropped_non_finite(), 3u);
  EXPECT_EQ(h.count_in_bin(4), 1u);
  EXPECT_EQ(h.count_in_bin(0), 1u);
  EXPECT_EQ(h.count_in_bin(2), 1u);
}

TEST(Stats, HistogramRejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), InvariantError);
  EXPECT_THROW(Histogram(5.0, 5.0, 4), InvariantError);
}

TEST(Stats, HistogramPercentilesInterpolateWithinBins) {
  // One sample per unit-wide bin: the pXX estimate must land inside the
  // XXth bin (resolution is bounded by the bin width, not the sample count).
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.percentile(0.50), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(0.95), 95.0, 1.0);
  EXPECT_NEAR(h.percentile(0.99), 99.0, 1.0);
  // p=0 clamps to the first sample, p=1 to the last.
  EXPECT_NEAR(h.percentile(0.0), 0.5, 1.0);
  EXPECT_NEAR(h.percentile(1.0), 99.5, 1.0);
  // Empty histogram reports its lower bound instead of dividing by zero.
  EXPECT_EQ(Histogram(2.5, 9.0, 4).percentile(0.5), 2.5);
}

TEST(Stats, HistogramPercentileIsOrderAndMergeIndependent) {
  Xorshift rng(123);
  std::vector<double> samples;
  samples.reserve(1000);
  for (int i = 0; i < 1000; ++i) samples.push_back(rng.uniform(0.0, 1000.0));

  Histogram forward(0.0, 1000.0, 256);
  for (const double s : samples) forward.add(s);
  Histogram reversed(0.0, 1000.0, 256);
  for (auto it = samples.rbegin(); it != samples.rend(); ++it) reversed.add(*it);
  // Three shards filled round-robin, merged in an arbitrary order — the
  // shard-merge path campaign latency aggregation relies on.
  Histogram a(0.0, 1000.0, 256);
  Histogram b(0.0, 1000.0, 256);
  Histogram merged(0.0, 1000.0, 256);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    (i % 3 == 0 ? a : i % 3 == 1 ? b : merged).add(samples[i]);
  }
  merged.merge(b);
  merged.merge(a);
  EXPECT_EQ(merged.total(), forward.total());
  for (const double p : {0.5, 0.9, 0.95, 0.99}) {
    // Bitwise equality, not NEAR: the estimate depends only on bin counts.
    EXPECT_EQ(forward.percentile(p), reversed.percentile(p)) << p;
    EXPECT_EQ(forward.percentile(p), merged.percentile(p)) << p;
  }
}

TEST(Stats, HistogramMergeRejectsShapeMismatch) {
  Histogram a(0.0, 10.0, 5);
  EXPECT_THROW(a.merge(Histogram(0.0, 10.0, 6)), InvariantError);
  EXPECT_THROW(a.merge(Histogram(0.0, 9.0, 5)), InvariantError);
  Histogram same(0.0, 10.0, 5);
  same.add(1.0);
  EXPECT_NO_THROW(a.merge(same));
  EXPECT_EQ(a.total(), 1u);
}

TEST(Stats, WilsonIntervalBracketsTruth) {
  // 3 failures in 1000 trials: interval must contain 0.003 and stay in [0,1].
  const auto p = wilson_interval(3, 1000);
  EXPECT_GT(p.hi, p.estimate);
  EXPECT_LT(p.lo, p.estimate);
  EXPECT_GE(p.lo, 0.0);
  EXPECT_LE(p.hi, 1.0);
  EXPECT_NEAR(p.estimate, 0.003, 1e-12);
}

TEST(Stats, WilsonIntervalZeroTrials) {
  const auto p = wilson_interval(0, 0);
  EXPECT_EQ(p.estimate, 0.0);
  EXPECT_EQ(p.lo, 0.0);
  EXPECT_EQ(p.hi, 0.0);
}

TEST(Stats, WilsonZeroSuccessesStillHasUpperBound) {
  const auto p = wilson_interval(0, 100);
  EXPECT_EQ(p.estimate, 0.0);
  EXPECT_GT(p.hi, 0.0) << "zero observed failures must not imply zero risk";
}

TEST(Strings, SplitAndTrim) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(trim("  hi \t"), "hi");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, Tokenize) {
  const auto toks = tokenize("  mov  r1, r2 \n");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0], "mov");
  EXPECT_EQ(toks[1], "r1,");
}

TEST(Strings, ParseIntVariants) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-17"), -17);
  EXPECT_EQ(parse_int("0xFF"), 255);
  EXPECT_EQ(parse_int("  7 "), 7);
  EXPECT_THROW((void)parse_int("abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_int("12junk"), std::invalid_argument);
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e-3"), -1e-3);
  EXPECT_THROW((void)parse_double("zz"), std::invalid_argument);
}

TEST(Strings, FormatSi) {
  EXPECT_EQ(format_si(1.5e6), "1.5M");
  EXPECT_EQ(format_si(2.0e3), "2k");
  EXPECT_EQ(format_si(0.002), "2m");
}

TEST(Strings, PrefixSuffix) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("he", "hello"));
  EXPECT_TRUE(ends_with("kernel.cpp", ".cpp"));
  EXPECT_EQ(to_lower("AbC"), "abc");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"metric", "value"});
  t.add_row({"speedup", "12.5"});
  t.add_row_numeric("events/s", {1.0e6});
  const auto s = t.render();
  EXPECT_NE(s.find("| metric"), std::string::npos);
  EXPECT_NE(s.find("speedup"), std::string::npos);
  EXPECT_NE(s.find("1e+06"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NE(t.render().find("only"), std::string::npos);
}

}  // namespace

// Fault-module tests: descriptor/taxonomy mapping, the outcome classifier
// truth table, injector hub bindings (including skip accounting and timed
// reversion), Poisson stressor schedules, and the campaign engine on the
// CAPS and ACC scenarios (determinism, protection effects, strategies).

#include <gtest/gtest.h>

#include "vps/apps/acc.hpp"
#include "vps/apps/caps.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/fault/descriptor.hpp"
#include "vps/fault/injector.hpp"
#include "vps/fault/scenario.hpp"
#include "vps/fault/stressor.hpp"

namespace {

using namespace vps::fault;
using namespace vps::sim;
using vps::apps::AccConfig;
using vps::apps::AccScenario;
using vps::apps::CapsConfig;
using vps::apps::CapsScenario;

TEST(Descriptor, MappingAndFormatting) {
  for (auto c : vps::mp::all_fault_classes()) {
    const FaultType t = default_type_for(c);
    EXPECT_NE(std::string(to_string(t)), "?");
  }
  FaultDescriptor f;
  f.id = 3;
  f.type = FaultType::kRegisterBitFlip;
  f.inject_at = Time::ms(5);
  f.location = "cpu";
  const auto s = f.to_string();
  EXPECT_NE(s.find("fault#3"), std::string::npos);
  EXPECT_NE(s.find("register_bit_flip"), std::string::npos);
}

TEST(Classify, TruthTable) {
  Observation golden;
  golden.completed = true;
  golden.output_signature = 100;

  Observation same = golden;
  EXPECT_EQ(classify(golden, same), Outcome::kNoEffect);

  Observation corrected = golden;
  corrected.corrected = 2;
  EXPECT_EQ(classify(golden, corrected), Outcome::kDetectedCorrected);

  Observation detected_equal = golden;
  detected_equal.detected = 1;
  EXPECT_EQ(classify(golden, detected_equal), Outcome::kDetectedCorrected);

  Observation sdc = golden;
  sdc.output_signature = 999;
  EXPECT_EQ(classify(golden, sdc), Outcome::kSilentDataCorruption);

  Observation detected_wrong = sdc;
  detected_wrong.detected = 1;
  EXPECT_EQ(classify(golden, detected_wrong), Outcome::kDetectedUncorrected);

  Observation wrong_with_reset = sdc;
  wrong_with_reset.resets = 1;
  EXPECT_EQ(classify(golden, wrong_with_reset), Outcome::kDetectedUncorrected);

  Observation hazard = golden;
  hazard.hazard = true;
  EXPECT_EQ(classify(golden, hazard), Outcome::kHazard);

  Observation hung = golden;
  hung.completed = false;
  EXPECT_EQ(classify(golden, hung), Outcome::kTimeout);

  // Hazard dominates even a hang.
  Observation hazard_hang = hazard;
  hazard_hang.completed = false;
  EXPECT_EQ(classify(golden, hazard_hang), Outcome::kHazard);

  // A hazard already present in the golden run is not a new hazard.
  Observation golden_haz = golden;
  golden_haz.hazard = true;
  EXPECT_EQ(classify(golden_haz, hazard), Outcome::kNoEffect);
}

TEST(AnalogChannelTest, OffsetStuckAndClear) {
  AnalogChannel ch([] { return 2.0; });
  EXPECT_DOUBLE_EQ(ch.read(), 2.0);
  ch.set_offset(0.5);
  EXPECT_DOUBLE_EQ(ch.read(), 2.5);
  ch.set_stuck(4.0);
  EXPECT_DOUBLE_EQ(ch.read(), 4.0);  // stuck dominates offset
  ch.clear_faults();
  EXPECT_DOUBLE_EQ(ch.read(), 2.0);
}

TEST(InjectorHubTest, SkipsUnboundTypes) {
  Kernel k;
  InjectorHub hub(k);  // nothing bound at all
  FaultDescriptor f;
  f.type = FaultType::kMemoryBitFlip;
  EXPECT_FALSE(hub.apply(f));
  f.type = FaultType::kCanFrameCorruption;
  EXPECT_FALSE(hub.apply(f));
  EXPECT_EQ(hub.skipped_count(), 2u);
  EXPECT_EQ(hub.applied_count(), 0u);
  EXPECT_TRUE(hub.supported_types().empty());
}

TEST(InjectorHubTest, MemoryAndRegisterInjection) {
  Kernel k;
  vps::ecu::EcuPlatform ecu(k, "ecu");
  ecu.load_program("halt");
  InjectorHub hub(ecu);
  EXPECT_FALSE(hub.supported_types().empty());

  FaultDescriptor mem;
  mem.type = FaultType::kMemoryBitFlip;
  mem.address = 0x100;
  mem.bit = 3;
  EXPECT_TRUE(hub.apply(mem));
  EXPECT_EQ(ecu.ram().peek(0x100), 0x08);

  FaultDescriptor reg;
  reg.type = FaultType::kRegisterBitFlip;
  reg.address = 4;  // maps to r5 (1 + 4 % 15)
  reg.bit = 0;
  EXPECT_TRUE(hub.apply(reg));
  EXPECT_EQ(ecu.cpu().reg(5), 1u);
}

TEST(InjectorHubTest, SensorFaultWithTimedReversion) {
  Kernel k;
  AnalogChannel ch([] { return 1.0; });
  InjectorHub hub(k);
  hub.bind_sensor(ch);
  FaultDescriptor f;
  f.type = FaultType::kSensorOffset;
  f.magnitude = 2.0;
  f.persistence = Persistence::kIntermittent;
  f.duration = Time::ms(5);
  EXPECT_TRUE(hub.apply(f));
  EXPECT_DOUBLE_EQ(ch.read(), 3.0);
  k.run(Time::ms(10));
  EXPECT_DOUBLE_EQ(ch.read(), 1.0);  // reverted after 5ms
}

TEST(InjectorHubTest, ScheduleInjectsAtAbsoluteTime) {
  Kernel k;
  AnalogChannel ch([] { return 0.0; });
  InjectorHub hub(k);
  hub.bind_sensor(ch);
  FaultDescriptor f;
  f.type = FaultType::kSensorStuck;
  f.magnitude = 9.0;
  f.persistence = Persistence::kPermanent;
  f.inject_at = Time::ms(3);
  hub.schedule(f);
  k.run(Time::ms(2));
  EXPECT_DOUBLE_EQ(ch.read(), 0.0);
  k.run(Time::ms(4));
  EXPECT_DOUBLE_EQ(ch.read(), 9.0);
}

TEST(StressorTest, PoissonScheduleMatchesRates) {
  Kernel k;
  InjectorHub hub(k);
  vps::mp::StressorSpec spec;
  spec.state = "test";
  spec.rate_per_second[0] = 50.0;  // memory flips
  spec.rate_per_second[5] = 10.0;  // CAN corruption
  Stressor stressor(hub, spec, 7);
  const auto schedule = stressor.sample_schedule(Time::zero(), Time::sec(10));
  // Expected 500 + 100 faults; Poisson 3-sigma ~ 75.
  EXPECT_GT(schedule.size(), 500u);
  EXPECT_LT(schedule.size(), 700u);
  // Sorted by injection time.
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_LE(schedule[i - 1].inject_at, schedule[i].inject_at);
  }
  // Both classes present, mapped to their default types.
  std::size_t mem = 0, canc = 0;
  for (const auto& f : schedule) {
    mem += f.type == FaultType::kMemoryBitFlip;
    canc += f.type == FaultType::kCanFrameCorruption;
  }
  EXPECT_GT(mem, 400u);
  EXPECT_GT(canc, 50u);
  EXPECT_EQ(mem + canc, schedule.size());
}

TEST(StressorTest, DeterministicForSameSeed) {
  Kernel k;
  InjectorHub hub(k);
  vps::mp::StressorSpec spec;
  spec.rate_per_second[2] = 20.0;
  Stressor a(hub, spec, 11), b(hub, spec, 11);
  const auto sa = a.sample_schedule(Time::zero(), Time::sec(5));
  const auto sb = b.sample_schedule(Time::zero(), Time::sec(5));
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].inject_at, sb[i].inject_at);
    EXPECT_EQ(sa[i].address, sb[i].address);
  }
}

// --------------------------------------------------------------------------
// CAPS scenario
// --------------------------------------------------------------------------

TEST(Caps, GoldenNormalDoesNotDeploy) {
  CapsScenario scenario(CapsConfig{.crash = false});
  const auto obs = scenario.run(nullptr, 42);
  EXPECT_TRUE(obs.completed);
  EXPECT_FALSE(obs.hazard);
  EXPECT_EQ(obs.detected, 0u);
}

TEST(Caps, GoldenCrashDeploysInTime) {
  CapsScenario scenario(CapsConfig{.crash = true});
  const auto obs = scenario.run(nullptr, 42);
  EXPECT_TRUE(obs.completed);
  EXPECT_FALSE(obs.hazard) << "crash variant must deploy before the deadline";
}

TEST(Caps, GoldenRunsAreDeterministic) {
  CapsScenario scenario(CapsConfig{.crash = true});
  const auto a = scenario.run(nullptr, 7);
  const auto b = scenario.run(nullptr, 7);
  EXPECT_EQ(a.output_signature, b.output_signature);
  EXPECT_EQ(a.detected, b.detected);
  const auto c = scenario.run(nullptr, 8);
  EXPECT_TRUE(c.completed);
}

TEST(Caps, SensorStuckLowMissesCrashDeployment) {
  CapsScenario scenario(CapsConfig{.crash = true});
  FaultDescriptor f;
  f.type = FaultType::kSensorStuck;
  f.magnitude = 0.0;  // line reads ground
  f.persistence = Persistence::kPermanent;
  f.inject_at = Time::ms(1);
  const auto golden = scenario.run(nullptr, 42);
  const auto faulty = scenario.run(&f, 42);
  EXPECT_EQ(classify(golden, faulty), Outcome::kHazard);
}

TEST(Caps, SensorStuckHighFiresInNormalOperation) {
  CapsScenario scenario(CapsConfig{.crash = false});
  FaultDescriptor f;
  f.type = FaultType::kSensorStuck;
  f.magnitude = 40.0;  // 40g stuck: above deployment threshold
  f.persistence = Persistence::kPermanent;
  f.inject_at = Time::ms(2);
  const auto golden = scenario.run(nullptr, 42);
  const auto faulty = scenario.run(&f, 42);
  EXPECT_EQ(classify(golden, faulty), Outcome::kHazard);
}

TEST(Caps, SourceCorruptionIsDetectedByLinkProtection) {
  CapsScenario scenario(CapsConfig{.crash = false, .protected_link = true});
  FaultDescriptor f;
  f.type = FaultType::kCanFrameCorruption;
  f.persistence = Persistence::kIntermittent;
  f.inject_at = Time::ms(4);
  f.duration = Time::ms(6);
  const auto golden = scenario.run(nullptr, 42);
  const auto faulty = scenario.run(&f, 42);
  EXPECT_GT(faulty.detected, golden.detected) << "integrity check must fire";
  const auto outcome = classify(golden, faulty);
  EXPECT_TRUE(outcome == Outcome::kDetectedCorrected || outcome == Outcome::kDetectedUncorrected);
}

TEST(Caps, BrownoutResetIsDetectedRecovery) {
  CapsScenario scenario(CapsConfig{.crash = false});
  FaultDescriptor f;
  f.type = FaultType::kSupplyBrownout;
  f.inject_at = Time::ms(5);
  const auto golden = scenario.run(nullptr, 42);
  const auto faulty = scenario.run(&f, 42);
  EXPECT_GE(faulty.resets, 1u);
  EXPECT_EQ(classify(golden, faulty), Outcome::kDetectedCorrected);
}

// --------------------------------------------------------------------------
// ACC scenario (timing errors)
// --------------------------------------------------------------------------

TEST(Acc, GoldenFollowsWithoutCollision) {
  AccScenario scenario;
  const auto obs = scenario.run(nullptr, 1);
  EXPECT_TRUE(obs.completed);
  EXPECT_FALSE(obs.hazard);
  EXPECT_EQ(obs.deadline_misses, 0u);
  EXPECT_GT(scenario.last_min_gap_m(), 3.0);
}

TEST(Acc, SlowdownCausesDeadlineMissesAndDegradation) {
  // "The right value at the wrong time can still be an error": the control
  // law is unchanged, only its execution time inflates.
  AccScenario scenario;
  const auto golden = scenario.run(nullptr, 1);
  const double golden_min_gap = scenario.last_min_gap_m();
  FaultDescriptor f;
  f.type = FaultType::kExecutionSlowdown;
  f.address = 0;   // the control task
  f.magnitude = 30.0;  // 8ms -> 240ms: control runs at 1/12 of its rate
  f.persistence = Persistence::kIntermittent;
  f.inject_at = Time::sec(7);
  f.duration = Time::sec(6);  // covers the braking event
  const auto faulty = scenario.run(&f, 1);
  EXPECT_GT(faulty.deadline_misses, 0u);
  // The values computed are still correct — only late. The deadline monitor
  // must flag it, and the braking response must measurably degrade.
  const auto outcome = classify(golden, faulty);
  EXPECT_TRUE(outcome == Outcome::kDetectedUncorrected || outcome == Outcome::kHazard ||
              outcome == Outcome::kDetectedCorrected)
      << to_string(outcome);
  EXPECT_LT(scenario.last_min_gap_m(), golden_min_gap - 1.0)
      << "timing-only fault must degrade the braking response";
}

TEST(Acc, ControlTaskKillDuringBrakingIsHazardous) {
  AccScenario scenario;
  const auto golden = scenario.run(nullptr, 1);
  FaultDescriptor f;
  f.type = FaultType::kTaskKill;
  f.address = 0;
  f.persistence = Persistence::kPermanent;
  f.inject_at = Time::sec(7);
  const auto faulty = scenario.run(&f, 1);
  EXPECT_EQ(classify(golden, faulty), Outcome::kHazard) << "min gap "
                                                        << scenario.last_min_gap_m();
}

// --------------------------------------------------------------------------
// Campaign engine
// --------------------------------------------------------------------------

TEST(CampaignTest, RunsAndClassifiesEverything) {
  CapsScenario scenario(CapsConfig{.crash = false, .duration = Time::ms(10)});
  CampaignConfig cfg;
  cfg.runs = 30;
  cfg.seed = 5;
  Campaign campaign(scenario, cfg);
  const auto result = campaign.run();
  EXPECT_EQ(result.runs_executed, 30u);
  std::uint64_t total = 0;
  for (auto c : result.outcome_counts) total += c;
  EXPECT_EQ(total, 30u);
  EXPECT_EQ(result.records.size(), 30u);
  EXPECT_GT(result.final_coverage, 0.0);
  EXPECT_EQ(result.coverage_curve.size(), 30u);
  const auto text = result.render();
  EXPECT_NE(text.find("no_effect"), std::string::npos);
  EXPECT_NE(text.find("P(hazard)"), std::string::npos);
}

TEST(CampaignTest, DeterministicForSameSeed) {
  CapsScenario s1(CapsConfig{.crash = false, .duration = Time::ms(10)});
  CapsScenario s2(CapsConfig{.crash = false, .duration = Time::ms(10)});
  CampaignConfig cfg;
  cfg.runs = 20;
  cfg.seed = 9;
  const auto a = Campaign(s1, cfg).run();
  const auto b = Campaign(s2, cfg).run();
  EXPECT_EQ(a.outcome_counts, b.outcome_counts);
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].fault.type, b.records[i].fault.type);
    EXPECT_EQ(a.records[i].fault.address, b.records[i].fault.address);
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome);
  }
}

TEST(CampaignTest, CoverageDrivenClosesFasterThanMonteCarlo) {
  // Identical budget; the coverage-driven strategy must reach (near-)full
  // class x location coverage in fewer runs.
  AccScenario mc_scenario, cov_scenario;
  CampaignConfig mc_cfg;
  mc_cfg.runs = 60;
  mc_cfg.seed = 3;
  mc_cfg.strategy = Strategy::kMonteCarlo;
  mc_cfg.location_buckets = 8;
  CampaignConfig cov_cfg = mc_cfg;
  cov_cfg.strategy = Strategy::kCoverageDriven;
  const auto mc = Campaign(mc_scenario, mc_cfg).run();
  const auto cov = Campaign(cov_scenario, cov_cfg).run();
  // Runs needed to reach 90% of final coverage.
  const auto runs_to = [](const CampaignResult& r, double target) {
    for (std::size_t i = 0; i < r.coverage_curve.size(); ++i) {
      if (r.coverage_curve[i] >= target) return i + 1;
    }
    return r.coverage_curve.size() + 1;
  };
  EXPECT_GE(cov.final_coverage, mc.final_coverage);
  EXPECT_LE(runs_to(cov, 0.8), runs_to(mc, 0.8));
}

TEST(CampaignTest, StopAfterHazardsShortens) {
  CapsScenario scenario(CapsConfig{.crash = true, .duration = Time::ms(15)});
  CampaignConfig cfg;
  cfg.runs = 100;
  cfg.seed = 11;
  cfg.stop_after_hazards = 1;
  Campaign campaign(scenario, cfg);
  const auto result = campaign.run();
  if (result.count(Outcome::kHazard) > 0) {
    EXPECT_EQ(result.runs_executed, result.faults_to_first_hazard);
    EXPECT_LT(result.runs_executed, 100u);
  }
}

TEST(CampaignTest, DiagnosticCoverageDefinition) {
  CampaignResult r;
  r.outcome_counts[static_cast<std::size_t>(Outcome::kDetectedCorrected)] = 6;
  r.outcome_counts[static_cast<std::size_t>(Outcome::kDetectedUncorrected)] = 2;
  r.outcome_counts[static_cast<std::size_t>(Outcome::kSilentDataCorruption)] = 2;
  r.runs_executed = 10;
  EXPECT_NEAR(r.diagnostic_coverage(), 0.8, 1e-12);
}

TEST(CampaignTest, DiagnosticCoverageCountsTimeoutsAsDangerous) {
  // Regression: timeouts were ignored by diagnostic_coverage() while
  // weak_spots() ranked them as dangerous, so a campaign consisting purely
  // of hangs reported a perfect DC of 1.0.
  CampaignResult hung;
  hung.outcome_counts[static_cast<std::size_t>(Outcome::kTimeout)] = 10;
  hung.runs_executed = 10;
  EXPECT_DOUBLE_EQ(hung.diagnostic_coverage(), 0.0);

  // A timeout depresses DC exactly like an SDC (both undetected-dangerous).
  CampaignResult with_timeout;
  with_timeout.outcome_counts[static_cast<std::size_t>(Outcome::kDetectedCorrected)] = 6;
  with_timeout.outcome_counts[static_cast<std::size_t>(Outcome::kTimeout)] = 4;
  with_timeout.runs_executed = 10;
  CampaignResult with_sdc;
  with_sdc.outcome_counts[static_cast<std::size_t>(Outcome::kDetectedCorrected)] = 6;
  with_sdc.outcome_counts[static_cast<std::size_t>(Outcome::kSilentDataCorruption)] = 4;
  with_sdc.runs_executed = 10;
  EXPECT_DOUBLE_EQ(with_timeout.diagnostic_coverage(), with_sdc.diagnostic_coverage());
  EXPECT_NEAR(with_timeout.diagnostic_coverage(), 0.6, 1e-12);

  // Both accountings agree that the all-hang campaign is all-dangerous.
  hung.records.push_back({FaultDescriptor{}, Outcome::kTimeout, {}});
  const auto spots = hung.weak_spots();
  ASSERT_EQ(spots.size(), 1u);
  EXPECT_DOUBLE_EQ(spots[0].danger_rate(), 1.0);
}

TEST(CampaignStateTest, LearnSkipsFaultTypesOutsideTheFaultSpace) {
  // Regression: a descriptor whose type is not in the campaign's fault
  // space was silently mapped to cell 0, corrupting the guided weights and
  // the coverage sampling.
  CampaignConfig cfg;
  cfg.runs = 10;
  cfg.location_buckets = 4;
  cfg.strategy = Strategy::kGuided;
  CampaignState state({FaultType::kSensorOffset, FaultType::kSensorStuck}, Time::ms(10), cfg);

  FaultDescriptor foreign;
  foreign.type = FaultType::kTaskKill;  // not offered by this fault space
  foreign.address = 0;                  // would have hit cell 0 before the fix
  foreign.inject_at = Time::ms(5);
  EXPECT_FALSE(state.learn(foreign, Outcome::kHazard));
  EXPECT_EQ(state.coverage().samples(), 0u) << "foreign fault must not be sampled";

  FaultDescriptor known;
  known.type = FaultType::kSensorStuck;
  known.address = 1;
  known.inject_at = Time::ms(5);
  EXPECT_TRUE(state.learn(known, Outcome::kHazard));
  EXPECT_EQ(state.coverage().samples(), 1u);
}

}  // namespace

// The persistent campaign server: admission control (bounded job table,
// explicit REJECT), the metrics scrape endpoint, wedged-peer supervision,
// and the headline guarantee — two tenant campaigns interleaved on one
// standing worker pool fold bitwise identical to their solo in-process
// runs, including with a pool worker SIGKILLed mid-campaign.

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "vps/apps/caps.hpp"
#include "vps/apps/registry.hpp"
#include "vps/dist/coordinator.hpp"
#include "vps/dist/protocol.hpp"
#include "vps/dist/server.hpp"
#include "vps/dist/transport.hpp"
#include "vps/dist/worker.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/support/ensure.hpp"

namespace {

using namespace vps::dist;
using vps::apps::CapsConfig;
using vps::apps::CapsScenario;
using vps::fault::CampaignConfig;
using vps::fault::CampaignResult;
using vps::fault::Outcome;
using vps::fault::ParallelCampaign;
using vps::fault::ScenarioFactory;
using vps::support::InvariantError;

constexpr const char* kHost = "127.0.0.1";

// Forks one standing-pool worker that connects to the server and serves the
// registry-built scenarios until SHUTDOWN. Must be called before any thread
// is spawned in the test process (fork safety).
pid_t fork_pool_worker(std::uint16_t port) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  int code = 3;
  {
    Channel channel(tcp_connect(kHost, port));
    code = serve_pool(channel, [](const SetupMsg& setup) {
      return vps::apps::make_scenario(setup.scenario_spec);
    });
  }
  ::_exit(code);
}

void reap(pid_t pid) {
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(pid, &status, 0);
  } while (r < 0 && errno == EINTR);
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.outcome_counts, b.outcome_counts);
  EXPECT_EQ(a.runs_executed, b.runs_executed);
  EXPECT_EQ(a.faults_to_first_hazard, b.faults_to_first_hazard);
  EXPECT_EQ(a.final_coverage, b.final_coverage);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].fault.id, b.records[i].fault.id);
    EXPECT_EQ(a.records[i].fault.type, b.records[i].fault.type);
    EXPECT_EQ(a.records[i].fault.address, b.records[i].fault.address);
    EXPECT_EQ(a.records[i].fault.inject_at, b.records[i].fault.inject_at);
    EXPECT_EQ(a.records[i].fault.magnitude, b.records[i].fault.magnitude);
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome);
    EXPECT_EQ(a.records[i].crash_what, b.records[i].crash_what);
  }
  ASSERT_EQ(a.coverage_curve.size(), b.coverage_curve.size());
  for (std::size_t i = 0; i < a.coverage_curve.size(); ++i) {
    EXPECT_EQ(a.coverage_curve[i], b.coverage_curve[i]) << "curve diverges at run " << i;
  }
  EXPECT_EQ(a.provenance_jsonl(), b.provenance_jsonl());
}

SubmitMsg tiny_submit(const std::string& tenant) {
  SubmitMsg submit;
  submit.tenant = tenant;
  submit.scenario_spec = "caps";
  submit.scenario = "caps_normal_protected";
  submit.config.runs = 4;
  submit.config.seed = 1;
  submit.golden.completed = true;
  submit.golden.output_signature = 1;
  return submit;
}

// --------------------------------------------------------------------------
// Multi-tenant determinism on one standing pool
// --------------------------------------------------------------------------

TEST(CampaignServerTest, ThreeTenantsOnOnePoolFoldBitwiseIdenticalToSolo) {
  const ScenarioFactory caps_factory = [] {
    return std::make_unique<CapsScenario>(CapsConfig{.crash = true});
  };
  const ScenarioFactory acc_factory = [] { return vps::apps::make_scenario("acc"); };
  const ScenarioFactory bms_factory = [] {
    return vps::apps::make_scenario("bms:short:quick");
  };

  CampaignConfig caps_cfg;
  caps_cfg.runs = 24;
  caps_cfg.seed = 42;
  caps_cfg.location_buckets = 8;
  CampaignConfig acc_cfg;
  acc_cfg.runs = 12;
  acc_cfg.seed = 9;
  CampaignConfig bms_cfg;
  bms_cfg.runs = 10;
  bms_cfg.seed = 17;
  bms_cfg.location_buckets = 8;

  const CampaignResult caps_solo = ParallelCampaign(caps_factory, caps_cfg).run();
  const CampaignResult acc_solo = ParallelCampaign(acc_factory, acc_cfg).run();
  const CampaignResult bms_solo = ParallelCampaign(bms_factory, bms_cfg).run();

  // Default (30 s) heartbeat budget: a SIGKILLed worker is detected by EOF,
  // not by heartbeat, and sanitizer builds can push one replay past a few
  // seconds of wall time — a tight budget here only makes TSan drop healthy
  // workers as wedged.
  CampaignServer server{ServerConfig{}};

  // Fork the 4-worker pool BEFORE any thread exists. The listener is already
  // bound (constructor), so the TCP backlog holds the connects until the
  // serve loop starts accepting.
  std::vector<pid_t> pool;
  for (int i = 0; i < 4; ++i) pool.push_back(fork_pool_worker(server.port()));
  server.start();

  const auto run_tenant = [&server](const std::string& tenant, const std::string& spec,
                                    const ScenarioFactory& factory, const CampaignConfig& cfg) {
    DistConfig dc;
    dc.campaign = cfg;
    dc.server_host = kHost;
    dc.server_port = server.port();
    dc.tenant = tenant;
    dc.scenario_spec = spec;
    DistCampaign campaign(factory, dc);
    return campaign.run();
  };

  // A throw inside a tenant thread must fail the test, not std::terminate it.
  CampaignResult caps_res;
  CampaignResult acc_res;
  CampaignResult bms_res;
  std::thread caps_tenant([&] {
    try {
      caps_res = run_tenant("caps", "caps:crash", caps_factory, caps_cfg);
    } catch (const std::exception& e) {
      ADD_FAILURE() << "caps tenant threw: " << e.what();
    }
  });
  std::thread acc_tenant([&] {
    try {
      acc_res = run_tenant("acc", "acc", acc_factory, acc_cfg);
    } catch (const std::exception& e) {
      ADD_FAILURE() << "acc tenant threw: " << e.what();
    }
  });
  std::thread bms_tenant([&] {
    try {
      bms_res = run_tenant("bms", "bms:short:quick", bms_factory, bms_cfg);
    } catch (const std::exception& e) {
      ADD_FAILURE() << "bms tenant threw: " << e.what();
    }
  });

  // Kill one pool worker while both campaigns are (very likely) in flight:
  // the server requeues its runs and neither tenant's fold may change.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ::kill(pool[0], SIGKILL);

  caps_tenant.join();
  acc_tenant.join();
  bms_tenant.join();
  server.stop();
  for (pid_t pid : pool) reap(pid);

  expect_identical(caps_solo, caps_res);
  expect_identical(acc_solo, acc_res);
  expect_identical(bms_solo, bms_res);
}

// --------------------------------------------------------------------------
// Admission control
// --------------------------------------------------------------------------

TEST(CampaignServerTest, FullJobTableAnswersRejectNotHang) {
  ServerConfig sc;
  sc.max_jobs = 1;
  CampaignServer server{sc};
  server.start();

  // First tenant occupies the only slot...
  Channel first(tcp_connect(kHost, server.port()));
  ASSERT_TRUE(first.send_frame(MsgType::kSubmit, encode_submit(tiny_submit("a"))));
  auto accept = first.wait_frame(5000);
  ASSERT_TRUE(accept.has_value());
  ASSERT_EQ(accept->type, MsgType::kAccept);
  const std::uint64_t job = decode_accept(accept->payload).job;

  // ...so the second SUBMIT is rejected explicitly, within the timeout.
  Channel second(tcp_connect(kHost, server.port()));
  ASSERT_TRUE(second.send_frame(MsgType::kSubmit, encode_submit(tiny_submit("b"))));
  auto reject = second.wait_frame(5000);
  ASSERT_TRUE(reject.has_value()) << "a full queue must answer, not hang";
  ASSERT_EQ(reject->type, MsgType::kReject);
  EXPECT_NE(decode_reject(reject->payload).reason.find("full"), std::string::npos);

  // Releasing the admitted job frees the slot for the next tenant.
  ASSERT_TRUE(first.send_frame(MsgType::kRelease, encode_job(JobMsg{job})));
  for (int attempt = 0;; ++attempt) {
    Channel retry(tcp_connect(kHost, server.port()));
    ASSERT_TRUE(retry.send_frame(MsgType::kSubmit, encode_submit(tiny_submit("c"))));
    auto reply = retry.wait_frame(5000);
    ASSERT_TRUE(reply.has_value());
    if (reply->type == MsgType::kAccept) break;
    ASSERT_EQ(reply->type, MsgType::kReject);  // RELEASE still in flight
    ASSERT_LT(attempt, 50) << "slot was never freed";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  server.stop();
}

TEST(CampaignServerTest, ClientModeSurfacesRejectAsACleanError) {
  ServerConfig sc;
  sc.max_jobs = 0;  // everything is rejected
  CampaignServer server{sc};
  server.start();

  DistConfig dc;
  dc.campaign.runs = 4;
  dc.server_host = kHost;
  dc.server_port = server.port();
  DistCampaign campaign([] { return std::make_unique<CapsScenario>(CapsConfig{}); }, dc);
  try {
    (void)campaign.run();
    FAIL() << "a rejected submission must not succeed";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("rejected"), std::string::npos) << e.what();
  }
  server.stop();
}

// --------------------------------------------------------------------------
// Metrics scrape endpoint
// --------------------------------------------------------------------------

TEST(CampaignServerTest, MetricsScrapeServesNameSortedRender) {
  ServerConfig sc;
  CampaignServer server{sc};
  server.start();

  const int fd = tcp_connect(kHost, server.port());
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  server.stop();

  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("server.jobs_active"), std::string::npos) << response;
  EXPECT_NE(response.find("server.workers_alive"), std::string::npos) << response;
  // The registry renders name-sorted, so the scrape is deterministic.
  EXPECT_LT(response.find("server.jobs_active"), response.find("server.workers_alive"));
}

// --------------------------------------------------------------------------
// Wedged-peer supervision
// --------------------------------------------------------------------------

TEST(CampaignServerTest, WorkerStuckMidFrameIsDropped) {
  // A peer that registers and then trickles half a frame must be dropped at
  // the heartbeat deadline — a truncated tail can never park the server's
  // reassembly buffer (or a tenant's campaign) forever.
  ServerConfig sc;
  sc.heartbeat_timeout_ms = 200;
  CampaignServer server{sc};
  server.start();

  Channel worker(tcp_connect(kHost, server.port()));
  RegisterMsg reg;
  reg.pid = 424242;
  ASSERT_TRUE(worker.send_frame(MsgType::kRegister, encode_register(reg)));

  const std::string wire =
      encode_frame(MsgType::kHeartbeat, "{\"kind\":\"heartbeat\",\"runs_done\":1}");
  ASSERT_GT(::send(worker.fd(), wire.data(), wire.size() / 2, MSG_NOSIGNAL), 0);

  const auto frame = worker.wait_frame(3000);
  EXPECT_FALSE(frame.has_value());
  EXPECT_FALSE(worker.open()) << "server kept a peer stuck mid-frame alive past the deadline";
  server.stop();
}

}  // namespace

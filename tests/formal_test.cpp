// Formal-module tests: the DPLL solver on classic formulas, Tseitin
// netlist encoding consistency against the concrete evaluator, stimulus
// justification, and miter-based ATPG — including the UNSAT proof that a
// TMR voter masks all single internal faults (the "protection bypass"
// capability of paper Sec. 3.4).

#include <gtest/gtest.h>

#include "vps/formal/atpg.hpp"
#include "vps/formal/sat.hpp"
#include "vps/gate/builders.hpp"
#include "vps/support/rng.hpp"

namespace {

using namespace vps::formal;
using namespace vps::gate;

TEST(Sat, TrivialSatAndUnsat) {
  SatSolver s;
  const auto a = s.new_variable();
  const auto b = s.new_variable();
  s.add_binary(Lit::pos(a), Lit::pos(b));
  s.add_unit(Lit::neg(a));
  const auto model = s.solve();
  ASSERT_TRUE(model.has_value());
  EXPECT_FALSE(model->value(a));
  EXPECT_TRUE(model->value(b));

  SatSolver u;
  const auto x = u.new_variable();
  u.add_unit(Lit::pos(x));
  u.add_unit(Lit::neg(x));
  EXPECT_FALSE(u.solve().has_value());
}

TEST(Sat, PigeonholeThreeIntoTwoIsUnsat) {
  // 3 pigeons, 2 holes: p[i][h] with per-pigeon at-least-one and per-hole
  // at-most-one constraints — a classic small UNSAT instance.
  SatSolver s;
  std::uint32_t p[3][2];
  for (auto& pigeon : p) {
    for (auto& var : pigeon) var = s.new_variable();
  }
  for (const auto& pigeon : p) s.add_binary(Lit::pos(pigeon[0]), Lit::pos(pigeon[1]));
  for (int h = 0; h < 2; ++h) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        s.add_binary(Lit::neg(p[i][h]), Lit::neg(p[j][h]));
      }
    }
  }
  EXPECT_FALSE(s.solve().has_value());
  EXPECT_GT(s.decisions(), 0u);
}

TEST(Sat, ModelSatisfiesAllClauses) {
  // Random 3-SAT below the phase transition should be satisfiable and the
  // returned model must satisfy every clause.
  vps::support::Xorshift rng(11);
  SatSolver s;
  constexpr std::uint32_t kVars = 20;
  for (std::uint32_t v = 0; v < kVars; ++v) (void)s.new_variable();
  std::vector<Clause> clauses;
  for (int c = 0; c < 40; ++c) {  // ratio 2.0 — comfortably SAT
    Clause clause;
    for (int k = 0; k < 3; ++k) {
      const auto var = static_cast<std::uint32_t>(1 + rng.index(kVars));
      clause.push_back(rng.chance(0.5) ? Lit::pos(var) : Lit::neg(var));
    }
    clauses.push_back(clause);
    s.add_clause(clause);
  }
  const auto model = s.solve();
  ASSERT_TRUE(model.has_value());
  for (const auto& clause : clauses) {
    bool satisfied = false;
    for (const Lit l : clause) satisfied |= model->value(l.var()) == l.positive();
    EXPECT_TRUE(satisfied);
  }
}

TEST(Encoding, AgreesWithConcreteEvaluatorOnRandomCones) {
  // Encode the 8-bit comparator; for random input assignments forced via
  // unit clauses, the SAT model must reproduce the evaluator's outputs.
  const auto circuit = build_airbag_comparator(8, 200, /*tmr=*/false);
  Evaluator eval(circuit.netlist);
  vps::support::Xorshift rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const std::uint64_t v = rng.uniform_u64(0, 255);
    SatSolver solver;
    const auto enc = encode_netlist(solver, circuit.netlist);
    for (std::size_t i = 0; i < circuit.accel_inputs.size(); ++i) {
      solver.add_unit(enc.lit(circuit.accel_inputs[i], ((v >> i) & 1u) != 0));
    }
    const auto model = solver.solve();
    ASSERT_TRUE(model.has_value());
    eval.set_input_word(circuit.accel_inputs, v);
    eval.evaluate();
    EXPECT_EQ(model->value(enc.net_var[circuit.fire]), eval.value(circuit.fire)) << v;
  }
}

TEST(Justify, FindsFiringStimulusAndProvesImpossible) {
  const auto circuit = build_airbag_comparator(8, 200, false);
  // Find an input that fires the airbag.
  const auto stim = justify(circuit.netlist, circuit.fire, true);
  ASSERT_TRUE(stim.has_value());
  EXPECT_GT(stim->input_value, 200u);
  // And one that keeps it quiet.
  const auto quiet = justify(circuit.netlist, circuit.fire, false);
  ASSERT_TRUE(quiet.has_value());
  EXPECT_LE(quiet->input_value, 200u);

  // threshold 255: firing is impossible — the solver proves it.
  const auto impossible = build_airbag_comparator(8, 255, false);
  EXPECT_FALSE(justify(impossible.netlist, impossible.fire, true).has_value());
}

TEST(Atpg, GeneratedVectorActuallyDetectsTheFault) {
  Netlist nl;
  const Word a = input_word(nl, "a", 4);
  const Word b = input_word(nl, "b", 4);
  const Word sum = ripple_adder(nl, a, b, true);
  for (std::size_t i = 0; i < sum.size(); ++i) nl.mark_output("s" + std::to_string(i), sum[i]);

  FaultSimulator fsim(nl);
  vps::support::Xorshift rng(17);
  int verified = 0;
  for (const auto& site : fsim.enumerate_faults()) {
    if (!rng.chance(0.5)) continue;  // sample the site population
    const auto result = generate_test(nl, site);
    if (result.status != AtpgResult::Status::kDetected) continue;
    // Replay the vector on the concrete fault simulator: golden vs faulty
    // responses must differ.
    Evaluator golden(nl), faulty(nl);
    faulty.inject_stuck_at(site.net, site.stuck_value);
    const TestVector tv{result.test_vector, 0};
    EXPECT_NE(fsim.response(golden, tv), fsim.response(faulty, tv))
        << "ATPG vector failed to detect stuck-" << site.stuck_value << " on net " << site.net;
    ++verified;
  }
  EXPECT_GT(verified, 20);
}

TEST(Atpg, ProvesTmrMasksAllSingleReplicaFaults) {
  // The paper's protection-bypass question, answered formally: for the TMR
  // comparator, every stuck-at inside a single replica is UNTESTABLE at the
  // output (UNSAT miter) — a proof, not a sampling argument.
  const auto tmr = build_airbag_comparator(4, 9, /*tmr=*/true);
  std::size_t untestable = 0, testable = 0;
  for (NetId net = 0; net < tmr.voter_start; ++net) {
    bool is_input = false;
    for (const NetId in : tmr.accel_inputs) is_input |= net == in;
    if (is_input) continue;  // shared inputs are single points of failure
    for (const bool sv : {false, true}) {
      const auto result = generate_test(tmr.netlist, {net, sv});
      if (result.status == AtpgResult::Status::kUntestable) {
        ++untestable;
      } else {
        ++testable;
      }
    }
  }
  EXPECT_EQ(testable, 0u) << "a single replica fault escaped the voter";
  EXPECT_GT(untestable, 50u);

  // Control: voter-output faults ARE testable.
  const auto out_fault = generate_test(tmr.netlist, {tmr.fire, true});
  EXPECT_EQ(out_fault.status, AtpgResult::Status::kDetected);
}

TEST(Atpg, CampaignMatchesExhaustiveFaultSimulation) {
  // On the plain comparator, the ATPG verdicts must agree with exhaustive
  // fault simulation: detected faults == faults detectable by the full
  // vector set; untestable faults == residual undetected ones.
  Netlist nl;
  const Word a = input_word(nl, "a", 4);
  const NetId gt = greater_than(nl, a, constant_word(nl, 9, 4));
  nl.mark_output("gt", gt);

  const auto campaign = run_atpg(nl);
  FaultSimulator fsim(nl);
  std::vector<TestVector> all;
  for (std::uint64_t v = 0; v < 16; ++v) all.push_back({v, 0});
  const auto exhaustive = fsim.run(all);

  EXPECT_EQ(campaign.total_faults, exhaustive.total_faults);
  EXPECT_EQ(campaign.detected, exhaustive.detected);
  EXPECT_EQ(campaign.proven_untestable, exhaustive.undetected.size());

  // The generated test set must itself achieve full detectable coverage.
  std::vector<TestVector> generated;
  for (const auto v : campaign.test_set) generated.push_back({v, 0});
  const auto replay = fsim.run(generated);
  EXPECT_EQ(replay.detected, campaign.detected);
  EXPECT_LE(campaign.test_set.size(), 16u);
}

}  // namespace

// Snapshot-and-fork replay equivalence: for every registry scenario, a
// faulty replay forked from a cached golden epoch snapshot must be bitwise
// identical — Observation fields, provenance DAGs, derived campaign metrics
// — to a full from-scratch replay, at any worker count. This is the CI
// guard for the replay engine's core contract (see DESIGN.md).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "vps/apps/registry.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/fault/scenario.hpp"
#include "vps/obs/provenance.hpp"
#include "vps/support/rng.hpp"

namespace {

using namespace vps;
using fault::CampaignConfig;
using fault::FaultDescriptor;
using fault::Observation;
using sim::Time;

void expect_identical(const Observation& full, const Observation& forked,
                      const std::string& context) {
  EXPECT_EQ(full.output_signature, forked.output_signature) << context;
  EXPECT_EQ(full.completed, forked.completed) << context;
  EXPECT_EQ(full.hazard, forked.hazard) << context;
  EXPECT_EQ(full.detected, forked.detected) << context;
  EXPECT_EQ(full.corrected, forked.corrected) << context;
  EXPECT_EQ(full.resets, forked.resets) << context;
  EXPECT_EQ(full.deadline_misses, forked.deadline_misses) << context;
  ASSERT_EQ(full.provenance.size(), forked.provenance.size()) << context;
  for (std::size_t i = 0; i < full.provenance.size(); ++i) {
    // The JSON encoding covers every node field (site, kind, timestamp,
    // parent, depth), so string equality is a bitwise DAG comparison.
    EXPECT_EQ(obs::provenance_to_json(full.provenance[i]),
              obs::provenance_to_json(forked.provenance[i]))
        << context << " provenance[" << i << "]";
  }
}

/// Drives the same generated fault list through two scenario instances —
/// one with snapshot forking, one forced to full replays — and requires
/// bit-identical observations. Faults are drawn by the campaign's own
/// generator so the injection times span the whole run (early injections
/// exercise the full-replay fallback, late ones the deep-epoch forks).
void check_scenario(const std::string& spec, std::size_t runs, std::uint64_t seed) {
  auto forked = apps::make_scenario(spec);
  auto full = apps::make_scenario(spec);
  ASSERT_NE(forked, nullptr);
  ASSERT_NE(full, nullptr);
  forked->set_snapshot_replay(true);
  full->set_snapshot_replay(false);

  CampaignConfig config;
  config.runs = runs;
  config.seed = seed;
  fault::CampaignState state(full->fault_types(), full->duration(), config);

  const Observation golden_full = full->run(nullptr, seed);
  const Observation golden_forked = forked->run(nullptr, seed);
  expect_identical(golden_full, golden_forked, spec + " golden");

  const support::Xorshift base(seed);
  for (std::size_t run = 0; run < runs; ++run) {
    support::Xorshift run_rng = base.fork(run);
    const FaultDescriptor fault = state.generate(run, run_rng);
    const Observation obs_full = full->run(&fault, seed);
    const Observation obs_forked = forked->run(&fault, seed);
    expect_identical(obs_full, obs_forked,
                     spec + " run " + std::to_string(run) + " " + fault.to_string());
  }
}

TEST(SnapshotReplay, CapsNormalProtected) { check_scenario("caps:normal:protected", 24, 42); }

TEST(SnapshotReplay, CapsCrashUnprotected) { check_scenario("caps:crash:unprotected", 24, 7); }

TEST(SnapshotReplay, CapsCrashProtectedEccProvenance) {
  check_scenario("caps:crash:protected:ecc:prov", 24, 1234);
}

TEST(SnapshotReplay, CapsNormalUnprotectedProvenance) {
  check_scenario("caps:normal:unprotected:prov", 16, 99);
}

TEST(SnapshotReplay, Acc) { check_scenario("acc", 24, 42); }

TEST(SnapshotReplay, BmsRunawayProvenance) { check_scenario("bms:runaway:quick:prov", 16, 42); }

TEST(SnapshotReplay, BmsNominal) { check_scenario("bms:nominal:quick", 16, 7); }

void expect_same_records(const fault::CampaignResult& want, const fault::CampaignResult& got,
                         const std::string& context) {
  ASSERT_EQ(want.records.size(), got.records.size()) << context;
  for (std::size_t i = 0; i < want.records.size(); ++i) {
    EXPECT_EQ(want.records[i].outcome, got.records[i].outcome) << context << " run=" << i;
    EXPECT_EQ(want.records[i].fault.to_string(), got.records[i].fault.to_string())
        << context << " run=" << i;
    ASSERT_EQ(want.records[i].provenance.size(), got.records[i].provenance.size())
        << context << " run=" << i;
    for (std::size_t p = 0; p < want.records[i].provenance.size(); ++p) {
      EXPECT_EQ(obs::provenance_to_json(want.records[i].provenance[p]),
                obs::provenance_to_json(got.records[i].provenance[p]))
          << context << " run=" << i;
    }
  }
  EXPECT_EQ(want.final_coverage, got.final_coverage) << context;
}

/// The sequential driver must produce identical records with forking on or
/// off — classification, learning and coverage fold identically.
TEST(SnapshotReplay, SequentialCampaignEquivalence) {
  const std::string spec = "caps:crash:protected:prov";
  CampaignConfig config;
  config.runs = 16;
  config.seed = 11;

  config.snapshot_replay = false;
  auto full_scenario = apps::make_scenario(spec);
  fault::Campaign reference(*full_scenario, config);
  const fault::CampaignResult want = reference.run();

  config.snapshot_replay = true;
  auto forked_scenario = apps::make_scenario(spec);
  fault::Campaign campaign(*forked_scenario, config);
  expect_same_records(want, campaign.run(), "sequential fork-vs-full");
}

/// The parallel driver must produce identical aggregate results with
/// forking on or off, regardless of worker count: every replay forks from a
/// snapshot cached inside the worker's own scenario instance, so scheduling
/// cannot perturb results.
TEST(SnapshotReplay, ParallelCampaignEquivalenceAcrossWorkers) {
  const std::string spec = "caps:crash:protected:prov";
  CampaignConfig base_config;
  base_config.runs = 16;
  base_config.seed = 11;

  CampaignConfig full_config = base_config;
  full_config.snapshot_replay = false;
  full_config.workers = 1;
  fault::ParallelCampaign reference([&spec] { return apps::make_scenario(spec); }, full_config);
  const fault::CampaignResult want = reference.run();

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    CampaignConfig config = base_config;
    config.snapshot_replay = true;
    config.workers = workers;
    fault::ParallelCampaign campaign([&spec] { return apps::make_scenario(spec); }, config);
    expect_same_records(want, campaign.run(), "workers=" + std::to_string(workers));
  }
}

}  // namespace

// ISS co-simulation property test: random straight-line AR32 programs are
// executed both by the ISS (on the full platform) and by a tiny host-side
// golden interpreter; the final register files must match exactly. This
// catches encode/decode/execute disagreements across the whole R/I-type
// instruction space, plus load/store widths against a mirrored memory.

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "vps/ecu/platform.hpp"
#include "vps/hw/isa.hpp"
#include "vps/support/rng.hpp"

namespace {

using namespace vps::hw;
using vps::support::Xorshift;

/// Host-side golden model of the AR32 ALU/memory subset (no control flow —
/// the random programs are straight-line so both sides stay in lockstep).
struct GoldenModel {
  std::array<std::uint32_t, kRegisterCount> regs{};
  std::vector<std::uint8_t> mem = std::vector<std::uint8_t>(4096, 0);

  void execute(std::uint32_t word) {
    const Decoded d = decode(word);
    const std::uint32_t a = regs[d.rs1];
    const std::uint32_t b = regs[d.rs2];
    const std::uint32_t rdv = regs[d.rd];
    auto wr = [&](std::uint32_t v) {
      if (d.rd != 0) regs[d.rd] = v;
    };
    switch (d.opcode) {
      case Opcode::kAdd: wr(a + b); break;
      case Opcode::kSub: wr(a - b); break;
      case Opcode::kAnd: wr(a & b); break;
      case Opcode::kOr: wr(a | b); break;
      case Opcode::kXor: wr(a ^ b); break;
      case Opcode::kShl: wr(a << (b & 31u)); break;
      case Opcode::kShr: wr(a >> (b & 31u)); break;
      case Opcode::kSra: wr(static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> (b & 31u))); break;
      case Opcode::kMul: wr(a * b); break;
      case Opcode::kSlt: wr(static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b) ? 1 : 0); break;
      case Opcode::kSltu: wr(a < b ? 1 : 0); break;
      case Opcode::kAddi: wr(a + static_cast<std::uint32_t>(d.simm())); break;
      case Opcode::kAndi: wr(a & d.uimm()); break;
      case Opcode::kOri: wr(a | d.uimm()); break;
      case Opcode::kXori: wr(a ^ d.uimm()); break;
      case Opcode::kShli: wr(a << (d.uimm() & 31u)); break;
      case Opcode::kShri: wr(a >> (d.uimm() & 31u)); break;
      case Opcode::kLui: wr(d.uimm() << 16); break;
      case Opcode::kSlti: wr(static_cast<std::int32_t>(a) < d.simm() ? 1 : 0); break;
      case Opcode::kLw: {
        const std::uint32_t addr = effective_address(a, d, 4);
        std::uint32_t v = 0;
        std::memcpy(&v, mem.data() + addr, 4);
        wr(v);
        break;
      }
      case Opcode::kLbu: wr(mem[effective_address(a, d, 1)]); break;
      case Opcode::kLb:
        wr(static_cast<std::uint32_t>(static_cast<std::int8_t>(mem[effective_address(a, d, 1)])));
        break;
      case Opcode::kLhu: {
        std::uint16_t v = 0;
        std::memcpy(&v, mem.data() + effective_address(a, d, 2), 2);
        wr(v);
        break;
      }
      case Opcode::kLh: {
        std::uint16_t v = 0;
        std::memcpy(&v, mem.data() + effective_address(a, d, 2), 2);
        wr(static_cast<std::uint32_t>(static_cast<std::int16_t>(v)));
        break;
      }
      case Opcode::kSw: {
        const std::uint32_t addr = effective_address(a, d, 4);
        std::memcpy(mem.data() + addr, &rdv, 4);
        break;
      }
      case Opcode::kSh: {
        const auto v = static_cast<std::uint16_t>(rdv);
        std::memcpy(mem.data() + effective_address(a, d, 2), &v, 2);
        break;
      }
      case Opcode::kSb: mem[effective_address(a, d, 1)] = static_cast<std::uint8_t>(rdv); break;
      default: break;
    }
  }

  /// The generator constrains base registers so this never goes out of range.
  static std::uint32_t effective_address(std::uint32_t base, const Decoded& d, std::uint32_t) {
    return base + static_cast<std::uint32_t>(d.simm());
  }
};

/// Generates one random straight-line instruction; loads/stores use r14 as
/// the (fixed) base pointer into a scratch region.
std::uint32_t random_instruction(Xorshift& rng) {
  static constexpr Opcode kAlu[] = {
      Opcode::kAdd,  Opcode::kSub,  Opcode::kAnd,  Opcode::kOr,   Opcode::kXor,
      Opcode::kShl,  Opcode::kShr,  Opcode::kSra,  Opcode::kMul,  Opcode::kSlt,
      Opcode::kSltu, Opcode::kAddi, Opcode::kAndi, Opcode::kOri,  Opcode::kXori,
      Opcode::kShli, Opcode::kShri, Opcode::kLui,  Opcode::kSlti};
  static constexpr Opcode kMem[] = {Opcode::kLw, Opcode::kLb,  Opcode::kLbu, Opcode::kLh,
                                    Opcode::kLhu, Opcode::kSw, Opcode::kSh,  Opcode::kSb};
  // rd/rs in r1..r12 (r13/r14 reserved: link + base pointer).
  const auto reg = [&rng] { return 1 + static_cast<unsigned>(rng.index(12)); };
  if (rng.chance(0.75)) {
    const Opcode op = kAlu[rng.index(std::size(kAlu))];
    // R-type ops read rs2 from bits [15:12]; keep that nibble inside
    // r1..r12 too (r14 differs between ISS and golden by construction).
    std::uint16_t imm = static_cast<std::uint16_t>(rng.next());
    imm = static_cast<std::uint16_t>((imm & 0x0FFF) | (reg() << 12));
    return encode_i(op, reg(), reg(), imm);
  }
  const Opcode op = kMem[rng.index(std::size(kMem))];
  // Aligned offset within the 1KiB scratch window at r14.
  const std::uint16_t offset = static_cast<std::uint16_t>(4 * rng.index(256));
  return encode_i(op, reg(), 14, offset);
}

class IssCosim : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IssCosim, RandomProgramsMatchGoldenModel) {
  Xorshift rng(GetParam());
  constexpr std::uint32_t kScratchBase = 0x2000;  // ISS-side scratch region
  constexpr int kInstructions = 400;

  // Build the program image: init r14, then random straight-line body, halt.
  std::vector<std::uint32_t> words;
  words.push_back(encode_i(Opcode::kLui, 14, 0, 0));
  words.push_back(encode_i(Opcode::kOri, 14, 14, kScratchBase));
  for (int i = 0; i < kInstructions; ++i) words.push_back(random_instruction(rng));
  words.push_back(encode_i(Opcode::kHalt, 0, 0, 0));

  // ISS side.
  vps::sim::Kernel kernel;
  vps::ecu::EcuPlatform ecu(kernel, "dut");
  for (std::size_t i = 0; i < words.size(); ++i) {
    ecu.ram().poke32(static_cast<std::uint32_t>(4 * i), words[i]);
  }
  kernel.run(vps::sim::Time::ms(50));
  ASSERT_EQ(ecu.cpu().state(), Cpu::State::kHalted);

  // Golden side: mirror the scratch region at offset 0 of its memory and
  // set the base register to 0 so effective addresses coincide.
  GoldenModel golden;
  golden.regs[14] = 0;
  for (std::size_t i = 2; i + 1 < words.size(); ++i) golden.execute(words[i]);

  for (int r = 1; r <= 12; ++r) {
    EXPECT_EQ(ecu.cpu().reg(r), golden.regs[static_cast<std::size_t>(r)])
        << "register r" << r << " diverged (seed " << GetParam() << ")";
  }
  for (std::uint32_t off = 0; off < 1024; ++off) {
    ASSERT_EQ(ecu.ram().peek(kScratchBase + off), golden.mem[off])
        << "memory diverged at offset " << off << " (seed " << GetParam() << ")";
  }
  EXPECT_EQ(ecu.cpu().stats().instructions, static_cast<std::uint64_t>(kInstructions) + 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IssCosim,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace

// Coverage machinery tests: bins, uniform partitioning, crosses, group
// aggregation, and the fault-space coverage model with hole queries.

#include <gtest/gtest.h>

#include "vps/coverage/coverage.hpp"
#include "vps/support/ensure.hpp"
#include "vps/support/rng.hpp"

namespace {

using namespace vps::coverage;

TEST(CoverpointTest, BinsHitAndHoles) {
  Coverpoint cp("speed");
  cp.add_bin("low", 0, 49);
  cp.add_bin("mid", 50, 99);
  cp.add_bin("high", 100, 200);
  EXPECT_EQ(cp.coverage(), 0.0);
  cp.sample(10);
  cp.sample(20);
  cp.sample(150);
  EXPECT_EQ(cp.bins_hit(), 2u);
  EXPECT_NEAR(cp.coverage(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(cp.hits(0), 2u);
  EXPECT_EQ(cp.hits(2), 1u);
  const auto holes = cp.holes();
  ASSERT_EQ(holes.size(), 1u);
  EXPECT_EQ(holes[0], "mid");
  cp.sample(999);  // outside all bins: ignored
  EXPECT_EQ(cp.bins_hit(), 2u);
}

TEST(CoverpointTest, UniformBinsPartitionExactly) {
  Coverpoint cp("x");
  cp.add_uniform_bins(0, 99, 10);
  ASSERT_EQ(cp.bin_count(), 10u);
  // Every value in range maps to exactly one bin.
  for (std::int64_t v = 0; v < 100; ++v) {
    EXPECT_NE(cp.bin_of(v), Coverpoint::npos) << v;
  }
  EXPECT_EQ(cp.bin_of(5), 0u);
  EXPECT_EQ(cp.bin_of(95), 9u);
  for (std::int64_t v = 0; v < 100; ++v) cp.sample(v);
  EXPECT_EQ(cp.coverage(), 1.0);
}

TEST(CoverpointTest, RejectsEmptyBin) {
  Coverpoint cp("x");
  EXPECT_THROW(cp.add_bin("bad", 10, 5), vps::support::InvariantError);
}

TEST(CrossTest, MatrixCoverage) {
  Coverpoint a("a"), b("b");
  a.add_uniform_bins(0, 1, 2);
  b.add_uniform_bins(0, 2, 3);
  Cross x("axb", a, b);
  EXPECT_EQ(x.bin_count(), 6u);
  x.sample(0, 0);
  x.sample(0, 0);
  x.sample(1, 2);
  EXPECT_EQ(x.bins_hit(), 2u);
  EXPECT_EQ(x.hits(0, 0), 2u);
  EXPECT_EQ(x.hits(1, 2), 1u);
  EXPECT_NEAR(x.coverage(), 2.0 / 6.0, 1e-12);
  EXPECT_EQ(x.holes().size(), 4u);
}

TEST(CovergroupTest, AggregateAndReport) {
  Covergroup g("cg");
  auto& a = g.add_coverpoint("a");
  a.add_uniform_bins(0, 9, 2);
  auto& b = g.add_coverpoint("b");
  b.add_uniform_bins(0, 9, 2);
  g.add_cross("ab", a, b);
  a.sample(0);
  b.sample(0);
  // point a: 1/2, point b: 1/2, cross: sampled separately -> 0.
  EXPECT_NEAR(g.coverage(), (0.5 + 0.5 + 0.0) / 3.0, 1e-12);
  const auto rep = g.report();
  EXPECT_NE(rep.find("covergroup cg"), std::string::npos);
  EXPECT_NE(rep.find("TOTAL"), std::string::npos);
  EXPECT_EQ(&g.point("a"), &a);
  EXPECT_THROW((void)g.point("zz"), vps::support::InvariantError);
}

TEST(FaultSpace, RandomSamplingConvergesToFullCoverage) {
  FaultSpaceCoverage cov(4, 8, 5);
  vps::support::Xorshift rng(9);
  EXPECT_EQ(cov.coverage(), 0.0);
  for (int i = 0; i < 2000; ++i) {
    cov.sample(rng.index(4), rng.index(8), rng.uniform());
  }
  EXPECT_EQ(cov.coverage(), 1.0);
  EXPECT_TRUE(cov.class_location_holes().empty());
  EXPECT_EQ(cov.samples(), 2000u);
}

TEST(FaultSpace, HolesIdentifyUnexercisedCombinations) {
  FaultSpaceCoverage cov(2, 2, 2);
  cov.sample(0, 0, 0.1);
  cov.sample(1, 1, 0.9);
  const auto holes = cov.class_location_holes();
  ASSERT_EQ(holes.size(), 2u);
  EXPECT_EQ(holes[0], (std::pair<std::size_t, std::size_t>{0, 1}));
  EXPECT_EQ(holes[1], (std::pair<std::size_t, std::size_t>{1, 0}));
  EXPECT_LT(cov.coverage(), 1.0);
}

TEST(FaultSpace, TimeFractionClampsToValidWindow) {
  FaultSpaceCoverage cov(1, 1, 4);
  cov.sample(0, 0, -0.5);  // clamps to first window
  cov.sample(0, 0, 1.5);   // clamps to last window
  cov.sample(0, 0, 0.3);
  cov.sample(0, 0, 0.6);
  EXPECT_EQ(cov.coverage(), 1.0);
}

}  // namespace

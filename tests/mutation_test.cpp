// Mutation-analysis tests: registry semantics of every operator, schema
// activation/deactivation, coverage bookkeeping, the engine's kill logic,
// and the paper's qualification claim — a weak testbench (passing all its
// own checks) scores visibly lower than a strong one, and the mutation
// score discriminates where structural coverage does not (Coupling Effect /
// coverage-vs-mutation argument of Sec. 2.4).

#include <gtest/gtest.h>

#include <vector>

#include "vps/mutation/instrumented_models.hpp"
#include "vps/mutation/mutation.hpp"
#include "vps/support/ensure.hpp"

namespace {

using namespace vps::mutation;

TEST(Registry, OperatorsChangeSemanticsOnlyWhenActive) {
  MutationRegistry reg;
  const auto s_add = reg.add_site("add", {Operator::kAddToSub});
  const auto s_lt = reg.add_site("lt", {Operator::kLtToLe});
  const auto s_const = reg.add_site("c", {Operator::kConstZero, Operator::kConstPlus1});
  const auto s_stmt = reg.add_site("stmt", {Operator::kStmtDelete});
  const auto s_and = reg.add_site("and", {Operator::kAndToOr});

  EXPECT_EQ(reg.add(s_add, 4, 3), 7);
  EXPECT_FALSE(reg.lt(s_lt, 5, 5));
  EXPECT_EQ(reg.constant(s_const, 42), 42);
  EXPECT_TRUE(reg.alive(s_stmt));
  EXPECT_FALSE(reg.logical_and(s_and, true, false));

  reg.activate({s_add, Operator::kAddToSub});
  EXPECT_EQ(reg.add(s_add, 4, 3), 1);
  EXPECT_FALSE(reg.lt(s_lt, 5, 5));  // other sites unaffected

  reg.activate({s_lt, Operator::kLtToLe});
  EXPECT_EQ(reg.add(s_add, 4, 3), 7);  // previous mutant deactivated
  EXPECT_TRUE(reg.lt(s_lt, 5, 5));

  reg.activate({s_const, Operator::kConstZero});
  EXPECT_EQ(reg.constant(s_const, 42), 0);
  reg.activate({s_const, Operator::kConstPlus1});
  EXPECT_EQ(reg.constant(s_const, 42), 43);

  reg.activate({s_stmt, Operator::kStmtDelete});
  EXPECT_FALSE(reg.alive(s_stmt));

  reg.activate({s_and, Operator::kAndToOr});
  EXPECT_TRUE(reg.logical_and(s_and, true, false));

  reg.deactivate();
  EXPECT_EQ(reg.add(s_add, 4, 3), 7);
}

TEST(Registry, RejectsInapplicableOperator) {
  MutationRegistry reg;
  const auto s = reg.add_site("add", {Operator::kAddToSub});
  EXPECT_THROW(reg.activate({s, Operator::kMulToAdd}), vps::support::InvariantError);
  EXPECT_THROW(reg.activate({99, Operator::kAddToSub}), vps::support::InvariantError);
  EXPECT_THROW((void)reg.add_site("empty", {}), vps::support::InvariantError);
}

TEST(Registry, EnumerationAndCoverage) {
  MutationRegistry reg;
  const auto a = reg.add_site("a", {Operator::kAddToSub, Operator::kNegate});
  const auto b = reg.add_site("b", {Operator::kLtToLe});
  EXPECT_EQ(reg.enumerate_mutants().size(), 3u);

  reg.reset_coverage();
  EXPECT_EQ(reg.site_coverage(), 0.0);
  (void)reg.add(a, 1, 2);
  EXPECT_EQ(reg.site_coverage(), 0.5);
  (void)reg.lt(b, 1, 2);
  EXPECT_EQ(reg.site_coverage(), 1.0);
  EXPECT_EQ(reg.executions(a), 1u);
}

// Test suites of different quality for the deployment logic.
bool weak_suite(MutationRegistry& reg) {
  // One trivial scenario: big crash deploys. Never checks the negative
  // case, the exact threshold, or the debounce count.
  InstrumentedDeployLogic dut(reg);
  bool deployed = false;
  for (int i = 0; i < 5; ++i) deployed = dut.step(250);
  return deployed;
}

bool strong_suite(MutationRegistry& reg) {
  {  // crash deploys after exactly 3 samples
    InstrumentedDeployLogic dut(reg);
    if (dut.step(250)) return false;
    if (dut.step(250)) return false;
    if (!dut.step(250)) return false;
  }
  {  // normal driving never deploys
    InstrumentedDeployLogic dut(reg);
    for (int i = 0; i < 20; ++i) {
      if (dut.step(10)) return false;
    }
  }
  {  // boundary: exactly threshold is NOT above threshold
    InstrumentedDeployLogic dut(reg);
    for (int i = 0; i < 5; ++i) {
      if (dut.step(200)) return false;
    }
  }
  {  // boundary: threshold+1 IS above threshold and deploys after 3 samples
    InstrumentedDeployLogic dut(reg);
    (void)dut.step(201);
    (void)dut.step(201);
    if (!dut.step(201)) return false;
  }
  {  // interruption resets the consecutive counter
    InstrumentedDeployLogic dut(reg);
    (void)dut.step(250);
    (void)dut.step(250);
    (void)dut.step(10);  // reset
    (void)dut.step(250);
    if (dut.step(250) && !dut.deployed()) return false;
    if (dut.deployed()) return false;  // only 2 consecutive after reset
    if (!dut.step(250)) return false;  // third consecutive -> deploy
  }
  return true;
}

TEST(Engine, StrongSuiteKillsMoreThanWeak) {
  MutationRegistry weak_reg;
  bool weak_built = false;
  // Suites construct the DUT inside, so sites are registered lazily on
  // first call; build once before enumerating.
  auto weak_fn = [&] {
    weak_built = true;
    return weak_suite(weak_reg);
  };
  // Pre-register sites by constructing a throwaway DUT.
  { InstrumentedDeployLogic warmup(weak_reg); (void)warmup; }
  MutationEngine weak_engine(weak_reg);
  const auto weak_report = weak_engine.run(weak_fn);

  MutationRegistry strong_reg;
  { InstrumentedDeployLogic warmup(strong_reg); (void)warmup; }
  MutationEngine strong_engine(strong_reg);
  const auto strong_report = strong_engine.run([&] { return strong_suite(strong_reg); });

  EXPECT_TRUE(weak_built);
  EXPECT_EQ(weak_report.total_mutants, strong_report.total_mutants);
  EXPECT_GT(strong_report.score(), weak_report.score() + 0.2)
      << "strong suite must kill substantially more mutants\nweak:\n"
      << weak_report.render(weak_reg) << "strong:\n" << strong_report.render(strong_reg);
  EXPECT_GT(strong_report.score(), 0.8);
}

TEST(Engine, CoverageDoesNotDiscriminateButMutationDoes) {
  // Both suites execute every site (100% structural coverage), yet their
  // mutation scores differ — the paper's argument for mutation analysis as
  // the stronger testbench metric.
  MutationRegistry weak_reg;
  { InstrumentedDeployLogic warmup(weak_reg); (void)warmup; }
  MutationEngine weak_engine(weak_reg);
  // The weak suite must also touch the reset branch to reach full coverage.
  const auto weak_report = weak_engine.run([&] {
    InstrumentedDeployLogic dut(weak_reg);
    (void)dut.step(10);  // touches the reset statement site
    bool deployed = false;
    for (int i = 0; i < 5; ++i) deployed = dut.step(250);
    return deployed;
  });

  MutationRegistry strong_reg;
  { InstrumentedDeployLogic warmup(strong_reg); (void)warmup; }
  MutationEngine strong_engine(strong_reg);
  const auto strong_report = strong_engine.run([&] { return strong_suite(strong_reg); });

  EXPECT_DOUBLE_EQ(weak_report.site_coverage, 1.0);
  EXPECT_DOUBLE_EQ(strong_report.site_coverage, 1.0);
  EXPECT_GT(strong_report.score(), weak_report.score());
}

TEST(Engine, RejectsSuitesFailingOnCleanModel) {
  MutationRegistry reg;
  { InstrumentedDeployLogic warmup(reg); (void)warmup; }
  MutationEngine engine(reg);
  EXPECT_THROW((void)engine.run([] { return false; }), vps::support::InvariantError);
}

TEST(Plausibility, ModelBehavesAndIsQualifiable) {
  MutationRegistry reg;
  InstrumentedPlausibility dut(reg, 10, 90, 2);
  EXPECT_FALSE(dut.step(50));
  EXPECT_FALSE(dut.step(95));   // first violation
  EXPECT_TRUE(dut.step(95));    // second consecutive -> latched
  dut.reset();
  EXPECT_FALSE(dut.step(5));
  EXPECT_FALSE(dut.step(50));   // interruption clears
  EXPECT_FALSE(dut.step(5));
  EXPECT_TRUE(dut.step(5));

  MutationEngine engine(reg);
  const auto report = engine.run([&] {
    InstrumentedPlausibility fresh(reg, 10, 90, 2);
    // (the fresh DUT adds sites; qualify only the behaviours below)
    if (fresh.step(50)) return false;
    if (fresh.step(95)) return false;
    if (!fresh.step(95)) return false;
    InstrumentedPlausibility low(reg, 10, 90, 2);
    if (low.step(9) || !((void)low.step(9), low.step(9))) {
      // two consecutive below-range violations must latch
    }
    InstrumentedPlausibility bounds(reg, 10, 90, 2);
    if (bounds.step(10) || bounds.step(90) || bounds.step(10)) return false;  // inclusive range
    return true;
  });
  EXPECT_GT(report.score(), 0.4);
  EXPECT_LT(report.live.size(), report.total_mutants);
}

}  // namespace

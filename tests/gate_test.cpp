// Gate-level substrate tests: netlist construction rules, evaluation,
// sequential elements, circuit builders (exhaustive property sweeps), and
// stuck-at fault simulation.

#include <gtest/gtest.h>

#include "vps/gate/builders.hpp"
#include "vps/gate/fault_sim.hpp"
#include "vps/gate/netlist.hpp"
#include "vps/support/ensure.hpp"
#include "vps/support/rng.hpp"

namespace {

using namespace vps::gate;

TEST(Netlist, BasicGateEvaluation) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId and_ = nl.add(GateKind::kAnd, a, b);
  const NetId or_ = nl.add(GateKind::kOr, a, b);
  const NetId xor_ = nl.add(GateKind::kXor, a, b);
  const NetId not_ = nl.add(GateKind::kNot, a);
  const NetId nand_ = nl.add(GateKind::kNand, a, b);
  const NetId nor_ = nl.add(GateKind::kNor, a, b);
  const NetId xnor_ = nl.add(GateKind::kXnor, a, b);

  Evaluator ev(nl);
  for (int av = 0; av < 2; ++av) {
    for (int bv = 0; bv < 2; ++bv) {
      ev.set_input(a, av != 0);
      ev.set_input(b, bv != 0);
      ev.evaluate();
      EXPECT_EQ(ev.value(and_), av && bv);
      EXPECT_EQ(ev.value(or_), av || bv);
      EXPECT_EQ(ev.value(xor_), av != bv);
      EXPECT_EQ(ev.value(not_), !av);
      EXPECT_EQ(ev.value(nand_), !(av && bv));
      EXPECT_EQ(ev.value(nor_), !(av || bv));
      EXPECT_EQ(ev.value(xnor_), av == bv);
    }
  }
}

TEST(Netlist, MuxSelects) {
  Netlist nl;
  const NetId s = nl.add_input("s");
  const NetId d0 = nl.add_input("d0");
  const NetId d1 = nl.add_input("d1");
  const NetId y = nl.add(GateKind::kMux, s, d0, d1);
  Evaluator ev(nl);
  ev.set_input(d0, false);
  ev.set_input(d1, true);
  ev.set_input(s, false);
  ev.evaluate();
  EXPECT_FALSE(ev.value(y));
  ev.set_input(s, true);
  ev.evaluate();
  EXPECT_TRUE(ev.value(y));
}

TEST(Netlist, TopologicalOrderEnforced) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  EXPECT_THROW(nl.add(GateKind::kAnd, a, 99), vps::support::InvariantError);
  EXPECT_THROW(nl.add_input("a"), vps::support::InvariantError);  // duplicate name
}

TEST(Netlist, DffHoldsStateAcrossClocks) {
  // Toggle flip-flop: D = NOT Q.
  Netlist nl;
  const NetId q = nl.add_dff();
  const NetId d = nl.add(GateKind::kNot, q);
  nl.set_dff_input(q, d);
  Evaluator ev(nl);
  ev.reset();
  ev.evaluate();
  EXPECT_FALSE(ev.value(q));
  ev.clock();
  EXPECT_TRUE(ev.value(q));
  ev.clock();
  EXPECT_FALSE(ev.value(q));
  ev.clock();
  EXPECT_TRUE(ev.value(q));
}

TEST(Netlist, UnconnectedDffIsAnError) {
  Netlist nl;
  (void)nl.add_dff();
  Evaluator ev(nl);
  ev.evaluate();
  EXPECT_THROW(ev.clock(), vps::support::InvariantError);
}

TEST(Netlist, StuckAtOverridesValue) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.add(GateKind::kBuf, a);
  Evaluator ev(nl);
  ev.inject_stuck_at(y, true);
  ev.set_input(a, false);
  ev.evaluate();
  EXPECT_TRUE(ev.value(y));
  ev.clear_faults();
  ev.evaluate();
  EXPECT_FALSE(ev.value(y));
}

class AdderSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AdderSweep, MatchesIntegerAdditionExhaustively) {
  const std::size_t bits = GetParam();
  Netlist nl;
  const Word a = input_word(nl, "a", bits);
  const Word b = input_word(nl, "b", bits);
  const Word sum = ripple_adder(nl, a, b, /*with_carry_out=*/true);
  Evaluator ev(nl);
  const std::uint64_t limit = 1ULL << bits;
  for (std::uint64_t x = 0; x < limit; ++x) {
    for (std::uint64_t y = 0; y < limit; ++y) {
      ev.set_input_word(a, x);
      ev.set_input_word(b, y);
      ev.evaluate();
      EXPECT_EQ(ev.word(sum), x + y) << x << "+" << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderSweep, ::testing::Values(1, 2, 3, 4, 5));

class ComparatorSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ComparatorSweep, GreaterThanAndEqualsExhaustively) {
  const std::size_t bits = GetParam();
  Netlist nl;
  const Word a = input_word(nl, "a", bits);
  const Word b = input_word(nl, "b", bits);
  const NetId gt = greater_than(nl, a, b);
  const NetId eq = equals(nl, a, b);
  Evaluator ev(nl);
  const std::uint64_t limit = 1ULL << bits;
  for (std::uint64_t x = 0; x < limit; ++x) {
    for (std::uint64_t y = 0; y < limit; ++y) {
      ev.set_input_word(a, x);
      ev.set_input_word(b, y);
      ev.evaluate();
      EXPECT_EQ(ev.value(gt), x > y);
      EXPECT_EQ(ev.value(eq), x == y);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ComparatorSweep, ::testing::Values(1, 2, 4, 6));

TEST(Builders, MajorityVoterMasksSingleCorruption) {
  Netlist nl;
  const Word a = input_word(nl, "a", 4);
  const Word b = input_word(nl, "b", 4);
  const Word c = input_word(nl, "c", 4);
  const Word v = majority_voter(nl, a, b, c);
  Evaluator ev(nl);
  vps::support::Xorshift rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t good = rng.uniform_u64(0, 15);
    const std::uint64_t bad = rng.uniform_u64(0, 15);
    // Corrupt exactly one replica; the vote must still produce `good`.
    const int victim = static_cast<int>(rng.index(3));
    ev.set_input_word(a, victim == 0 ? bad : good);
    ev.set_input_word(b, victim == 1 ? bad : good);
    ev.set_input_word(c, victim == 2 ? bad : good);
    ev.evaluate();
    EXPECT_EQ(ev.word(v), good);
  }
}

TEST(Builders, ParityMatchesPopcount) {
  Netlist nl;
  const Word a = input_word(nl, "a", 8);
  const NetId p = parity(nl, a);
  Evaluator ev(nl);
  for (std::uint64_t x = 0; x < 256; ++x) {
    ev.set_input_word(a, x);
    ev.evaluate();
    EXPECT_EQ(ev.value(p), (__builtin_popcountll(x) & 1) != 0);
  }
}

TEST(Builders, RegisterWordPipelines) {
  Netlist nl;
  const Word q = register_word(nl, 4);
  const Word d = input_word(nl, "d", 4);
  connect_register(nl, q, d);
  Evaluator ev(nl);
  ev.reset();
  ev.set_input_word(d, 0xA);
  ev.evaluate();
  EXPECT_EQ(ev.word(q), 0u);  // not clocked yet
  ev.clock();
  EXPECT_EQ(ev.word(q), 0xAu);
  ev.set_input_word(d, 0x5);
  ev.evaluate();
  EXPECT_EQ(ev.word(q), 0xAu);  // holds until clocked
  ev.clock();
  EXPECT_EQ(ev.word(q), 0x5u);
}

TEST(AirbagCircuit, FiresExactlyAboveThreshold) {
  const auto c = build_airbag_comparator(8, 200, /*tmr=*/false);
  Evaluator ev(c.netlist);
  for (std::uint64_t accel = 0; accel < 256; ++accel) {
    ev.set_input_word(c.accel_inputs, accel);
    ev.evaluate();
    EXPECT_EQ(ev.value(c.fire), accel > 200) << accel;
  }
}

TEST(AirbagCircuit, TmrMasksAnySingleInternalStuckAt) {
  // Property from the paper's CAPS example: no single component failure may
  // trigger the airbag in normal operation. With TMR, any single stuck-at on
  // a *non-shared* net must not change the (non-firing) decision.
  const auto c = build_airbag_comparator(8, 200, /*tmr=*/true);
  Evaluator golden(c.netlist);
  const std::uint64_t accel = 100;  // normal operation: below threshold

  std::size_t masked = 0, unmasked = 0;
  for (NetId net = 0; net < c.voter_start; ++net) {
    // Skip the shared sensor input word; faults there — and anywhere in the
    // voter (nets >= voter_start) — are single points of failure by design.
    bool is_input = false;
    for (NetId in : c.accel_inputs) is_input |= net == in;
    if (is_input) continue;
    for (bool sv : {false, true}) {
      Evaluator ev(c.netlist);
      ev.inject_stuck_at(net, sv);
      ev.set_input_word(c.accel_inputs, accel);
      ev.evaluate();
      if (ev.value(c.fire)) {
        ++unmasked;
      } else {
        ++masked;
      }
    }
  }
  EXPECT_EQ(unmasked, 0u) << "TMR failed to mask a single stuck-at fault";
  EXPECT_GT(masked, 100u);

  // Control: the voter output itself IS a single point of failure.
  Evaluator ev(c.netlist);
  ev.inject_stuck_at(c.fire, true);
  ev.set_input_word(c.accel_inputs, accel);
  ev.evaluate();
  EXPECT_TRUE(ev.value(c.fire));
}

TEST(FaultSim, DetectsStuckAtWithExhaustiveVectors) {
  Netlist nl;
  const Word a = input_word(nl, "a", 3);
  const Word b = input_word(nl, "b", 3);
  const Word sum = ripple_adder(nl, a, b, true);
  for (std::size_t i = 0; i < sum.size(); ++i) nl.mark_output("s" + std::to_string(i), sum[i]);

  FaultSimulator fsim(nl);
  std::vector<TestVector> vectors;
  for (std::uint64_t v = 0; v < 64; ++v) vectors.push_back({v, 0});
  const auto result = fsim.run(vectors);
  EXPECT_EQ(result.total_faults, nl.fault_site_count());
  // Exhaustive vectors detect every non-redundant fault. The ripple adder
  // does contain redundant sites: the LSB stage is fed by a constant-zero
  // carry-in, so e.g. stuck-at-0 on `axb & carry_in` is undetectable. All
  // remaining coverage loss must stem from such constant-driven logic.
  EXPECT_GT(result.coverage(), 0.9);
  EXPECT_LT(result.undetected.size(), 10u);
  // Verify each undetected site is genuinely redundant by checking the
  // fault never changes the response for any vector (already established
  // by the simulator) AND sits in the constant-carry cone: its fault-free
  // value is constant across all vectors.
  Evaluator probe(nl);
  for (const auto& site : result.undetected) {
    bool first = true, constant_value = false, is_constant = true;
    for (const auto& v : vectors) {
      probe.reset();
      probe.set_input_word(nl.inputs(), v.input_value);
      probe.evaluate();
      if (first) {
        constant_value = probe.value(site.net);
        first = false;
      } else if (probe.value(site.net) != constant_value) {
        is_constant = false;
        break;
      }
    }
    EXPECT_TRUE(is_constant) << "undetected fault on a non-constant net " << site.net;
  }
}

TEST(FaultSim, FewVectorsGiveLowerCoverage) {
  Netlist nl;
  const Word a = input_word(nl, "a", 4);
  const Word b = input_word(nl, "b", 4);
  const NetId gt = greater_than(nl, a, b);
  nl.mark_output("gt", gt);
  FaultSimulator fsim(nl);
  const auto one = fsim.run({{0x00, 0}});
  std::vector<TestVector> many;
  for (std::uint64_t v = 0; v < 256; ++v) many.push_back({v, 0});
  const auto full = fsim.run(many);
  EXPECT_LT(one.coverage(), full.coverage());
  EXPECT_GT(full.coverage(), 0.9);
}

TEST(FaultSim, EmptyFaultListHasZeroCoverage) {
  // A netlist with no gates enumerates no fault sites; "no site covered"
  // must read as 0 % coverage, never a vacuous 100 %.
  FaultSimResult empty;
  EXPECT_EQ(empty.total_faults, 0u);
  EXPECT_EQ(empty.coverage(), 0.0);

  Netlist nl;
  FaultSimulator fsim(nl);
  const auto result = fsim.run({{0, 0}});
  EXPECT_EQ(result.total_faults, 0u);
  EXPECT_EQ(result.coverage(), 0.0);
}

TEST(FaultSim, GoldenResponsesComputedOncePerSweep) {
  // The golden run must contribute exactly vectors.size() simulations to
  // the count — not vectors.size() per fault, the regression the hoisting
  // fixed. Fault contributions are bounded by faults * vectors, so any
  // per-fault golden recomputation pushes the total past the bound.
  Netlist nl;
  const Word a = input_word(nl, "a", 3);
  const Word b = input_word(nl, "b", 3);
  const Word sum = ripple_adder(nl, a, b, true);
  for (std::size_t i = 0; i < sum.size(); ++i) nl.mark_output("s" + std::to_string(i), sum[i]);

  FaultSimulator fsim(nl);
  std::vector<TestVector> vectors;
  for (std::uint64_t v = 0; v < 16; ++v) vectors.push_back({v * 5, 0});
  const auto result = fsim.run(vectors);
  EXPECT_LE(result.simulations, vectors.size() * (1 + result.total_faults));
  EXPECT_GE(result.simulations, vectors.size() + result.total_faults);  // golden + >=1 each
}

/// Reference serial implementation (the pre-PPSFP per-fault loop) used to
/// pin the word-parallel engine: classifications, undetected order and the
/// simulations count must match bit for bit.
FaultSimResult serial_reference(const Netlist& nl, const std::vector<TestVector>& vectors) {
  FaultSimulator fsim(nl);
  FaultSimResult result;
  const auto sites = fsim.enumerate_faults();
  result.total_faults = sites.size();
  std::vector<std::uint64_t> golden;
  {
    Evaluator eval(nl);
    for (const auto& v : vectors) {
      eval.reset();
      golden.push_back(fsim.response(eval, v));
      ++result.simulations;
    }
  }
  for (const auto& site : sites) {
    Evaluator eval(nl);
    eval.inject_stuck_at(site.net, site.stuck_value);
    bool detected = false;
    for (std::size_t i = 0; i < vectors.size() && !detected; ++i) {
      eval.reset();
      detected = fsim.response(eval, vectors[i]) != golden[i];
      ++result.simulations;
    }
    if (detected) {
      ++result.detected;
    } else {
      result.undetected.push_back(site);
    }
  }
  return result;
}

TEST(FaultSim, WordParallelMatchesSerialReference) {
  // Combinational (comparator), sequential (registered adder via clocked
  // vectors) and >64-fault-site designs — every case where batching could
  // diverge from the serial loop.
  Netlist nl;
  const Word a = input_word(nl, "a", 4);
  const Word b = input_word(nl, "b", 4);
  const Word sum = ripple_adder(nl, a, b, true);
  for (std::size_t i = 0; i < sum.size(); ++i) nl.mark_output("s" + std::to_string(i), sum[i]);
  nl.mark_output("gt", greater_than(nl, a, b));
  ASSERT_GT(nl.fault_site_count(), 64u);  // spans multiple PPSFP batches

  std::vector<TestVector> vectors;
  for (std::uint64_t v = 0; v < 48; ++v) vectors.push_back({v * 7 + 3, v % 3});

  const FaultSimResult want = serial_reference(nl, vectors);
  const FaultSimResult got = FaultSimulator(nl).run(vectors);
  EXPECT_EQ(want.total_faults, got.total_faults);
  EXPECT_EQ(want.detected, got.detected);
  EXPECT_EQ(want.simulations, got.simulations);
  ASSERT_EQ(want.undetected.size(), got.undetected.size());
  for (std::size_t i = 0; i < want.undetected.size(); ++i) {
    EXPECT_EQ(want.undetected[i].net, got.undetected[i].net) << i;
    EXPECT_EQ(want.undetected[i].stuck_value, got.undetected[i].stuck_value) << i;
  }
}

TEST(FaultSim, ResponsePacksExactlySixtyFourOutputs) {
  // 64 outputs: every output owns a distinct bit, no aliasing.
  Netlist nl;
  const Word in = input_word(nl, "i", 6);
  std::vector<NetId> outs;
  for (std::size_t o = 0; o < 64; ++o) {
    // Each output is a distinct function of the inputs (decoder-style).
    NetId net = nl.constant(true);
    for (std::size_t bit = 0; bit < 6; ++bit) {
      const NetId lit =
          ((o >> bit) & 1u) != 0 ? in[bit] : nl.add(GateKind::kNot, in[bit]);
      net = nl.add(GateKind::kAnd, net, lit);
    }
    outs.push_back(net);
    nl.mark_output((o < 10 ? "o0" : "o") + std::to_string(o), net);
  }
  FaultSimulator fsim(nl);
  Evaluator eval(nl);
  // Exactly one decoder line is hot per input value, so each response is a
  // distinct one-hot word; collisions would prove aliasing.
  std::uint64_t seen = 0;
  for (std::uint64_t v = 0; v < 64; ++v) {
    const std::uint64_t r = fsim.response(eval, {v, 0});
    EXPECT_EQ(std::popcount(r), 1) << v;
    EXPECT_EQ(seen & r, 0u) << "aliased response at input " << v;
    seen |= r;
  }
  EXPECT_EQ(seen, ~std::uint64_t{0});
}

TEST(FaultSim, ResponseRefusesSixtyFiveOutputsWideResponseHandlesThem) {
  // 65 outputs: the packed word would silently alias output 0 out of the
  // result — response() must fail loudly, wide_response() must cover all.
  Netlist nl;
  const Word in = input_word(nl, "i", 7);
  for (std::size_t o = 0; o < 65; ++o) {
    const NetId net = nl.add(GateKind::kXor, in[o % 7], in[(o + 1) % 7]);
    nl.mark_output("w" + std::to_string(100 + o), net);
  }
  FaultSimulator fsim(nl);
  Evaluator eval(nl);
  EXPECT_THROW((void)fsim.response(eval, {0x55, 0}), vps::support::InvariantError);
  const auto wide = fsim.wide_response(eval, {0x55, 0});
  ASSERT_EQ(wide.size(), 2u);  // 65 outputs -> two words
  // And the sweep itself must classify such designs, not alias them.
  std::vector<TestVector> vectors;
  for (std::uint64_t v = 0; v < 128; ++v) vectors.push_back({v, 0});
  const auto result = fsim.run(vectors);
  EXPECT_EQ(result.total_faults, nl.fault_site_count());
  EXPECT_GT(result.coverage(), 0.9);
}

}  // namespace

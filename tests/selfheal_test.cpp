// Self-healing distribution layer: deterministic chaos injection, connect
// timeouts, EINTR-proof transfers, protocol-version/garbage-frame hygiene,
// job_token reattach + orphan grace + graceful drain — and the two headline
// guarantees: a campaign completed under chaotic links, and a campaign that
// rode through a server crash + restart, both fold bitwise identical to the
// solo in-process driver.

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "vps/apps/registry.hpp"
#include "vps/dist/chaos.hpp"
#include "vps/dist/coordinator.hpp"
#include "vps/dist/protocol.hpp"
#include "vps/dist/server.hpp"
#include "vps/dist/transport.hpp"
#include "vps/dist/worker.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/fault/checkpoint.hpp"
#include "vps/support/ensure.hpp"

namespace {

using namespace vps::dist;
using vps::fault::CampaignConfig;
using vps::fault::CampaignResult;
using vps::fault::ParallelCampaign;
using vps::fault::ScenarioFactory;
using vps::support::InvariantError;

constexpr const char* kHost = "127.0.0.1";

// Forks one self-healing pool worker (serve_pool with reconnect). Must be
// called before any thread exists in the test process (fork safety).
pid_t fork_reconnecting_worker(std::uint16_t port, std::uint64_t chaos_seed = 0) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Drop every fd inherited from the test process — above all the server's
  // listening socket. A child that keeps it open makes the crashed server's
  // port unbindable (EADDRINUSE on restart) while the kernel keeps accepting
  // connections into a backlog nobody drains.
  for (int fd = 3; fd < 1024; ++fd) ::close(fd);
  PoolConfig pc;
  pc.host = kHost;
  pc.port = port;
  pc.backoff_initial_ms = 20;
  pc.backoff_max_ms = 150;
  pc.max_reconnects = 40;
  pc.idle_timeout_ms = 2000;
  pc.chaos.seed = chaos_seed;
  const int code = serve_pool(
      pc, [](const SetupMsg& setup) { return vps::apps::make_scenario(setup.scenario_spec); });
  ::_exit(code);
}

void reap(pid_t pid) {
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(pid, &status, 0);
  } while (r < 0 && errno == EINTR);
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.outcome_counts, b.outcome_counts);
  EXPECT_EQ(a.runs_executed, b.runs_executed);
  EXPECT_EQ(a.faults_to_first_hazard, b.faults_to_first_hazard);
  EXPECT_EQ(a.final_coverage, b.final_coverage);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].fault.id, b.records[i].fault.id);
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome);
    EXPECT_EQ(a.records[i].crash_what, b.records[i].crash_what);
  }
  ASSERT_EQ(a.coverage_curve.size(), b.coverage_curve.size());
  for (std::size_t i = 0; i < a.coverage_curve.size(); ++i) {
    EXPECT_EQ(a.coverage_curve[i], b.coverage_curve[i]) << "curve diverges at run " << i;
  }
  EXPECT_EQ(a.provenance_jsonl(), b.provenance_jsonl());
}

// Raw metrics scrape (no HTTP client dependency). Non-throwing: a scrape
// that cannot connect (server mid-restart) reads as an empty render.
std::string scrape(std::uint16_t port) {
  int fd = -1;
  try {
    fd = tcp_connect(kHost, port, /*connect_timeout_ms=*/2000);
  } catch (const std::exception&) {
    return "";
  }
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return response;
}

// Value of one metric line in a render ("name ... <value>"), or -1.
double metric_value(const std::string& render, const std::string& name) {
  const std::size_t at = render.find(name);
  if (at == std::string::npos) return -1.0;
  const std::size_t eol = render.find('\n', at);
  const std::string line = render.substr(at, eol - at);
  const std::size_t space = line.find_last_of(' ');
  return std::strtod(line.c_str() + space + 1, nullptr);
}

// Polls the scrape endpoint until `name` reaches at least `want` (bounded).
bool wait_for_metric(std::uint16_t port, const std::string& name, double want,
                     int timeout_ms = 10'000) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (metric_value(scrape(port), name) >= want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return false;
}

SubmitMsg tiny_submit(const std::string& tenant) {
  SubmitMsg submit;
  submit.tenant = tenant;
  submit.scenario_spec = "caps";
  submit.scenario = "caps_normal_protected";
  submit.config.runs = 4;
  submit.config.seed = 1;
  submit.golden.completed = true;
  submit.golden.output_signature = 1;
  return submit;
}

// --------------------------------------------------------------------------
// ChaosPolicy: replayable from its seed, uncorrelated across streams
// --------------------------------------------------------------------------

TEST(ChaosPolicyTest, SameSeedAndStreamReplaysTheSameSchedule) {
  ChaosConfig cfg;
  cfg.seed = 7;
  ChaosPolicy a(cfg, /*stream=*/3);
  ChaosPolicy b(cfg, /*stream=*/3);
  ChaosPolicy other(cfg, /*stream=*/4);
  bool diverged = false;
  for (int i = 0; i < 512; ++i) {
    const auto action = a.next_action();
    ASSERT_EQ(action, b.next_action()) << "replay diverged at frame " << i;
    ASSERT_EQ(a.pick_offset(9, 200), b.pick_offset(9, 200));
    if (action != other.next_action()) diverged = true;
  }
  EXPECT_TRUE(diverged) << "distinct streams must not mirror each other";
}

TEST(ChaosPolicyTest, SeedZeroInjectsNothing) {
  ChaosPolicy off(ChaosConfig{}, /*stream=*/1);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(off.next_action(), ChaosPolicy::Action::kPass);
}

// --------------------------------------------------------------------------
// tcp_connect: bounded by the connect timeout, not the kernel's
// --------------------------------------------------------------------------

TEST(TransportTest, ConnectTimesOutOnABlackholedListener) {
  // A listener with backlog 0 whose accept queue is already full drops
  // further SYNs on the floor — the portable way to a local black hole.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ASSERT_EQ(::inet_pton(AF_INET, kHost, &addr.sin_addr), 1);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::listen(lfd, 0), 0);
  socklen_t len = sizeof addr;
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);

  std::vector<int> fillers;
  for (int i = 0; i < 4; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    (void)::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    (void)::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    fillers.push_back(fd);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto started = std::chrono::steady_clock::now();
  try {
    const int fd = tcp_connect(kHost, port, /*connect_timeout_ms=*/300);
    ::close(fd);
    ADD_FAILURE() << "connect into a saturated backlog should not complete";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos) << e.what();
  }
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_LT(elapsed, std::chrono::seconds(5)) << "timeout did not bound the connect";

  for (int fd : fillers) ::close(fd);
  ::close(lfd);
}

// --------------------------------------------------------------------------
// EINTR: a signal storm may slow a transfer, never break it
// --------------------------------------------------------------------------

TEST(TransportTest, LargeTransferSurvivesASignalStorm) {
  struct sigaction sa{};
  sa.sa_handler = [](int) {};  // no SA_RESTART: every blocking call gets EINTR
  struct sigaction old{};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  Channel tx(sv[0]);
  Channel rx(sv[1]);

  const std::string payload(4u * 1024u * 1024u, 'x');
  std::atomic<bool> storming{true};
  std::thread storm([&] {
    while (storming.load()) {
      (void)::kill(::getpid(), SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  bool sent = false;
  std::thread sender([&] { sent = tx.send_frame(MsgType::kHeartbeat, payload); });
  std::optional<Frame> frame;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!frame.has_value() && std::chrono::steady_clock::now() < deadline) {
    frame = rx.wait_frame(100);
  }
  sender.join();
  storming.store(false);
  storm.join();
  ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);

  EXPECT_TRUE(sent);
  ASSERT_TRUE(frame.has_value()) << "transfer never completed under the storm";
  EXPECT_EQ(frame->type, MsgType::kHeartbeat);
  EXPECT_EQ(frame->payload, payload);
}

// --------------------------------------------------------------------------
// Protocol hygiene on the v2 server: wrong version, garbage, wrong opener
// --------------------------------------------------------------------------

TEST(CampaignServerTest, V1ClientSubmitGetsRejectThenClose) {
  CampaignServer server{ServerConfig{}};
  server.start();

  Channel c(tcp_connect(kHost, server.port()));
  SubmitMsg submit = tiny_submit("old");
  submit.version = 1;
  ASSERT_TRUE(c.send_frame(MsgType::kSubmit, encode_submit(submit)));
  const auto reply = c.wait_frame(5000);
  ASSERT_TRUE(reply.has_value()) << "a version mismatch must answer, not hang";
  ASSERT_EQ(reply->type, MsgType::kReject);
  EXPECT_NE(decode_reject(reply->payload).reason.find("protocol"), std::string::npos);
  EXPECT_FALSE(c.wait_frame(5000).has_value());
  EXPECT_FALSE(c.open()) << "a v1 peer must be disconnected after the REJECT";
  server.stop();
}

TEST(CampaignServerTest, V1WorkerRegisterGetsRejectThenClose) {
  CampaignServer server{ServerConfig{}};
  server.start();

  Channel w(tcp_connect(kHost, server.port()));
  RegisterMsg reg;
  reg.version = 1;
  reg.pid = 123;
  ASSERT_TRUE(w.send_frame(MsgType::kRegister, encode_register(reg)));
  const auto reply = w.wait_frame(5000);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MsgType::kReject);
  EXPECT_NE(decode_reject(reply->payload).reason.find("protocol"), std::string::npos);
  EXPECT_FALSE(w.wait_frame(5000).has_value());
  EXPECT_FALSE(w.open());
  server.stop();
}

TEST(CampaignServerTest, GarbageRegisterPayloadDropsThePeerNotTheServer) {
  CampaignServer server{ServerConfig{}};
  server.start();

  Channel garbage(tcp_connect(kHost, server.port()));
  ASSERT_TRUE(garbage.send_frame(MsgType::kRegister, "this is not a codec line"));
  EXPECT_FALSE(garbage.wait_frame(5000).has_value());
  EXPECT_FALSE(garbage.open()) << "a malformed REGISTER must tear down the one peer";

  // The server itself must still be serving.
  Channel fine(tcp_connect(kHost, server.port()));
  ASSERT_TRUE(fine.send_frame(MsgType::kSubmit, encode_submit(tiny_submit("after"))));
  const auto reply = fine.wait_frame(5000);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MsgType::kAccept);
  server.stop();
}

TEST(CampaignServerTest, UnexpectedOpeningFrameIsDroppedCleanly) {
  CampaignServer server{ServerConfig{}};
  server.start();

  Channel odd(tcp_connect(kHost, server.port()));
  AssignMsg assign;
  assign.job = 1;
  assign.run = 0;
  ASSERT_TRUE(odd.send_frame(MsgType::kAssign, encode_assign(assign)));
  EXPECT_FALSE(odd.wait_frame(5000).has_value());
  EXPECT_FALSE(odd.open()) << "an ASSIGN from a stranger must not hang the sniffer";
  server.stop();
}

// --------------------------------------------------------------------------
// Self-healing counters are first-class scrape citizens
// --------------------------------------------------------------------------

TEST(CampaignServerTest, SelfHealingCountersAppearInTheSortedScrape) {
  CampaignServer server{ServerConfig{}};
  server.start();
  const std::string body = scrape(server.port());
  server.stop();

  EXPECT_NE(body.find("dist.chaos.bytes_corrupted"), std::string::npos) << body;
  EXPECT_NE(body.find("dist.chaos.frames_dropped"), std::string::npos) << body;
  EXPECT_NE(body.find("dist.jobs_recovered"), std::string::npos) << body;
  EXPECT_NE(body.find("dist.reconnects"), std::string::npos) << body;
  // The registry renders name-sorted, so the counters land in lexicographic
  // order — the scrape stays diffable.
  EXPECT_LT(body.find("dist.chaos.bytes_corrupted"), body.find("dist.chaos.frames_dropped"));
  EXPECT_LT(body.find("dist.chaos.frames_dropped"), body.find("dist.jobs_recovered"));
  EXPECT_LT(body.find("dist.jobs_recovered"), body.find("dist.reconnects"));
}

// --------------------------------------------------------------------------
// job_token: orphan on client death, reattach on re-SUBMIT, expire on grace
// --------------------------------------------------------------------------

TEST(CampaignServerTest, OrphanedJobReattachesByTokenWithTheSameId) {
  ServerConfig sc;
  sc.orphan_grace_ms = 30'000;
  CampaignServer server{sc};
  server.start();

  SubmitMsg submit = tiny_submit("tok");
  submit.job_token = 77;

  std::uint64_t first_id = 0;
  {
    Channel c1(tcp_connect(kHost, server.port()));
    ASSERT_TRUE(c1.send_frame(MsgType::kSubmit, encode_submit(submit)));
    const auto accept = c1.wait_frame(5000);
    ASSERT_TRUE(accept.has_value());
    ASSERT_EQ(accept->type, MsgType::kAccept);
    first_id = decode_accept(accept->payload).job;
  }  // client dies abruptly; the job must be orphaned, not torn down

  ASSERT_TRUE(wait_for_metric(server.port(), "server.jobs_orphaned", 1.0));

  Channel c2(tcp_connect(kHost, server.port()));
  ASSERT_TRUE(c2.send_frame(MsgType::kSubmit, encode_submit(submit)));
  const auto reattach = c2.wait_frame(5000);
  ASSERT_TRUE(reattach.has_value());
  ASSERT_EQ(reattach->type, MsgType::kAccept);
  EXPECT_EQ(decode_accept(reattach->payload).job, first_id) << "reattach must resume, not duplicate";

  // A token never matches a job a live client still holds: this SUBMIT is a
  // fresh admission with a fresh id.
  Channel c3(tcp_connect(kHost, server.port()));
  ASSERT_TRUE(c3.send_frame(MsgType::kSubmit, encode_submit(submit)));
  const auto fresh = c3.wait_frame(5000);
  ASSERT_TRUE(fresh.has_value());
  ASSERT_EQ(fresh->type, MsgType::kAccept);
  EXPECT_NE(decode_accept(fresh->payload).job, first_id);
  server.stop();
}

TEST(CampaignServerTest, OrphanGraceExpiryTearsTheJobDown) {
  ServerConfig sc;
  sc.orphan_grace_ms = 100;
  CampaignServer server{sc};
  server.start();

  SubmitMsg submit = tiny_submit("gone");
  submit.job_token = 88;
  std::uint64_t first_id = 0;
  {
    Channel c(tcp_connect(kHost, server.port()));
    ASSERT_TRUE(c.send_frame(MsgType::kSubmit, encode_submit(submit)));
    const auto accept = c.wait_frame(5000);
    ASSERT_TRUE(accept.has_value());
    ASSERT_EQ(accept->type, MsgType::kAccept);
    first_id = decode_accept(accept->payload).job;
  }
  ASSERT_TRUE(wait_for_metric(server.port(), "server.jobs_expired", 1.0));

  // The slot is free again and the token resolves to a brand-new job.
  Channel late(tcp_connect(kHost, server.port()));
  ASSERT_TRUE(late.send_frame(MsgType::kSubmit, encode_submit(submit)));
  const auto reply = late.wait_frame(5000);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MsgType::kAccept);
  EXPECT_NE(decode_accept(reply->payload).job, first_id);
  server.stop();
}

// --------------------------------------------------------------------------
// Graceful drain
// --------------------------------------------------------------------------

TEST(CampaignServerTest, DrainRejectsFreshSubmitsAndExitsOnceEmpty) {
  CampaignServer server{ServerConfig{}};
  server.start();

  Channel admitted(tcp_connect(kHost, server.port()));
  ASSERT_TRUE(admitted.send_frame(MsgType::kSubmit, encode_submit(tiny_submit("a"))));
  const auto accept = admitted.wait_frame(5000);
  ASSERT_TRUE(accept.has_value());
  ASSERT_EQ(accept->type, MsgType::kAccept);
  const std::uint64_t job = decode_accept(accept->payload).job;

  server.request_drain();

  Channel late(tcp_connect(kHost, server.port()));
  ASSERT_TRUE(late.send_frame(MsgType::kSubmit, encode_submit(tiny_submit("b"))));
  const auto reject = late.wait_frame(5000);
  ASSERT_TRUE(reject.has_value()) << "a draining server must answer, not hang";
  ASSERT_EQ(reject->type, MsgType::kReject);
  EXPECT_NE(decode_reject(reject->payload).reason.find("drain"), std::string::npos);

  // Finishing the admitted job lets the loop exit on its own.
  ASSERT_TRUE(admitted.send_frame(MsgType::kRelease, encode_job(JobMsg{job})));
  EXPECT_FALSE(admitted.wait_frame(10'000).has_value());
  EXPECT_FALSE(admitted.open()) << "drained server should close the last connections";
  server.stop();
}

// --------------------------------------------------------------------------
// Headline guarantee 1: chaos on every link, fold bitwise identical to solo
// --------------------------------------------------------------------------

TEST(SelfHealingTest, ChaoticLinksEverywhereFoldBitwiseIdenticalToSolo) {
  const ScenarioFactory factory = [] { return vps::apps::make_scenario("caps:crash"); };
  CampaignConfig cfg;
  cfg.runs = 24;
  cfg.seed = 11;
  cfg.location_buckets = 8;
  const CampaignResult solo = ParallelCampaign(factory, cfg).run();

  ServerConfig sc;
  sc.chaos.seed = 1234;
  // Tight-ish supervision so injected drops are healed in seconds. A healthy
  // worker wrongly swept as wedged only costs a requeue — replays are pure,
  // so requeues can never move a fold bit (and the raised requeue budget
  // below keeps even a sweep-happy TSan run from exhausting a run's budget).
  sc.heartbeat_timeout_ms = 1500;
  sc.hello_timeout_ms = 4000;
  CampaignServer server{sc};

  std::vector<pid_t> pool;
  for (int i = 0; i < 4; ++i) pool.push_back(fork_reconnecting_worker(server.port(), 5678));
  server.start();

  DistConfig dc;
  dc.campaign = cfg;
  dc.server_host = kHost;
  dc.server_port = server.port();
  dc.tenant = "chaos";
  dc.scenario_spec = "caps:crash";
  dc.chaos.seed = 99;
  dc.heartbeat_timeout_ms = 1000;  // client silence budget ≈ 13 s per stall
  dc.hello_timeout_ms = 3000;
  dc.max_requeues = 10;
  dc.reconnect_backoff_ms = 50;
  dc.reconnect_backoff_max_ms = 500;
  DistCampaign campaign(factory, dc);
  const CampaignResult chaotic = campaign.run();

  server.stop();
  for (pid_t pid : pool) reap(pid);

  expect_identical(solo, chaotic);
}

// --------------------------------------------------------------------------
// Headline guarantee 2: server SIGKILL + restart mid-campaign, client
// reattaches by token, recovered fold bitwise identical to solo
// --------------------------------------------------------------------------

TEST(SelfHealingTest, ServerCrashRestartRecoversJobAndClientReattaches) {
  char state_template[] = "/tmp/vps_selfheal_XXXXXX";
  char* state_dir = ::mkdtemp(state_template);
  ASSERT_NE(state_dir, nullptr);

  const ScenarioFactory factory = [] { return vps::apps::make_scenario("caps:crash"); };
  CampaignConfig cfg;
  cfg.runs = 400;
  cfg.seed = 5;
  cfg.batch_size = 16;
  const CampaignResult solo = ParallelCampaign(factory, cfg).run();

  ServerConfig sc;
  sc.state_dir = state_dir;
  sc.orphan_grace_ms = 30'000;
  std::optional<CampaignServer> server;
  server.emplace(sc);
  const std::uint16_t port = server->port();

  // Reconnecting pool, forked before any thread exists.
  std::vector<pid_t> pool;
  for (int i = 0; i < 4; ++i) pool.push_back(fork_reconnecting_worker(port));
  server->start();

  DistConfig dc;
  dc.campaign = cfg;
  dc.server_host = kHost;
  dc.server_port = port;
  dc.tenant = "crashy";
  dc.scenario_spec = "caps:crash";
  dc.max_reconnects = 100;  // must outlast the restart gap
  dc.reconnect_backoff_ms = 50;
  dc.reconnect_backoff_max_ms = 500;
  DistCampaign campaign(factory, dc);

  CampaignResult recovered;
  std::thread tenant([&] {
    try {
      recovered = campaign.run();
    } catch (const std::exception& e) {
      ADD_FAILURE() << "tenant threw: " << e.what();
    }
  });
  // Whatever goes wrong below, `tenant` must be joined before it unwinds —
  // destroying a joinable thread is std::terminate, not a test failure.
  struct Joiner {
    std::thread& t;
    ~Joiner() {
      if (t.joinable()) t.join();
    }
  } join_guard{tenant};

  // Kill the server only once the campaign is demonstrably in flight, then
  // play the restart. Any exception here is a test failure, not an abort.
  try {
    EXPECT_TRUE(wait_for_metric(port, "server.jobs_active", 1.0));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server->crash();
    server.reset();  // releases the listener; incremental state stays on disk

    ServerConfig sc2 = sc;
    sc2.port = port;  // same address, same state dir: the restarted server
    server.emplace(sc2);
    server->start();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "restart choreography threw: " << e.what();
  }

  tenant.join();
  ASSERT_TRUE(server.has_value());
  server->stop();
  for (pid_t pid : pool) reap(pid);

  expect_identical(solo, recovered);
  EXPECT_GE(campaign.fleet_stats().reconnects, 1u) << "client never had to reattach";
  EXPECT_GE(metric_value(server->metrics().render(), "dist.jobs_recovered"), 1.0)
      << server->metrics().render();
}

// --------------------------------------------------------------------------
// Fresh-process hand-off: preempt + checkpoint, resume completes identically
// --------------------------------------------------------------------------

TEST(SelfHealingTest, PreemptedServerCampaignResumesFromCheckpointIdentically) {
  char dir_template[] = "/tmp/vps_ckpt_XXXXXX";
  char* dir = ::mkdtemp(dir_template);
  ASSERT_NE(dir, nullptr);
  const std::string ckpt = std::string(dir) + "/campaign.ckpt";

  const ScenarioFactory factory = [] { return vps::apps::make_scenario("caps:crash"); };
  CampaignConfig cfg;
  cfg.runs = 32;
  cfg.seed = 21;
  cfg.batch_size = 8;
  const CampaignResult solo = ParallelCampaign(factory, cfg).run();

  CampaignServer server{ServerConfig{}};
  std::vector<pid_t> pool;
  for (int i = 0; i < 2; ++i) pool.push_back(fork_reconnecting_worker(server.port()));
  server.start();

  DistConfig dc;
  dc.campaign = cfg;
  dc.campaign.checkpoint_path = ckpt;
  dc.campaign.checkpoint_every = 8;
  dc.campaign.preempt_after = 8;  // first process stops after one batch
  dc.server_host = kHost;
  dc.server_port = server.port();
  dc.tenant = "resume";
  dc.scenario_spec = "caps:crash";
  {
    DistCampaign first(factory, dc);
    const CampaignResult partial = first.run();
    ASSERT_TRUE(partial.interrupted);
  }

  // "Fresh process": a new DistCampaign picks the checkpoint up and carries
  // the same campaign through the same server.
  dc.campaign.preempt_after = 0;
  const auto checkpoint = vps::fault::load_checkpoint(ckpt);
  DistCampaign second(factory, dc);
  const CampaignResult resumed = second.resume(checkpoint);

  server.stop();
  for (pid_t pid : pool) reap(pid);
  expect_identical(solo, resumed);
}

}  // namespace

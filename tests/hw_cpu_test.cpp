// Integration tests for the AR32 core + assembler + memory + peripherals:
// programs are assembled, loaded, executed, and the architectural state is
// checked. Also covers interrupts, WFI, watchdog recovery, temporal
// decoupling invariance, and register fault injection.

#include <gtest/gtest.h>

#include <string>

#include "vps/hw/assembler.hpp"
#include "vps/hw/cpu.hpp"
#include "vps/hw/memory.hpp"
#include "vps/hw/peripherals.hpp"
#include "vps/tlm/router.hpp"

namespace {

using namespace vps::hw;
using namespace vps::sim;
using vps::tlm::Router;

// Canonical test SoC: 64 KiB RAM at 0, peripherals above.
struct Soc {
  Kernel kernel;
  Memory ram;
  Router bus;
  InterruptController intc;
  Timer timer;
  Watchdog wdg;
  Gpio gpio;
  Adc adc;
  Cpu cpu;

  static constexpr std::uint32_t kRamBase = 0x00000000;
  static constexpr std::uint32_t kIntcBase = 0x40000000;
  static constexpr std::uint32_t kTimerBase = 0x40001000;
  static constexpr std::uint32_t kWdgBase = 0x40002000;
  static constexpr std::uint32_t kGpioBase = 0x40003000;
  static constexpr std::uint32_t kAdcBase = 0x40004000;

  explicit Soc(Cpu::Config config = {}, EccMode ecc = EccMode::kNone)
      : ram("ram", 64 * 1024, Time::ns(10), ecc),
        bus("bus", Time::ns(5)),
        intc(kernel, "intc"),
        timer(kernel, "timer"),
        wdg(kernel, "wdg"),
        gpio(kernel, "gpio"),
        adc(kernel, "adc"),
        cpu(kernel, "cpu", config) {
    bus.map(kRamBase, 64 * 1024, ram.socket());
    bus.map(kIntcBase, 0x10, intc.socket());
    bus.map(kTimerBase, 0x10, timer.socket());
    bus.map(kWdgBase, 0x10, wdg.socket());
    bus.map(kGpioBase, 0x08, gpio.socket());
    bus.map(kAdcBase, 0x08, adc.socket());
    cpu.socket().bind(bus.target_socket());
    cpu.connect_irq(intc.irq_out());
    timer.set_on_expire([this] { intc.raise(0); });
  }

  void load(const std::string& source) {
    const Program prog = assemble(source);
    ram.load(prog.origin, prog.image);
  }
};

TEST(Assembler, EncodesBasicProgram) {
  const Program p = assemble(R"(
    start:
      addi r1, r0, 5    ; r1 = 5
      add  r2, r1, r1
      halt
  )");
  EXPECT_EQ(p.size(), 12u);
  EXPECT_EQ(p.label("start"), 0u);
  const auto d = decode(static_cast<std::uint32_t>(p.image[0]) |
                        (static_cast<std::uint32_t>(p.image[1]) << 8) |
                        (static_cast<std::uint32_t>(p.image[2]) << 16) |
                        (static_cast<std::uint32_t>(p.image[3]) << 24));
  EXPECT_EQ(d.opcode, Opcode::kAddi);
  EXPECT_EQ(d.rd, 1);
  EXPECT_EQ(d.imm16, 5);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    (void)assemble("nop\nbogus r1, r2\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
  EXPECT_THROW((void)assemble("addi r1, r0, 99999"), AsmError);   // imm range
  EXPECT_THROW((void)assemble("add r1, r2"), AsmError);           // arity
  EXPECT_THROW((void)assemble("x: nop\nx: nop"), AsmError);       // dup label
  EXPECT_THROW((void)assemble("j nowhere"), AsmError);            // undefined
  EXPECT_THROW((void)assemble(".org 8\n.org 0"), AsmError);       // backwards
}

TEST(Assembler, DirectivesAndLiterals) {
  const Program p = assemble(R"(
      j main
    .org 0x10
    data:
      .word 0xDEADBEEF, 42
      .space 8
    main:
      halt
  )");
  EXPECT_EQ(p.label("data"), 0x10u);
  EXPECT_EQ(p.label("main"), 0x20u);
  EXPECT_EQ(p.image[0x10], 0xEF);
  EXPECT_EQ(p.image[0x13], 0xDE);
  EXPECT_EQ(p.image[0x14], 42);
}

Soc& run_program(Soc& soc, const std::string& src, Time limit = Time::ms(10)) {
  soc.load(src);
  soc.kernel.run(limit);
  return soc;
}

TEST(Cpu, ArithmeticAndLogic) {
  Soc soc;
  run_program(soc, R"(
    addi r1, r0, 7
    addi r2, r0, 3
    add  r3, r1, r2     ; 10
    sub  r4, r1, r2     ; 4
    mul  r5, r1, r2     ; 21
    and  r6, r1, r2     ; 3
    or   r7, r1, r2     ; 7
    xor  r8, r1, r2     ; 4
    shli r9, r1, 4      ; 112
    slt  r10, r2, r1    ; 1
    halt
  )");
  EXPECT_EQ(soc.cpu.state(), Cpu::State::kHalted);
  EXPECT_EQ(soc.cpu.reg(3), 10u);
  EXPECT_EQ(soc.cpu.reg(4), 4u);
  EXPECT_EQ(soc.cpu.reg(5), 21u);
  EXPECT_EQ(soc.cpu.reg(6), 3u);
  EXPECT_EQ(soc.cpu.reg(7), 7u);
  EXPECT_EQ(soc.cpu.reg(8), 4u);
  EXPECT_EQ(soc.cpu.reg(9), 112u);
  EXPECT_EQ(soc.cpu.reg(10), 1u);
}

TEST(Cpu, RegisterZeroIsHardwired) {
  Soc soc;
  run_program(soc, R"(
    addi r0, r0, 123
    add  r1, r0, r0
    halt
  )");
  EXPECT_EQ(soc.cpu.reg(0), 0u);
  EXPECT_EQ(soc.cpu.reg(1), 0u);
}

TEST(Cpu, LoopComputesSum) {
  // Sum 1..100 = 5050.
  Soc soc;
  run_program(soc, R"(
      addi r1, r0, 0      ; acc
      addi r2, r0, 100    ; i
    loop:
      add  r1, r1, r2
      addi r2, r2, -1
      bne  r2, r0, loop
      halt
  )");
  EXPECT_EQ(soc.cpu.reg(1), 5050u);
  EXPECT_GT(soc.cpu.stats().branches_taken, 90u);
}

TEST(Cpu, MemoryLoadsStoresAllWidths) {
  Soc soc;
  run_program(soc, R"(
      li   r1, 0x1000
      li   r2, 0x89ABCDEF
      sw   r2, 0(r1)
      lw   r3, 0(r1)
      lbu  r4, 3(r1)      ; 0x89
      lb   r5, 3(r1)      ; sign-extended 0x89
      lhu  r6, 2(r1)      ; 0x89AB
      lh   r7, 2(r1)      ; sign-extended
      sb   r2, 4(r1)      ; 0xEF
      lbu  r8, 4(r1)
      halt
  )");
  EXPECT_EQ(soc.cpu.reg(3), 0x89ABCDEFu);
  EXPECT_EQ(soc.cpu.reg(4), 0x89u);
  EXPECT_EQ(soc.cpu.reg(5), 0xFFFFFF89u);
  EXPECT_EQ(soc.cpu.reg(6), 0x89ABu);
  EXPECT_EQ(soc.cpu.reg(7), 0xFFFF89ABu);
  EXPECT_EQ(soc.cpu.reg(8), 0xEFu);
}

TEST(Cpu, CallAndReturn) {
  Soc soc;
  run_program(soc, R"(
      addi r1, r0, 10
      call double_it
      call double_it
      halt
    double_it:
      add r1, r1, r1
      ret
  )");
  EXPECT_EQ(soc.cpu.state(), Cpu::State::kHalted);
  EXPECT_EQ(soc.cpu.reg(1), 40u);
}

TEST(Cpu, IllegalInstructionFaults) {
  Soc soc;
  soc.load(".word 0xFF000000");
  soc.kernel.run(Time::ms(1));
  EXPECT_EQ(soc.cpu.state(), Cpu::State::kFaulted);
  EXPECT_EQ(soc.cpu.fault_cause(), Cpu::FaultCause::kIllegalInstruction);
}

TEST(Cpu, BusErrorOnUnmappedAccess) {
  Soc soc;
  run_program(soc, R"(
    li r1, 0x70000000
    lw r2, 0(r1)
    halt
  )");
  EXPECT_EQ(soc.cpu.state(), Cpu::State::kFaulted);
  EXPECT_EQ(soc.cpu.fault_cause(), Cpu::FaultCause::kBusError);
  EXPECT_EQ(soc.cpu.fault_address(), 0x70000000u);
}

TEST(Cpu, GpioOutputReachesSignal) {
  Soc soc;
  run_program(soc, R"(
    li r1, 0x40003000
    li r2, 0xA5
    sw r2, 0(r1)
    halt
  )");
  EXPECT_EQ(soc.gpio.out().read(), 0xA5u);
}

TEST(Cpu, AdcConversionReadsSource) {
  Soc soc;
  soc.adc.set_source([] { return 2.5; });  // half of vref=5.0
  run_program(soc, R"(
    li r1, 0x40004000
    lw r2, 0(r1)
    halt
  )");
  EXPECT_NEAR(static_cast<double>(soc.cpu.reg(2)), 2048.0, 2.0);
  EXPECT_EQ(soc.adc.conversions(), 1u);
}

TEST(Cpu, TimerInterruptHandlerRuns) {
  Soc soc;
  // Main enables timer IRQ then spins; handler counts into r10 and returns.
  run_program(soc, R"(
      j    main
    .org 0x10                 ; IRQ vector
      addi r10, r10, 1        ; count interrupts
      li   r6, 0x40000000
      addi r7, r0, 1
      sw   r7, 12(r6)         ; INTC COMPLETE line 0... value is line index
      sw   r0, 12(r6)         ; clear line 0 (value = line number = 0)
      li   r6, 0x40001000
      addi r7, r0, 1
      sw   r7, 8(r6)          ; TIMER STATUS write-1-to-clear
      reti
    main:
      li   r1, 0x40000000     ; intc
      addi r2, r0, 1
      sw   r2, 4(r1)          ; enable line 0
      li   r1, 0x40001000     ; timer
      addi r2, r0, 100
      sw   r2, 4(r1)          ; period = 100us
      addi r2, r0, 3
      sw   r2, 0(r1)          ; enable, periodic
      ei
    spin:
      addi r9, r9, 1
      slti r3, r10, 5
      bne  r3, r0, spin       ; until 5 interrupts
      di
      halt
  )", Time::ms(20));
  EXPECT_EQ(soc.cpu.state(), Cpu::State::kHalted);
  EXPECT_EQ(soc.cpu.reg(10), 5u);
  EXPECT_GE(soc.cpu.stats().irqs_taken, 5u);
  EXPECT_GE(soc.timer.expiry_count(), 5u);
}

TEST(Cpu, WfiSleepsUntilInterrupt) {
  Soc soc;
  run_program(soc, R"(
      j    main
    .org 0x10
      addi r10, r10, 1
      sw   r0, 12(r6)         ; intc complete line 0
      addi r7, r0, 1
      sw   r7, 8(r5)          ; timer status clear
      reti
    main:
      li   r6, 0x40000000
      li   r5, 0x40001000
      addi r2, r0, 1
      sw   r2, 4(r6)          ; enable intc line 0
      addi r2, r0, 500
      sw   r2, 4(r5)          ; timer period 500us
      addi r2, r0, 1
      sw   r2, 0(r5)          ; one-shot enable
      ei
      wfi
      halt
  )", Time::ms(5));
  EXPECT_EQ(soc.cpu.state(), Cpu::State::kHalted);
  EXPECT_EQ(soc.cpu.reg(10), 1u);
  // The sleep must actually skip time: far fewer instructions than a 500us
  // spin would need.
  EXPECT_LT(soc.cpu.stats().instructions, 100u);
  EXPECT_GE(soc.kernel.now(), Time::us(500));
}

TEST(Cpu, WatchdogResetsHungCore) {
  Soc::kRamBase;  // silence unused warning paths
  Cpu::Config cfg;
  Soc soc(cfg);
  int resets = 0;
  soc.wdg.set_on_timeout([&] {
    ++resets;
    soc.cpu.reset();
  });
  // Program: on cold start r1==0 -> mark, hang in a loop without kicking.
  // The flag survives reset (it is in RAM), so after the watchdog reset the
  // program takes the healthy path and halts.
  run_program(soc, R"(
      li   r1, 0x2000
      lw   r2, 0(r1)
      bne  r2, r0, recovered
      addi r2, r0, 1
      sw   r2, 0(r1)          ; set "crashed once" flag
      li   r3, 0x40002000
      addi r4, r0, 200
      sw   r4, 4(r3)          ; wdg period 200us
      addi r4, r0, 1
      sw   r4, 0(r3)          ; enable watchdog
    hang:
      j hang                  ; never kicks
    recovered:
      halt
  )", Time::ms(10));
  EXPECT_EQ(resets, 1);
  EXPECT_EQ(soc.cpu.state(), Cpu::State::kHalted);
  EXPECT_EQ(soc.wdg.timeout_count(), 1u);
}

TEST(Cpu, RegisterInjectionChangesResult) {
  Soc soc;
  soc.load(R"(
      addi r1, r0, 100
      addi r2, r0, 200
    loop:
      addi r3, r3, 1
      slti r4, r3, 1000
      bne  r4, r0, loop
      add  r5, r1, r2
      halt
  )");
  // Flip bit 3 of r1 mid-run.
  soc.kernel.spawn("injector", [](Soc& soc) -> Coro {
    co_await delay(Time::us(20));
    soc.cpu.corrupt_register(1, 1u << 3);
  }(soc));
  soc.kernel.run(Time::ms(10));
  EXPECT_EQ(soc.cpu.state(), Cpu::State::kHalted);
  EXPECT_EQ(soc.cpu.reg(5), 100u + 200u + 8u - 0u);  // 100^8=108 -> 308
}

TEST(Cpu, QuantumSizeDoesNotChangeArchitecturalResult) {
  std::uint32_t results[3];
  Time end_times[3];
  const Time quanta[3] = {Time::zero(), Time::us(1), Time::us(100)};
  for (int i = 0; i < 3; ++i) {
    Cpu::Config cfg;
    cfg.quantum = quanta[i];
    Soc soc(cfg);
    run_program(soc, R"(
        addi r2, r0, 500
      loop:
        add  r1, r1, r2
        addi r2, r2, -1
        bne  r2, r0, loop
        halt
    )");
    results[i] = soc.cpu.reg(1);
    end_times[i] = soc.kernel.now();
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[1], results[2]);
  EXPECT_EQ(results[0], 125250u);
  // Decoupling must not distort total simulated time (LT accumulation).
  EXPECT_EQ(end_times[0], end_times[1]);
  EXPECT_EQ(end_times[1], end_times[2]);
}

TEST(Cpu, DmiAcceleratesMemoryAccess) {
  Cpu::Config with_dmi;
  with_dmi.use_dmi = true;
  Cpu::Config without_dmi;
  without_dmi.use_dmi = false;
  const char* src = R"(
      addi r2, r0, 1000
    loop:
      addi r2, r2, -1
      bne  r2, r0, loop
      halt
  )";
  Soc a(with_dmi);
  run_program(a, src);
  Soc b(without_dmi);
  run_program(b, src);
  EXPECT_EQ(a.cpu.reg(2), b.cpu.reg(2));
  EXPECT_GT(a.cpu.stats().dmi_accesses, 1000u);
  EXPECT_EQ(b.cpu.stats().dmi_accesses, 0u);
}

TEST(Cpu, EccMemoryHaltsOnUncorrectableFetch) {
  Cpu::Config cfg;
  Soc soc(cfg, EccMode::kSecded);
  soc.load(R"(
    loop:
      addi r1, r1, 1
      j loop
  )");
  soc.kernel.spawn("injector", [](Soc& soc) -> Coro {
    co_await delay(Time::us(10));
    // Double-bit flip in the first instruction word: uncorrectable.
    soc.ram.flip_codeword_bit(0, 3);
    soc.ram.flip_codeword_bit(0, 17);
  }(soc));
  soc.kernel.run(Time::ms(1));
  EXPECT_EQ(soc.cpu.state(), Cpu::State::kFaulted);
  EXPECT_EQ(soc.cpu.fault_cause(), Cpu::FaultCause::kBusError);
  EXPECT_EQ(soc.ram.uncorrectable_errors(), 1u);
}

TEST(Cpu, EccMemoryMasksSingleBitFetchUpset) {
  Cpu::Config cfg;
  Soc soc(cfg, EccMode::kSecded);
  soc.load(R"(
      addi r2, r0, 2000
    loop:
      addi r2, r2, -1
      bne  r2, r0, loop
      halt
  )");
  soc.kernel.spawn("injector", [](Soc& soc) -> Coro {
    co_await delay(Time::us(10));
    soc.ram.flip_codeword_bit(1, 9);  // single-bit: must be corrected
  }(soc));
  soc.kernel.run(Time::ms(10));
  EXPECT_EQ(soc.cpu.state(), Cpu::State::kHalted);
  EXPECT_GE(soc.ram.corrected_errors(), 1u);
}

}  // namespace

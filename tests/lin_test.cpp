// LIN bus tests: PID parity (full table property), enhanced checksum
// vectors and carry behaviour, schedule-table round-robin, silent-slave
// accounting, and checksum-based corruption drops (LIN has no retry).

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "vps/can/lin.hpp"
#include "vps/support/ensure.hpp"

namespace {

using namespace vps::can;
using namespace vps::sim;

TEST(LinPid, ParityRoundTripForAllIds) {
  for (std::uint8_t id = 0; id <= kMaxLinId; ++id) {
    const std::uint8_t pid = lin_pid(id);
    EXPECT_EQ((pid & 0x3F), id);
    const auto back = lin_check_pid(pid);
    ASSERT_TRUE(back.has_value()) << int(id);
    EXPECT_EQ(*back, id);
  }
  EXPECT_THROW((void)lin_pid(60), vps::support::InvariantError);
}

TEST(LinPid, KnownVectors) {
  // Classic LIN examples: id 0x00 -> PID 0x80, id 0x3C -> ... (diag range
  // excluded here); id 0x10 -> 0x50, id 0x21 -> 0x61, id 0x2F -> 0xEF.
  EXPECT_EQ(lin_pid(0x00), 0x80);
  EXPECT_EQ(lin_pid(0x10), 0x50);
  EXPECT_EQ(lin_pid(0x21), 0x61);
}

TEST(LinPid, SingleBitErrorsDetected) {
  for (std::uint8_t id = 0; id <= kMaxLinId; ++id) {
    const std::uint8_t pid = lin_pid(id);
    for (int bit = 0; bit < 8; ++bit) {
      const auto corrupted = static_cast<std::uint8_t>(pid ^ (1u << bit));
      const auto decoded = lin_check_pid(corrupted);
      // Parity covers the id bits: any single-bit flip must either fail the
      // check or decode to a *different* id (never silently the same id).
      if (decoded.has_value()) EXPECT_NE(*decoded, id);
    }
  }
}

TEST(LinChecksum, CarryAddAndInversion) {
  // Enhanced checksum example: PID 0x4A, data {0x55, 0x93, 0xE5}:
  // 0x4A+0x55=0x9F, +0x93=0x132->0x33, +0xE5=0x118->0x19, ~0x19=0xE6.
  const std::vector<std::uint8_t> data{0x55, 0x93, 0xE5};
  EXPECT_EQ(lin_checksum(0x4A, data), 0xE6);
  // Any data bit flip changes the checksum.
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupted = data;
      corrupted[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(lin_checksum(0x4A, corrupted), 0xE6);
    }
  }
}

// Test node: publishes a counter for its own slots, records everything else.
class Node final : public LinNode {
 public:
  std::optional<std::vector<std::uint8_t>> publish(std::uint8_t frame_id) override {
    ++publishes;
    if (silent) return std::nullopt;
    return std::vector<std::uint8_t>{frame_id, counter++};
  }
  void on_frame(std::uint8_t frame_id, std::span<const std::uint8_t> data) override {
    received[frame_id].push_back(data[1]);
  }
  bool silent = false;
  std::uint8_t counter = 0;
  int publishes = 0;
  std::map<std::uint8_t, std::vector<std::uint8_t>> received;
};

struct LinFixture {
  Kernel kernel;
  LinBus bus{kernel, "lin0", 19200};
  Node master, slave1, slave2;
  LinFixture() {
    bus.attach(master);
    bus.attach(slave1);
    bus.attach(slave2);
  }
};

TEST(LinBusTest, ScheduleRoundRobinDeliversToSubscribers) {
  LinFixture fx;
  fx.bus.add_slot(0x10, fx.slave1, 2);
  fx.bus.add_slot(0x11, fx.slave2, 2);
  fx.bus.add_slot(0x12, fx.master, 2);
  fx.kernel.run(Time::ms(100));
  // ~19200bps, slot ~4.4ms -> roughly 7 full table cycles in 100ms.
  EXPECT_GE(fx.bus.stats().headers_sent, 20u);
  EXPECT_EQ(fx.bus.stats().silent_slots, 0u);
  // Every non-publisher sees every id.
  EXPECT_FALSE(fx.master.received[0x10].empty());
  EXPECT_FALSE(fx.master.received[0x11].empty());
  EXPECT_FALSE(fx.slave1.received[0x11].empty());
  EXPECT_FALSE(fx.slave2.received[0x10].empty());
  EXPECT_TRUE(fx.slave1.received[0x10].empty());  // no self-reception
  // In-order counter values (no duplication/loss on a clean bus).
  const auto& seq = fx.master.received[0x10];
  for (std::size_t i = 1; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i], static_cast<std::uint8_t>(seq[i - 1] + 1));
  }
}

TEST(LinBusTest, SilentSlaveCountsEmptySlots) {
  LinFixture fx;
  fx.bus.add_slot(0x10, fx.slave1, 2);
  fx.slave1.silent = true;
  fx.kernel.run(Time::ms(50));
  EXPECT_GT(fx.bus.stats().silent_slots, 5u);
  EXPECT_EQ(fx.bus.stats().responses_delivered, 0u);
  EXPECT_GT(fx.slave1.publishes, 5);  // it was polled, it just never answered
}

TEST(LinBusTest, CorruptionDropsWithoutRetry) {
  LinFixture fx;
  fx.bus.add_slot(0x10, fx.slave1, 2);
  fx.bus.set_error_rate(0.5, 7);
  fx.kernel.run(Time::ms(200));
  const auto& s = fx.bus.stats();
  EXPECT_GT(s.checksum_errors, 5u);
  EXPECT_GT(s.responses_delivered, 5u);
  // No retransmission: every header resolves to exactly one of delivered /
  // corrupted / silent (at most one slot can be in flight at the horizon).
  const auto resolved = s.responses_delivered + s.checksum_errors + s.silent_slots;
  EXPECT_GE(s.headers_sent, resolved);
  EXPECT_LE(s.headers_sent - resolved, 1u);
  // Subscribers observe gaps in the counter sequence (lost slots).
  const auto& seq = fx.master.received[0x10];
  bool gap = false;
  for (std::size_t i = 1; i < seq.size(); ++i) {
    gap |= seq[i] != static_cast<std::uint8_t>(seq[i - 1] + 1);
  }
  EXPECT_TRUE(gap);
}

TEST(LinBusTest, SlotTimingScalesWithLength) {
  Kernel k;
  LinBus bus(k, "lin", 19200);
  const LinBus::Slot short_slot{0x01, nullptr, 2};
  const LinBus::Slot long_slot{0x02, nullptr, 8};
  EXPECT_GT(bus.slot_time(long_slot), bus.slot_time(short_slot));
  // 2-byte slot: 34+30=64 bits * 1.4 ≈ 89 bits ≈ 4.66ms at 19200bps.
  const double ms = bus.slot_time(short_slot).to_seconds() * 1e3;
  EXPECT_GT(ms, 4.0);
  EXPECT_LT(ms, 5.5);
}

TEST(LinBusTest, RejectsBadSlots) {
  Kernel k;
  LinBus bus(k, "lin", 19200);
  Node n;
  EXPECT_THROW(bus.add_slot(60, n, 2), vps::support::InvariantError);
  EXPECT_THROW(bus.add_slot(1, n, 0), vps::support::InvariantError);
  EXPECT_THROW(bus.add_slot(1, n, 9), vps::support::InvariantError);
}

}  // namespace

// Fault-tolerant campaign execution: kernel watchdog budgets terminating
// livelocked models as kTimeout, crash-isolated replays quarantining
// throwing scenarios as kSimCrash, and checkpoint/resume producing results
// byte-identical to an uninterrupted campaign for both drivers.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "vps/apps/caps.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/fault/checkpoint.hpp"
#include "vps/fault/codec.hpp"
#include "vps/sim/kernel.hpp"
#include "vps/support/crc.hpp"
#include "vps/support/ensure.hpp"

namespace {

using namespace vps::fault;
using vps::apps::CapsConfig;
using vps::apps::CapsScenario;
using vps::sim::Coro;
using vps::sim::Event;
using vps::sim::Kernel;
using vps::sim::RunBudget;
using vps::sim::RunStatus;
using vps::sim::StopReason;
using vps::sim::Time;
using vps::support::InvariantError;
namespace codec = vps::fault::codec;

// --------------------------------------------------------------------------
// Livelocked model -> kTimeout (tentpole part 1, end to end)
// --------------------------------------------------------------------------

/// A tiny VP whose model livelocks under every injected fault: the fault
/// starts a delta-notification storm at inject_at, so without a watchdog
/// budget the replay would hang the campaign worker forever. The scenario's
/// detection logic never fires, making every timeout undetected-dangerous.
class LivelockScenario final : public Scenario {
 public:
  [[nodiscard]] std::string name() const override { return "livelock_probe"; }
  [[nodiscard]] Time duration() const override { return Time::us(100); }
  [[nodiscard]] std::vector<FaultType> fault_types() const override {
    return {FaultType::kSignalStuck};
  }
  [[nodiscard]] Observation run(const FaultDescriptor* fault, std::uint64_t) override {
    Kernel kernel;
    Event storm(kernel, "storm");
    std::uint64_t ticks = 0;
    kernel.spawn("workload", [](Kernel& k, std::uint64_t& ticks) -> Coro {
      while (k.now() < Time::us(100)) {
        co_await vps::sim::delay(Time::us(1));
        ++ticks;
      }
    }(kernel, ticks));
    if (fault != nullptr) {
      kernel.method("stuck_feedback", [&storm] { storm.notify(); }, {&storm},
                    /*initialize=*/false);
      kernel.spawn("fault", [](Event& storm, Time at) -> Coro {
        co_await vps::sim::delay(at);
        storm.notify();
      }(storm, fault->inject_at));
    }
    const RunStatus status =
        kernel.run(Time::us(100), RunBudget{.max_deltas_without_advance = 1000});
    Observation obs;
    obs.completed = !status.budget_exhausted();
    vps::support::Crc32 sig;
    sig.update_u64(ticks);
    obs.output_signature = sig.value();
    return obs;
  }
};

TEST(Resilience, LivelockedModelClassifiesAsTimeoutAndDragsDcDown) {
  LivelockScenario scenario;
  CampaignConfig cfg;
  cfg.runs = 12;
  cfg.seed = 3;
  cfg.location_buckets = 4;
  const auto result = Campaign(scenario, cfg).run();
  // Every fault livelocks the model; the budget terminated every replay.
  EXPECT_EQ(result.count(Outcome::kTimeout), 12u);
  EXPECT_EQ(result.runs_executed, 12u);
  // Undetected hangs are dangerous: DC must collapse to 0, not report 1.
  EXPECT_DOUBLE_EQ(result.diagnostic_coverage(), 0.0);
  const auto spots = result.weak_spots();
  ASSERT_EQ(spots.size(), 1u);
  EXPECT_DOUBLE_EQ(spots[0].danger_rate(), 1.0);
}

TEST(Resilience, LivelockTerminatesWithinBudgetNotWallClock) {
  // Direct check that the run returns (rather than relying on a test
  // timeout): a single livelocked replay stops after ~1000 deltas.
  LivelockScenario scenario;
  FaultDescriptor fault;
  fault.id = 1;
  fault.type = FaultType::kSignalStuck;
  fault.inject_at = Time::us(50);
  const Observation golden = scenario.run(nullptr, 1);
  ASSERT_TRUE(golden.completed);
  const Observation faulty = scenario.run(&fault, 1);
  EXPECT_FALSE(faulty.completed);
  EXPECT_EQ(classify(golden, faulty), Outcome::kTimeout);
}

// --------------------------------------------------------------------------
// Throwing scenario -> kSimCrash (tentpole part 2, sequential driver)
// --------------------------------------------------------------------------

/// Throws on descriptors whose id is divisible by `crash_every`; runs the
/// wrapped airbag scenario otherwise.
class CrashyCaps final : public Scenario {
 public:
  explicit CrashyCaps(std::uint64_t crash_every)
      : inner_(CapsConfig{.duration = Time::ms(10)}), crash_every_(crash_every) {}
  [[nodiscard]] std::string name() const override { return inner_.name(); }
  [[nodiscard]] Time duration() const override { return inner_.duration(); }
  [[nodiscard]] std::vector<FaultType> fault_types() const override {
    return inner_.fault_types();
  }
  [[nodiscard]] Observation run(const FaultDescriptor* fault, std::uint64_t seed) override {
    if (fault != nullptr && fault->id % crash_every_ == 0) {
      throw std::runtime_error("model crash @" + std::to_string(fault->id));
    }
    return inner_.run(fault, seed);
  }

 private:
  CapsScenario inner_;
  std::uint64_t crash_every_;
};

TEST(Resilience, ThrowingScenarioIsQuarantinedAndCampaignContinues) {
  CrashyCaps scenario(4);
  CampaignConfig cfg;
  cfg.runs = 16;
  cfg.seed = 8;
  cfg.location_buckets = 8;
  cfg.crash_retries = 2;
  const auto result = Campaign(scenario, cfg).run();
  EXPECT_EQ(result.runs_executed, 16u);  // the crashes did not end the campaign
  EXPECT_EQ(result.count(Outcome::kSimCrash), 4u);
  ASSERT_EQ(result.quarantine.size(), 4u);
  for (const auto& q : result.quarantine) {
    EXPECT_EQ(q.fault.id % 4, 0u);
    EXPECT_NE(q.what.find("model crash"), std::string::npos);
    EXPECT_EQ(q.attempts, 3u);  // 1 + crash_retries
  }
  // Crashes are infrastructure failures: excluded from DC entirely. A
  // result whose only "bad" outcomes are crashes keeps the DC of the rest.
  CampaignResult only_crashes;
  only_crashes.outcome_counts[static_cast<std::size_t>(Outcome::kSimCrash)] = 5;
  only_crashes.runs_executed = 5;
  EXPECT_DOUBLE_EQ(only_crashes.diagnostic_coverage(), 1.0);
}

TEST(Resilience, ReplayIsolatedRetriesThenCapturesDiagnostics) {
  CrashyCaps scenario(1);  // every descriptor crashes
  FaultDescriptor fault;
  fault.id = 7;
  Observation golden;
  golden.completed = true;
  const ReplayResult r = replay_isolated(scenario, fault, 1, golden, 2);
  EXPECT_EQ(r.outcome, Outcome::kSimCrash);
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_NE(r.crash_what.find("model crash @7"), std::string::npos);
}

// --------------------------------------------------------------------------
// Checkpoint serialization (tentpole part 3)
// --------------------------------------------------------------------------

CampaignCheckpoint sample_checkpoint() {
  CampaignCheckpoint cp;
  cp.driver = "campaign";
  cp.scenario = "airbag \"caps\"\nv2";  // exercises JSON string escaping
  cp.config.runs = 40;
  cp.config.seed = 0xDEADBEEF;
  cp.config.strategy = Strategy::kGuided;
  cp.config.location_buckets = 8;
  cp.config.time_windows = 4;
  cp.config.stop_after_hazards = 3;
  cp.config.batch_size = 7;
  cp.config.crash_retries = 2;
  cp.golden.output_signature = 0x12345678;
  cp.golden.completed = true;
  cp.golden.detected = 2;
  RunRecord r1;
  r1.fault.id = 1;
  r1.fault.type = FaultType::kSensorOffset;
  r1.fault.persistence = Persistence::kTransient;
  r1.fault.inject_at = Time::us(13);
  r1.fault.duration = Time::ns(700);
  r1.fault.location = "sensor/radar[0]";
  r1.fault.address = 0xFFFF0001;
  r1.fault.bit = -1;
  r1.fault.magnitude = 0.1;  // not exactly representable: hexfloat must hold it
  r1.outcome = Outcome::kSilentDataCorruption;
  RunRecord r2;
  r2.fault.id = 2;
  r2.fault.type = FaultType::kTaskKill;
  r2.fault.persistence = Persistence::kPermanent;
  r2.fault.location = "os/task \\ \"control\"";
  r2.fault.magnitude = -1.0 / 3.0;
  r2.outcome = Outcome::kSimCrash;
  r2.crash_what = "std::bad_alloc\tduring replay";
  cp.records = {r1, r2};
  return cp;
}

TEST(Checkpoint, JsonlRoundTripIsExact) {
  const CampaignCheckpoint cp = sample_checkpoint();
  const std::string text = to_jsonl(cp);
  const CampaignCheckpoint back = checkpoint_from_jsonl(text);
  EXPECT_EQ(back.driver, cp.driver);
  EXPECT_EQ(back.scenario, cp.scenario);
  EXPECT_EQ(back.config.runs, cp.config.runs);
  EXPECT_EQ(back.config.seed, cp.config.seed);
  EXPECT_EQ(back.config.strategy, cp.config.strategy);
  EXPECT_EQ(back.config.location_buckets, cp.config.location_buckets);
  EXPECT_EQ(back.config.time_windows, cp.config.time_windows);
  EXPECT_EQ(back.config.stop_after_hazards, cp.config.stop_after_hazards);
  EXPECT_EQ(back.config.batch_size, cp.config.batch_size);
  EXPECT_EQ(back.config.crash_retries, cp.config.crash_retries);
  EXPECT_EQ(back.golden.output_signature, cp.golden.output_signature);
  EXPECT_EQ(back.golden.completed, cp.golden.completed);
  EXPECT_EQ(back.golden.detected, cp.golden.detected);
  ASSERT_EQ(back.records.size(), cp.records.size());
  for (std::size_t i = 0; i < cp.records.size(); ++i) {
    const auto& a = cp.records[i];
    const auto& b = back.records[i];
    EXPECT_EQ(b.fault.id, a.fault.id);
    EXPECT_EQ(b.fault.type, a.fault.type);
    EXPECT_EQ(b.fault.persistence, a.fault.persistence);
    EXPECT_EQ(b.fault.inject_at, a.fault.inject_at);
    EXPECT_EQ(b.fault.duration, a.fault.duration);
    EXPECT_EQ(b.fault.location, a.fault.location);
    EXPECT_EQ(b.fault.address, a.fault.address);
    EXPECT_EQ(b.fault.bit, a.fault.bit);
    EXPECT_EQ(b.fault.magnitude, a.fault.magnitude);  // bitwise via hexfloat
    EXPECT_EQ(b.outcome, a.outcome);
    EXPECT_EQ(b.crash_what, a.crash_what);
  }
  EXPECT_EQ(back.next_run(), 2u);
  // Serialization is deterministic (resume must be able to re-save the same
  // bytes when nothing changed).
  EXPECT_EQ(to_jsonl(back), text);
}

TEST(Checkpoint, RejectsTruncationVersionSkewAndGarbage) {
  const std::string text = to_jsonl(sample_checkpoint());
  // Truncation: losing the end line (or part of it) must be detected.
  const std::size_t last_line = text.rfind("\n{");
  ASSERT_NE(last_line, std::string::npos);
  EXPECT_THROW((void)checkpoint_from_jsonl(text.substr(0, last_line + 1)), InvariantError);
  EXPECT_THROW((void)checkpoint_from_jsonl(text.substr(0, text.size() - 4)), InvariantError);
  // Version skew (a future version must be rejected, not half-parsed).
  std::string skewed = text;
  const std::string vkey = "\"version\":" + std::to_string(CampaignCheckpoint::kVersion);
  const std::size_t v = skewed.find(vkey);
  ASSERT_NE(v, std::string::npos);
  skewed.replace(v, vkey.size(), "\"version\":99");
  EXPECT_THROW((void)checkpoint_from_jsonl(skewed), InvariantError);
  // Arbitrary garbage.
  EXPECT_THROW((void)checkpoint_from_jsonl("not a checkpoint"), InvariantError);
  EXPECT_THROW((void)checkpoint_from_jsonl(""), InvariantError);
}

TEST(Checkpoint, SaveLoadRoundTripsThroughDisk) {
  const std::string path = "/tmp/vps_checkpoint_roundtrip.jsonl";
  const CampaignCheckpoint cp = sample_checkpoint();
  save_checkpoint(cp, path);
  const CampaignCheckpoint back = load_checkpoint(path);
  EXPECT_EQ(to_jsonl(back), to_jsonl(cp));
  std::remove(path.c_str());
  EXPECT_THROW((void)load_checkpoint(path), InvariantError);
}

// --------------------------------------------------------------------------
// Per-line CRC integrity (checkpoint v3)
// --------------------------------------------------------------------------

TEST(Checkpoint, EveryV3LineCarriesAVerifiableCrc) {
  const std::string text = to_jsonl(sample_checkpoint());
  std::size_t pos = 0;
  int lines = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    ++lines;
    EXPECT_NE(line.find("\"crc\":\""), std::string::npos) << line;
    EXPECT_TRUE(codec::check_crc(line)) << line;
    // Any single-character change inside the object body must break it.
    std::string tampered = line;
    tampered[10] = tampered[10] == 'x' ? 'y' : 'x';
    std::string error;
    EXPECT_FALSE(codec::check_crc(tampered, &error));
    EXPECT_FALSE(error.empty());
  }
  EXPECT_EQ(lines, 6);  // header, config, golden, 2 records, end
}

TEST(Checkpoint, CorruptRecordLineIsReportedAndFileTruncatedToLastGoodRecord) {
  const std::string path = "/tmp/vps_checkpoint_crc_recovery.jsonl";
  save_checkpoint(sample_checkpoint(), path);

  // Flip one byte inside the SECOND record line on disk.
  std::string text;
  {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }
  std::size_t rec = text.find("\"kind\":\"record\"");
  ASSERT_NE(rec, std::string::npos);
  rec = text.find("\"kind\":\"record\"", rec + 1);
  ASSERT_NE(rec, std::string::npos);
  text[rec + 20] ^= 0x01;
  {
    std::ofstream out(path, std::ios::trunc);
    out << text;
  }

  // The strict entry point treats the bad line as fatal...
  EXPECT_THROW((void)checkpoint_from_jsonl(text), InvariantError);

  // ...while load_checkpoint recovers: the good prefix survives, the report
  // says what was dropped, and the file is rewritten clean.
  CheckpointRecovery recovery;
  const CampaignCheckpoint back = load_checkpoint(path, &recovery);
  EXPECT_EQ(back.records.size(), 1u);
  EXPECT_EQ(back.records[0].fault.id, 1u);
  EXPECT_EQ(recovery.dropped_records, 1u);
  EXPECT_TRUE(recovery.file_rewritten);
  EXPECT_FALSE(recovery.first_error.empty());

  CheckpointRecovery second;
  const CampaignCheckpoint clean = load_checkpoint(path, &second);
  EXPECT_EQ(clean.records.size(), 1u);
  EXPECT_EQ(second.dropped_records, 0u);
  EXPECT_FALSE(second.file_rewritten);
  std::remove(path.c_str());
}

TEST(Checkpoint, HeaderCorruptionIsNeverRecoverable) {
  std::string text = to_jsonl(sample_checkpoint());
  text[2] ^= 0x01;  // inside the header line
  CheckpointRecovery recovery;
  EXPECT_THROW((void)checkpoint_from_jsonl(text, &recovery), InvariantError);
}

TEST(Checkpoint, V2FilesWithoutCrcFieldsStillLoad) {
  const CampaignCheckpoint cp = sample_checkpoint();
  std::string text = to_jsonl(cp);
  // Regress the file to v2: strip every per-line CRC trailer and lower the
  // header version.
  for (std::size_t p; (p = text.find(",\"crc\":\"")) != std::string::npos;) {
    text.erase(p, 17);  // ,"crc":"xxxxxxxx"
  }
  const std::string v3 = "\"version\":" + std::to_string(CampaignCheckpoint::kVersion);
  const std::size_t v = text.find(v3);
  ASSERT_NE(v, std::string::npos);
  text.replace(v, v3.size(), "\"version\":2");

  const CampaignCheckpoint back = checkpoint_from_jsonl(text);
  EXPECT_EQ(back.records.size(), cp.records.size());
  EXPECT_EQ(back.driver, cp.driver);
  EXPECT_EQ(back.records[1].crash_what, cp.records[1].crash_what);
  EXPECT_EQ(back.records[1].fault.magnitude, cp.records[1].fault.magnitude);
}

// --------------------------------------------------------------------------
// Resume == uninterrupted (both drivers)
// --------------------------------------------------------------------------

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.outcome_counts, b.outcome_counts);
  EXPECT_EQ(a.runs_executed, b.runs_executed);
  EXPECT_EQ(a.faults_to_first_hazard, b.faults_to_first_hazard);
  EXPECT_EQ(a.final_coverage, b.final_coverage);
  EXPECT_EQ(a.coverage_curve, b.coverage_curve);
  EXPECT_EQ(a.interrupted, b.interrupted);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].fault.id, b.records[i].fault.id);
    EXPECT_EQ(a.records[i].fault.type, b.records[i].fault.type);
    EXPECT_EQ(a.records[i].fault.inject_at, b.records[i].fault.inject_at);
    EXPECT_EQ(a.records[i].fault.address, b.records[i].fault.address);
    EXPECT_EQ(a.records[i].fault.magnitude, b.records[i].fault.magnitude);
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome);
    EXPECT_EQ(a.records[i].crash_what, b.records[i].crash_what);
  }
  ASSERT_EQ(a.quarantine.size(), b.quarantine.size());
  for (std::size_t i = 0; i < a.quarantine.size(); ++i) {
    EXPECT_EQ(a.quarantine[i].fault.id, b.quarantine[i].fault.id);
    EXPECT_EQ(a.quarantine[i].what, b.quarantine[i].what);
    EXPECT_EQ(a.quarantine[i].attempts, b.quarantine[i].attempts);
  }
  EXPECT_EQ(a.hazard_probability.estimate, b.hazard_probability.estimate);
  EXPECT_EQ(a.hazard_probability.lo, b.hazard_probability.lo);
  EXPECT_EQ(a.hazard_probability.hi, b.hazard_probability.hi);
}

TEST(Resilience, SequentialResumeMatchesUninterruptedRun) {
  const std::string path = "/tmp/vps_resume_seq.jsonl";
  for (const auto strategy : {Strategy::kMonteCarlo, Strategy::kGuided}) {
    SCOPED_TRACE(to_string(strategy));
    CampaignConfig cfg;
    cfg.runs = 30;
    cfg.seed = 21;
    cfg.strategy = strategy;
    cfg.location_buckets = 8;
    cfg.checkpoint_path = path;

    CapsScenario uninterrupted_scenario(CapsConfig{.duration = Time::ms(10)});
    const auto uninterrupted = Campaign(uninterrupted_scenario, cfg).run();

    for (const std::size_t cut : {std::size_t{5}, std::size_t{13}, std::size_t{29}}) {
      SCOPED_TRACE("cut=" + std::to_string(cut));
      cfg.preempt_after = cut;
      CapsScenario first_half(CapsConfig{.duration = Time::ms(10)});
      const auto partial = Campaign(first_half, cfg).run();
      EXPECT_TRUE(partial.interrupted);
      EXPECT_EQ(partial.runs_executed, cut);

      const CampaignCheckpoint cp = load_checkpoint(path);
      EXPECT_EQ(cp.next_run(), cut);
      CampaignConfig resume_cfg = cfg;
      resume_cfg.preempt_after = 0;
      CapsScenario second_half(CapsConfig{.duration = Time::ms(10)});
      const auto resumed = Campaign(second_half, resume_cfg).resume(cp);
      expect_identical(resumed, uninterrupted);
    }
  }
  std::remove(path.c_str());
}

TEST(Resilience, SequentialResumeWithCrashesRebuildsQuarantine) {
  const std::string path = "/tmp/vps_resume_crash.jsonl";
  CampaignConfig cfg;
  cfg.runs = 20;
  cfg.seed = 5;
  cfg.location_buckets = 8;
  cfg.checkpoint_path = path;
  CrashyCaps full(3);
  const auto uninterrupted = Campaign(full, cfg).run();
  ASSERT_GT(uninterrupted.quarantine.size(), 0u);

  cfg.preempt_after = 11;  // past at least one crashing run
  CrashyCaps half(3);
  const auto partial = Campaign(half, cfg).run();
  ASSERT_TRUE(partial.interrupted);
  const CampaignCheckpoint cp = load_checkpoint(path);
  CampaignConfig resume_cfg = cfg;
  resume_cfg.preempt_after = 0;
  CrashyCaps rest(3);
  const auto resumed = Campaign(rest, resume_cfg).resume(cp);
  expect_identical(resumed, uninterrupted);
  std::remove(path.c_str());
}

TEST(Resilience, ParallelResumeMatchesUninterruptedRunForAnyWorkerCount) {
  const std::string path = "/tmp/vps_resume_par.jsonl";
  CampaignConfig cfg;
  cfg.runs = 24;
  cfg.seed = 42;
  cfg.strategy = Strategy::kGuided;
  cfg.location_buckets = 8;
  cfg.batch_size = 8;
  cfg.checkpoint_path = path;
  const auto factory = [] {
    return std::make_unique<CapsScenario>(CapsConfig{.duration = Time::ms(10)});
  };

  cfg.workers = 4;
  const auto uninterrupted = ParallelCampaign(factory, cfg).run();

  cfg.preempt_after = 8;  // preempts at the first batch barrier
  const auto partial = ParallelCampaign(factory, cfg).run();
  EXPECT_TRUE(partial.interrupted);
  EXPECT_EQ(partial.runs_executed, 8u);

  const CampaignCheckpoint cp = load_checkpoint(path);
  EXPECT_EQ(cp.driver, "parallel_campaign");
  EXPECT_EQ(cp.next_run(), 8u);
  CampaignConfig resume_cfg = cfg;
  resume_cfg.preempt_after = 0;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    resume_cfg.workers = workers;
    const auto resumed = ParallelCampaign(factory, resume_cfg).resume(cp);
    expect_identical(resumed, uninterrupted);
  }
  std::remove(path.c_str());
}

TEST(Resilience, PeriodicCheckpointsAreWrittenDuringTheRun) {
  const std::string path = "/tmp/vps_periodic_cp.jsonl";
  CampaignConfig cfg;
  cfg.runs = 10;
  cfg.seed = 9;
  cfg.location_buckets = 4;
  cfg.checkpoint_every = 4;
  cfg.checkpoint_path = path;
  CapsScenario scenario(CapsConfig{.duration = Time::ms(10)});
  const auto result = Campaign(scenario, cfg).run();
  EXPECT_FALSE(result.interrupted);
  EXPECT_EQ(result.runs_executed, 10u);
  // The last periodic checkpoint (at run 8) is on disk and resumable.
  const CampaignCheckpoint cp = load_checkpoint(path);
  EXPECT_EQ(cp.next_run(), 8u);
  CapsScenario rest(CapsConfig{.duration = Time::ms(10)});
  const auto resumed = Campaign(rest, cfg).resume(cp);
  expect_identical(resumed, result);
  std::remove(path.c_str());
}

TEST(Resilience, ResumeRejectsMismatchedConfigScenarioOrDriver) {
  const std::string path = "/tmp/vps_resume_reject.jsonl";
  CampaignConfig cfg;
  cfg.runs = 8;
  cfg.seed = 2;
  cfg.location_buckets = 4;
  cfg.preempt_after = 4;
  cfg.checkpoint_path = path;
  CapsScenario scenario(CapsConfig{.duration = Time::ms(10)});
  (void)Campaign(scenario, cfg).run();
  const CampaignCheckpoint cp = load_checkpoint(path);

  CampaignConfig other = cfg;
  other.seed = 3;
  CapsScenario s2(CapsConfig{.duration = Time::ms(10)});
  EXPECT_THROW((void)Campaign(s2, other).resume(cp), InvariantError);

  // Wrong driver: a sequential checkpoint cannot seed a parallel campaign.
  CampaignConfig par = cfg;
  par.preempt_after = 0;
  ParallelCampaign parallel(
      [] { return std::make_unique<CapsScenario>(CapsConfig{.duration = Time::ms(10)}); }, par);
  EXPECT_THROW((void)parallel.resume(cp), InvariantError);

  // Wrong scenario.
  LivelockScenario foreign;
  CampaignConfig lcfg = cfg;
  lcfg.preempt_after = 0;
  EXPECT_THROW((void)Campaign(foreign, lcfg).resume(cp), InvariantError);
  std::remove(path.c_str());
}

}  // namespace

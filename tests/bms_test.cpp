// BMS virtual ECU twin: unit truth tables (fusion, correlation engine,
// telemetry codec), UART line-error semantics, multi-rate alert switching,
// golden mission behaviour (thermal runaway contained, short circuit
// disconnected inside the FTTI hold), end-to-end fault effects, and the
// cross-driver determinism contract — snapshot-fork vs full replay,
// parallel worker counts, a distributed fleet, and checkpoint resume all
// fold bitwise identically.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "vps/apps/bms.hpp"
#include "vps/apps/registry.hpp"
#include "vps/dist/coordinator.hpp"
#include "vps/ecu/os.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/fault/checkpoint.hpp"
#include "vps/fault/descriptor.hpp"
#include "vps/hw/uart.hpp"
#include "vps/obs/provenance.hpp"
#include "vps/sim/kernel.hpp"
#include "vps/support/rng.hpp"

namespace {

using namespace vps;
using namespace vps::apps::bms;
using apps::BmsConfig;
using apps::BmsDiagnostics;
using apps::BmsMission;
using apps::BmsScenario;
using fault::CampaignConfig;
using fault::CampaignResult;
using fault::FaultDescriptor;
using fault::FaultType;
using fault::Observation;
using fault::Persistence;
using sim::Time;

// --------------------------------------------------------------------------
// Sensor fusion truth tables
// --------------------------------------------------------------------------

TEST(BmsFusion, ElectricalTruthTable) {
  const Thresholds th;
  {
    const double v[4] = {3.9, 3.9, 3.9, 3.9};
    EXPECT_EQ(fuse_electrical(v, 4, 10.0, th), 0);
  }
  {
    const double v[4] = {3.9, 4.30, 3.9, 3.9};
    EXPECT_EQ(fuse_electrical(v, 4, 10.0, th), kOverVoltage);
  }
  {
    const double v[4] = {3.9, 3.9, 2.5, 3.9};
    EXPECT_EQ(fuse_electrical(v, 4, 10.0, th), kUnderVoltage);
  }
  {
    const double v[4] = {3.9, 3.9, 3.9, 3.9};
    EXPECT_EQ(fuse_electrical(v, 4, 150.0, th), kOverCurrent);
    EXPECT_EQ(fuse_electrical(v, 4, -150.0, th), kOverCurrent);
  }
  {
    // A reading outside the plausibility window is a sensor defect, not a
    // pack condition: it must NOT raise UV as well.
    const double v[4] = {3.9, 0.0, 3.9, 3.9};
    EXPECT_EQ(fuse_electrical(v, 4, 10.0, th), kImplausible);
  }
  {
    // Implausible current suppresses the over-current verdict too.
    const double v[4] = {3.9, 3.9, 3.9, 3.9};
    EXPECT_EQ(fuse_electrical(v, 4, 500.0, th), kImplausible);
  }
  {
    // Short-circuit signature: sagging cells while conducting hard.
    const double v[4] = {1.4, 1.4, 1.4, 1.4};
    EXPECT_EQ(fuse_electrical(v, 4, 250.0, th), kUnderVoltage | kOverCurrent);
  }
}

TEST(BmsFusion, ThermalTruthTable) {
  const Thresholds th;
  const double ok[4] = {28.0, 29.0, 30.0, 28.0};
  EXPECT_EQ(fuse_thermal(ok, 4, th), 0);
  const double hot[4] = {28.0, 29.0, 62.0, 28.0};
  EXPECT_EQ(fuse_thermal(hot, 4, th), kOverTemp);
  const double broken[4] = {28.0, 29.0, 200.0, 28.0};
  EXPECT_EQ(fuse_thermal(broken, 4, th), kImplausible);
  const double open_wire[4] = {-55.0, 29.0, 62.0, 28.0};
  EXPECT_EQ(fuse_thermal(open_wire, 4, th), kImplausible | kOverTemp);
}

// --------------------------------------------------------------------------
// Correlation engine
// --------------------------------------------------------------------------

TEST(BmsCorrelation, EscalatesOneLevelPerHoldAndLatches) {
  CorrelationEngine::Config cfg;
  cfg.escalate_hold = Time::ms(400);
  cfg.clear_hold = Time::ms(600);
  CorrelationEngine engine(cfg);

  EXPECT_EQ(engine.step(0, Time::ms(0)), State::kNormal);
  EXPECT_EQ(engine.step(kOverTemp, Time::ms(100)), State::kWarning);
  EXPECT_EQ(engine.step(kOverTemp, Time::ms(400)), State::kWarning);
  EXPECT_EQ(engine.step(kOverTemp, Time::ms(500)), State::kCritical);
  EXPECT_EQ(engine.step(kOverTemp, Time::ms(800)), State::kCritical);
  EXPECT_EQ(engine.step(kOverTemp, Time::ms(900)), State::kEmergency);
  EXPECT_TRUE(engine.latched());
  // EMERGENCY latches: an all-clear mask must not release it.
  EXPECT_EQ(engine.step(0, Time::sec(10)), State::kEmergency);
  EXPECT_EQ(engine.escalations(), 3u);
}

TEST(BmsCorrelation, QuietClearsBelowEmergency) {
  CorrelationEngine engine;
  EXPECT_EQ(engine.step(kUnderVoltage, Time::ms(0)), State::kWarning);
  EXPECT_EQ(engine.step(0, Time::ms(100)), State::kWarning);
  EXPECT_EQ(engine.step(0, Time::ms(500)), State::kWarning);  // quiet 400 < 600
  EXPECT_EQ(engine.step(0, Time::ms(701)), State::kNormal);
}

TEST(BmsCorrelation, CombinationSignaturesGoStraightToEmergency) {
  {
    CorrelationEngine engine;
    EXPECT_EQ(engine.step(kOverCurrent | kUnderVoltage, Time::ms(50)), State::kEmergency);
  }
  {
    CorrelationEngine engine;
    EXPECT_EQ(engine.step(kOverTemp | kOverCurrent, Time::ms(50)), State::kEmergency);
  }
  {
    // OT alone is NOT a combination signature — it takes the persistence path.
    CorrelationEngine engine;
    EXPECT_EQ(engine.step(kOverTemp, Time::ms(50)), State::kWarning);
  }
}

// --------------------------------------------------------------------------
// Telemetry codec
// --------------------------------------------------------------------------

TelemetryFrame sample_frame() {
  TelemetryFrame f;
  f.seq = 42;
  f.state = State::kCritical;
  f.anomaly_mask = kOverTemp | kImplausible;
  f.relay_closed = false;
  f.cell_mv = {3950, 3948, 4120, 3951};
  f.cell_cc = {2750, 2803, 6512, -125};
  f.current_da = -412;
  f.soc_pm = 793;
  f.uptime_ms = 123456;
  return f;
}

TEST(BmsTelemetry, EncodeDecodeRoundTripsEveryField) {
  const TelemetryFrame f = sample_frame();
  const auto bytes = encode_telemetry(f);
  ASSERT_EQ(bytes.size(), kTelemetryFrameBytes);
  EXPECT_EQ(bytes[0], kTelemetrySync);

  TelemetryFrame back;
  ASSERT_TRUE(decode_telemetry(bytes.data(), back));
  EXPECT_EQ(back.seq, f.seq);
  EXPECT_EQ(back.state, f.state);
  EXPECT_EQ(back.anomaly_mask, f.anomaly_mask);
  EXPECT_EQ(back.relay_closed, f.relay_closed);
  EXPECT_EQ(back.cell_mv, f.cell_mv);
  EXPECT_EQ(back.cell_cc, f.cell_cc);
  EXPECT_EQ(back.current_da, f.current_da);
  EXPECT_EQ(back.soc_pm, f.soc_pm);
  EXPECT_EQ(back.uptime_ms, f.uptime_ms);
}

TEST(BmsTelemetry, ChecksumCatchesAnySingleCorruptByte) {
  const auto good = encode_telemetry(sample_frame());
  for (std::size_t i = 0; i < kTelemetryFrameBytes; ++i) {
    auto bad = good;
    bad[i] ^= 0x40;
    TelemetryFrame out;
    EXPECT_FALSE(decode_telemetry(bad.data(), out)) << "byte " << i;
  }
}

// --------------------------------------------------------------------------
// UART line model
// --------------------------------------------------------------------------

TEST(BmsUart, DeliversBytesInOrderWithShiftRegisterTiming) {
  sim::Kernel kernel;
  hw::Uart uart(kernel, "u");
  std::vector<std::uint8_t> seen;
  std::vector<Time> at;
  uart.set_on_byte([&](std::uint8_t b) {
    seen.push_back(b);
    at.push_back(kernel.now());
  });
  const std::uint8_t data[3] = {0x00, 0xA5, 0xFF};
  uart.transmit(data, 3);
  (void)kernel.run(Time::ms(5));
  ASSERT_EQ(seen, (std::vector<std::uint8_t>{0x00, 0xA5, 0xFF}));
  // 11 bits per frame (start + 8 data + parity + stop), back to back.
  const Time bit = uart.bit_time();
  EXPECT_EQ(at[0], bit * 11);
  EXPECT_EQ(at[1], bit * 22);
  EXPECT_EQ(at[2], bit * 33);
  EXPECT_EQ(uart.bytes_enqueued(), 3u);
  EXPECT_EQ(uart.bytes_delivered(), 3u);
  EXPECT_TRUE(uart.idle());
}

TEST(BmsUart, SingleDataBitFlipIsAParityError) {
  sim::Kernel kernel;
  hw::Uart uart(kernel, "u");
  std::uint64_t delivered = 0;
  uart.set_on_byte([&](std::uint8_t) { ++delivered; });
  const std::uint8_t b = 0xA5;
  uart.transmit(&b, 1);
  const Time bit = uart.bit_time();
  // Start bit shifts at 1*bit, data bit 0 at 2*bit: corrupt in between.
  (void)kernel.run(bit + bit / 2);
  uart.corrupt_bits(1);
  (void)kernel.run(Time::ms(2));
  EXPECT_EQ(uart.parity_errors(), 1u);
  EXPECT_EQ(uart.framing_errors(), 0u);
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(uart.frames_corrupted(), 1u);
}

TEST(BmsUart, EvenBitFlipsPassParityAndCorruptSilently) {
  sim::Kernel kernel;
  hw::Uart uart(kernel, "u");
  std::vector<std::uint8_t> seen;
  uart.set_on_byte([&](std::uint8_t v) { seen.push_back(v); });
  const std::uint8_t b = 0xA5;
  uart.transmit(&b, 1);
  const Time bit = uart.bit_time();
  (void)kernel.run(bit + bit / 2);
  uart.corrupt_bits(2);  // flips data bits 0 and 1 — parity is blind to pairs
  (void)kernel.run(Time::ms(2));
  EXPECT_EQ(uart.parity_errors(), 0u);
  EXPECT_EQ(uart.framing_errors(), 0u);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 0xA5 ^ 0x03);  // the wrong byte arrived "cleanly"
}

TEST(BmsUart, CorruptStartBitIsAFramingError) {
  sim::Kernel kernel;
  hw::Uart uart(kernel, "u");
  std::uint64_t delivered = 0;
  uart.set_on_byte([&](std::uint8_t) { ++delivered; });
  uart.corrupt_bits(1);  // idle line: the next shifted bit is a start bit
  const std::uint8_t b = 0x5A;
  uart.transmit(&b, 1);
  (void)kernel.run(Time::ms(2));
  EXPECT_EQ(uart.framing_errors(), 1u);
  EXPECT_EQ(delivered, 0u);
}

// --------------------------------------------------------------------------
// Multi-rate scheduling: set_period
// --------------------------------------------------------------------------

TEST(BmsScheduling, SetPeriodSwitchesRateMidRun) {
  sim::Kernel kernel;
  ecu::OsScheduler os(kernel, "os");
  const ecu::TaskId id = os.add_task({.name = "loop", .period = Time::ms(100)});
  (void)kernel.run(Time::sec(1));
  const std::uint64_t before = os.stats(id).activations;
  os.set_period(id, Time::ms(20));
  EXPECT_EQ(os.current_period(id), Time::ms(20));
  (void)kernel.run(Time::sec(2));
  const std::uint64_t after = os.stats(id).activations;
  // ~10 activations in the first second, ~50 in the second.
  EXPECT_GE(before, 9u);
  EXPECT_LE(before, 12u);
  EXPECT_GE(after - before, 45u);
  EXPECT_LE(after - before, 55u);
}

TEST(BmsScheduling, SetPeriodSurvivesSnapshotRestore) {
  sim::Kernel kernel;
  ecu::OsScheduler os(kernel, "os");
  const ecu::TaskId id = os.add_task({.name = "loop", .period = Time::ms(100)});
  (void)kernel.run(Time::ms(500));
  os.set_period(id, Time::ms(20));
  (void)kernel.run(Time::ms(700));

  const auto ks = kernel.snapshot();
  const auto oss = os.snapshot();
  (void)kernel.run(Time::sec(2));
  const std::uint64_t want = os.stats(id).activations;

  kernel.restore(ks);
  os.restore(oss);
  EXPECT_EQ(os.current_period(id), Time::ms(20));
  (void)kernel.run(Time::sec(2));
  EXPECT_EQ(os.stats(id).activations, want);
}

// --------------------------------------------------------------------------
// Golden missions
// --------------------------------------------------------------------------

BmsConfig quick(BmsMission mission) {
  BmsConfig cfg;
  cfg.mission = mission;
  cfg.duration = Time::sec(12);
  cfg.event_at = Time::sec(4);
  return cfg;
}

TEST(BmsMissionTest, NominalDriveCycleStaysNormal) {
  BmsScenario scenario(quick(BmsMission::kNominal));
  const Observation obs = scenario.run(nullptr, 42);
  const BmsDiagnostics& d = scenario.last_diagnostics();
  EXPECT_TRUE(obs.completed);
  EXPECT_FALSE(obs.hazard);
  EXPECT_EQ(obs.detected, 0u);
  EXPECT_EQ(d.final_state, State::kNormal);
  EXPECT_TRUE(d.relay_closed);
  EXPECT_EQ(d.disconnect_time, Time::max());
  EXPECT_EQ(d.anomaly_union, 0u);
  EXPECT_GE(d.frames_sent, 20u);
  EXPECT_GE(d.frames_valid, d.frames_sent - 1);  // last frame may be in flight
  EXPECT_EQ(d.crc_failures, 0u);
  EXPECT_EQ(d.deadline_misses, 0u);
}

TEST(BmsMissionTest, ThermalRunawayIsContainedBelowHazardTemperature) {
  BmsScenario nominal(quick(BmsMission::kNominal));
  (void)nominal.run(nullptr, 42);
  const std::uint64_t nominal_fast = nominal.last_diagnostics().fast_activations;

  BmsScenario scenario(quick(BmsMission::kThermalRunaway));
  const Observation obs = scenario.run(nullptr, 42);
  const BmsDiagnostics& d = scenario.last_diagnostics();
  EXPECT_TRUE(obs.completed);
  EXPECT_FALSE(obs.hazard) << "max temp " << d.max_cell_temp_c;
  EXPECT_EQ(d.final_state, State::kEmergency);
  EXPECT_FALSE(d.relay_closed);
  EXPECT_GT(d.disconnect_time, Time::sec(4));
  EXPECT_LT(d.disconnect_time, Time::sec(12));
  EXPECT_GT(d.max_cell_temp_c, 60.0);
  EXPECT_LT(d.max_cell_temp_c, 85.0);
  EXPECT_NE(d.anomaly_union & kOverTemp, 0u);
  // Alert mode tightened the loops: the fast loop ran far more often than
  // in the nominal mission of identical length.
  EXPECT_GT(d.fast_activations, nominal_fast + 50);
}

TEST(BmsMissionTest, ShortCircuitDisconnectsInsideTheCurrentHold) {
  BmsScenario scenario(quick(BmsMission::kShortCircuit));
  const Observation obs = scenario.run(nullptr, 42);
  const BmsDiagnostics& d = scenario.last_diagnostics();
  EXPECT_TRUE(obs.completed);
  EXPECT_FALSE(obs.hazard) << "over-current conduction " << d.max_over_current_s << " s";
  EXPECT_EQ(d.final_state, State::kEmergency);
  EXPECT_FALSE(d.relay_closed);
  EXPECT_GT(d.disconnect_time, Time::sec(4));
  EXPECT_LT(d.disconnect_time, Time::ms(4600));
  EXPECT_LT(d.max_over_current_s, 0.3);
  EXPECT_NE(d.anomaly_union & kOverCurrent, 0u);
  EXPECT_NE(d.anomaly_union & kUnderVoltage, 0u);
}

TEST(BmsMissionTest, GoldenRunsAreDeterministic) {
  BmsScenario a(quick(BmsMission::kThermalRunaway));
  BmsScenario b(quick(BmsMission::kThermalRunaway));
  const Observation oa = a.run(nullptr, 7);
  const Observation ob = b.run(nullptr, 7);
  EXPECT_EQ(oa.output_signature, ob.output_signature);
  EXPECT_EQ(oa.detected, ob.detected);
  EXPECT_EQ(a.last_diagnostics().frames_valid, b.last_diagnostics().frames_valid);
}

// --------------------------------------------------------------------------
// Fault effects end to end
// --------------------------------------------------------------------------

TEST(BmsFaultTest, KilledThermalTaskMissesTheRunawayAndTheHazardOccurs) {
  BmsScenario scenario(quick(BmsMission::kThermalRunaway));
  FaultDescriptor f;
  f.id = 1;
  f.type = FaultType::kTaskKill;
  f.persistence = Persistence::kPermanent;
  f.address = 1;  // thermal task
  f.inject_at = Time::ms(100);
  const Observation obs = scenario.run(&f, 42);
  const BmsDiagnostics& d = scenario.last_diagnostics();
  EXPECT_TRUE(obs.completed);
  EXPECT_TRUE(obs.hazard) << "max temp " << d.max_cell_temp_c;
  EXPECT_TRUE(d.relay_closed);  // nobody saw it coming
  EXPECT_GE(d.max_cell_temp_c, 85.0);
}

TEST(BmsFaultTest, UartNoiseBurstIsCaughtByTheLineOrFrameChecks) {
  BmsScenario golden_scenario(quick(BmsMission::kNominal));
  const Observation golden = golden_scenario.run(nullptr, 42);

  BmsScenario scenario(quick(BmsMission::kNominal));
  FaultDescriptor f;
  f.id = 2;
  f.type = FaultType::kBusErrorInjection;
  f.persistence = Persistence::kTransient;
  f.bit = 3;  // 4-bit burst
  f.inject_at = Time::sec(6);
  const Observation obs = scenario.run(&f, 42);
  const BmsDiagnostics& d = scenario.last_diagnostics();
  EXPECT_TRUE(obs.completed);
  EXPECT_FALSE(obs.hazard);
  EXPECT_GT(obs.detected, golden.detected);
  EXPECT_GT(d.uart_parity_errors + d.uart_framing_errors + d.crc_failures + d.sync_drops, 0u);
  EXPECT_LT(d.frames_valid, golden_scenario.last_diagnostics().frames_valid);
}

TEST(BmsFaultTest, StuckHotTemperatureSensorForcesASpuriousSafeStop) {
  BmsScenario scenario(quick(BmsMission::kNominal));
  FaultDescriptor f;
  f.id = 3;
  f.type = FaultType::kSensorStuck;
  f.persistence = Persistence::kPermanent;
  f.address = 5;             // temperature channel of cell 1
  f.magnitude = 4.0;         // rescaled to 4*30-20 = 100 °C
  f.inject_at = Time::sec(3);
  const Observation obs = scenario.run(&f, 42);
  const BmsDiagnostics& d = scenario.last_diagnostics();
  EXPECT_TRUE(obs.completed);
  EXPECT_FALSE(obs.hazard);
  EXPECT_EQ(d.final_state, State::kEmergency);  // false positive, but safe
  EXPECT_FALSE(d.relay_closed);
  EXPECT_NE(d.anomaly_union & kOverTemp, 0u);
  EXPECT_GT(obs.detected, 0u);
}

// --------------------------------------------------------------------------
// Replay and driver determinism
// --------------------------------------------------------------------------

void expect_identical_obs(const Observation& full, const Observation& forked,
                          const std::string& context) {
  EXPECT_EQ(full.output_signature, forked.output_signature) << context;
  EXPECT_EQ(full.completed, forked.completed) << context;
  EXPECT_EQ(full.hazard, forked.hazard) << context;
  EXPECT_EQ(full.detected, forked.detected) << context;
  EXPECT_EQ(full.deadline_misses, forked.deadline_misses) << context;
  ASSERT_EQ(full.provenance.size(), forked.provenance.size()) << context;
  for (std::size_t i = 0; i < full.provenance.size(); ++i) {
    EXPECT_EQ(obs::provenance_to_json(full.provenance[i]),
              obs::provenance_to_json(forked.provenance[i]))
        << context << " provenance[" << i << "]";
  }
}

TEST(BmsReplay, SnapshotForkMatchesFullReplayBitwise) {
  for (const char* spec : {"bms:runaway:quick:prov", "bms:short:quick"}) {
    SCOPED_TRACE(spec);
    auto forked = apps::make_scenario(spec);
    auto full = apps::make_scenario(spec);
    forked->set_snapshot_replay(true);
    full->set_snapshot_replay(false);

    CampaignConfig config;
    config.runs = 16;
    config.seed = 42;
    fault::CampaignState state(full->fault_types(), full->duration(), config);

    expect_identical_obs(full->run(nullptr, config.seed), forked->run(nullptr, config.seed),
                         std::string(spec) + " golden");
    const support::Xorshift base(config.seed);
    for (std::size_t run = 0; run < config.runs; ++run) {
      support::Xorshift run_rng = base.fork(run);
      const FaultDescriptor fault = state.generate(run, run_rng);
      expect_identical_obs(full->run(&fault, config.seed), forked->run(&fault, config.seed),
                           std::string(spec) + " run " + std::to_string(run));
    }
  }
}

void expect_identical_results(const CampaignResult& a, const CampaignResult& b,
                              const std::string& context) {
  EXPECT_EQ(a.outcome_counts, b.outcome_counts) << context;
  EXPECT_EQ(a.runs_executed, b.runs_executed) << context;
  EXPECT_EQ(a.final_coverage, b.final_coverage) << context;
  ASSERT_EQ(a.records.size(), b.records.size()) << context;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome) << context << " run=" << i;
    EXPECT_EQ(a.records[i].fault.to_string(), b.records[i].fault.to_string())
        << context << " run=" << i;
  }
  EXPECT_EQ(a.provenance_jsonl(), b.provenance_jsonl()) << context;
}

TEST(BmsReplay, ParallelCampaignIsWorkerCountInvariant) {
  const auto factory = [] { return apps::make_scenario("bms:runaway:quick:prov"); };
  CampaignConfig cfg;
  cfg.runs = 16;
  cfg.seed = 11;
  cfg.location_buckets = 8;

  CampaignConfig full_cfg = cfg;
  full_cfg.snapshot_replay = false;
  full_cfg.workers = 1;
  const CampaignResult want = fault::ParallelCampaign(factory, full_cfg).run();

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    CampaignConfig c = cfg;
    c.snapshot_replay = true;
    c.workers = workers;
    const CampaignResult got = fault::ParallelCampaign(factory, c).run();
    expect_identical_results(want, got, "workers=" + std::to_string(workers));
  }
}

TEST(BmsReplay, DistributedFleetMatchesInProcessBaseline) {
  const auto factory = [] { return apps::make_scenario("bms:short:quick"); };
  CampaignConfig cfg;
  cfg.runs = 12;
  cfg.seed = 5;
  cfg.location_buckets = 8;
  const CampaignResult baseline = fault::ParallelCampaign(factory, cfg).run();

  dist::DistConfig dc;
  dc.campaign = cfg;
  dc.workers = 2;
  dist::DistCampaign campaign(factory, dc);
  const CampaignResult got = campaign.run();
  expect_identical_results(baseline, got, "fleet=2");
  EXPECT_EQ(campaign.fleet_stats().worker_deaths, 0u);
}

TEST(BmsReplay, CheckpointResumesAcrossWorkerCounts) {
  const std::string path = ::testing::TempDir() + "/vps_bms_resume.jsonl";
  const auto factory = [] { return apps::make_scenario("bms:runaway:quick"); };
  CampaignConfig cfg;
  cfg.runs = 16;
  cfg.seed = 21;
  cfg.batch_size = 8;
  cfg.location_buckets = 8;

  cfg.workers = 2;
  const CampaignResult uninterrupted = fault::ParallelCampaign(factory, cfg).run();

  CampaignConfig cut = cfg;
  cut.preempt_after = 8;
  cut.checkpoint_path = path;
  const CampaignResult partial = fault::ParallelCampaign(factory, cut).run();
  ASSERT_TRUE(partial.interrupted);

  const fault::CampaignCheckpoint cp = fault::load_checkpoint(path);
  CampaignConfig resume_cfg = cfg;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{8}}) {
    resume_cfg.workers = workers;
    const CampaignResult resumed = fault::ParallelCampaign(factory, resume_cfg).resume(cp);
    expect_identical_results(uninterrupted, resumed,
                             "resume workers=" + std::to_string(workers));
  }
  std::remove(path.c_str());
}

}  // namespace

// Safety-analysis tests: FTA (MOCUS cut sets, exact vs rare-event
// probability, importance measures, k-of-n gates, repeated events), FMEDA
// (metric formulas, ASIL targets), ISO 26262 risk-graph ASIL determination,
// FPTC propagation fixpoints, and fault-tree synthesis from campaign data.

#include <gtest/gtest.h>

#include <cmath>

#include <cstdint>
#include <string>
#include <vector>

#include "vps/ecu/e2e.hpp"
#include "vps/obs/provenance.hpp"
#include "vps/safety/fmeda.hpp"
#include "vps/safety/fptc.hpp"
#include "vps/safety/ft_synthesis.hpp"
#include "vps/safety/fta.hpp"
#include "vps/sim/kernel.hpp"
#include "vps/support/ensure.hpp"

namespace {

using namespace vps::safety;

TEST(Fta, AndOrBasics) {
  FaultTree ft;
  const auto a = ft.add_basic_event("a", 0.1);
  const auto b = ft.add_basic_event("b", 0.2);
  const auto g = ft.add_gate("top", GateType::kAnd, {a, b});
  ft.set_top(g);
  EXPECT_NEAR(ft.top_probability_exact(), 0.02, 1e-12);
  const auto cuts = ft.minimal_cut_sets();
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0], (FaultTree::CutSet{a, b}));

  FaultTree ft2;
  const auto c = ft2.add_basic_event("c", 0.1);
  const auto d = ft2.add_basic_event("d", 0.2);
  const auto g2 = ft2.add_gate("top", GateType::kOr, {c, d});
  ft2.set_top(g2);
  EXPECT_NEAR(ft2.top_probability_exact(), 1.0 - 0.9 * 0.8, 1e-12);
  EXPECT_EQ(ft2.minimal_cut_sets().size(), 2u);
  EXPECT_EQ(ft2.single_points_of_failure().size(), 2u);
}

TEST(Fta, VoteGateTwoOfThree) {
  FaultTree ft;
  const auto a = ft.add_basic_event("a", 0.1);
  const auto b = ft.add_basic_event("b", 0.1);
  const auto c = ft.add_basic_event("c", 0.1);
  const auto g = ft.add_gate("tmr_fails", GateType::kVote, {a, b, c}, 2);
  ft.set_top(g);
  // P(>=2 of 3 at p=0.1) = 3*0.01*0.9 + 0.001 = 0.028.
  EXPECT_NEAR(ft.top_probability_exact(), 0.028, 1e-12);
  const auto cuts = ft.minimal_cut_sets();
  EXPECT_EQ(cuts.size(), 3u);  // {a,b}, {a,c}, {b,c}
  for (const auto& cut : cuts) EXPECT_EQ(cut.size(), 2u);
  EXPECT_TRUE(ft.single_points_of_failure().empty());
}

TEST(Fta, RepeatedEventHandledExactly) {
  // top = (a AND b) OR (a AND c): a appears twice; exact must not double
  // count. P = p_a * (1 - (1-p_b)(1-p_c)).
  FaultTree ft;
  const auto a = ft.add_basic_event("a", 0.5);
  const auto b = ft.add_basic_event("b", 0.3);
  const auto c = ft.add_basic_event("c", 0.4);
  const auto g1 = ft.add_gate("g1", GateType::kAnd, {a, b});
  const auto g2 = ft.add_gate("g2", GateType::kAnd, {a, c});
  const auto top = ft.add_gate("top", GateType::kOr, {g1, g2});
  ft.set_top(top);
  EXPECT_NEAR(ft.top_probability_exact(), 0.5 * (1.0 - 0.7 * 0.6), 1e-12);
  // Rare-event bound overestimates here but stays a bound.
  EXPECT_GE(ft.top_probability_rare_event(), ft.top_probability_exact() - 1e-12);
}

TEST(Fta, AbsorptionMinimizesCutSets) {
  // top = a OR (a AND b): {a} absorbs {a,b}.
  FaultTree ft;
  const auto a = ft.add_basic_event("a", 0.1);
  const auto b = ft.add_basic_event("b", 0.1);
  const auto g1 = ft.add_gate("g1", GateType::kAnd, {a, b});
  const auto top = ft.add_gate("top", GateType::kOr, {a, g1});
  ft.set_top(top);
  const auto cuts = ft.minimal_cut_sets();
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0], (FaultTree::CutSet{a}));
}

TEST(Fta, ImportanceMeasures) {
  // Series-parallel: top = a OR (b AND c). a dominates.
  FaultTree ft;
  const auto a = ft.add_basic_event("a", 0.01);
  const auto b = ft.add_basic_event("b", 0.1);
  const auto c = ft.add_basic_event("c", 0.1);
  const auto g = ft.add_gate("g", GateType::kAnd, {b, c});
  const auto top = ft.add_gate("top", GateType::kOr, {a, g});
  ft.set_top(top);
  // Birnbaum of a = 1 - P(b AND c) = 0.99.
  EXPECT_NEAR(ft.birnbaum_importance(a), 1.0 - 0.01, 1e-12);
  EXPECT_GT(ft.birnbaum_importance(a), ft.birnbaum_importance(b));
  // Fussell-Vesely: a's cut dominates the top probability.
  EXPECT_GT(ft.fussell_vesely_importance(a), 0.4);
  EXPECT_NEAR(ft.fussell_vesely_importance(b), ft.fussell_vesely_importance(c), 1e-12);
}

TEST(Fta, RenderAndValidation) {
  FaultTree ft;
  const auto a = ft.add_basic_event("sensor_fail", 0.001);
  ft.set_top(ft.add_gate("hazard", GateType::kOr, {a}));
  const auto text = ft.render();
  EXPECT_NE(text.find("sensor_fail"), std::string::npos);
  EXPECT_THROW((void)ft.add_basic_event("bad", 1.5), vps::support::InvariantError);
  EXPECT_THROW((void)ft.add_gate("g", GateType::kVote, {a}, 5), vps::support::InvariantError);
  FaultTree empty;
  EXPECT_THROW((void)empty.minimal_cut_sets(), vps::support::InvariantError);
}

TEST(AsilDetermination, MatchesIso26262RiskGraph) {
  using S = Severity;
  using E = Exposure;
  using C = Controllability;
  EXPECT_EQ(determine_asil(S::kS3, E::kE4, C::kC3), Asil::kD);
  EXPECT_EQ(determine_asil(S::kS3, E::kE4, C::kC2), Asil::kC);
  EXPECT_EQ(determine_asil(S::kS3, E::kE4, C::kC1), Asil::kB);
  EXPECT_EQ(determine_asil(S::kS3, E::kE3, C::kC3), Asil::kC);
  EXPECT_EQ(determine_asil(S::kS3, E::kE2, C::kC3), Asil::kB);
  EXPECT_EQ(determine_asil(S::kS3, E::kE1, C::kC3), Asil::kA);
  EXPECT_EQ(determine_asil(S::kS2, E::kE4, C::kC3), Asil::kC);
  EXPECT_EQ(determine_asil(S::kS1, E::kE4, C::kC3), Asil::kB);
  EXPECT_EQ(determine_asil(S::kS1, E::kE4, C::kC2), Asil::kA);
  EXPECT_EQ(determine_asil(S::kS1, E::kE3, C::kC2), Asil::kQM);
  EXPECT_EQ(determine_asil(S::kS0, E::kE4, C::kC3), Asil::kQM);
  EXPECT_EQ(determine_asil(S::kS3, E::kE0, C::kC3), Asil::kQM);
  EXPECT_EQ(determine_asil(S::kS3, E::kE4, C::kC0), Asil::kQM);
}

TEST(FmedaTest, MetricFormulas) {
  Fmeda f;
  // 100 FIT safety-related with 95% DC -> 5 FIT residual.
  f.add_row({"ram", "bit flip", 100.0, true, 0.95, 1.0});
  // 50 FIT safety-related, no mechanism -> 50 FIT residual.
  f.add_row({"cpu", "register upset", 50.0, true, 0.0, 1.0});
  // Non-safety-related rate is excluded from the metrics.
  f.add_row({"led", "dim", 1000.0, false, 0.0, 1.0});
  const auto m = f.metrics();
  EXPECT_NEAR(m.total_fit, 1150.0, 1e-9);
  EXPECT_NEAR(m.safety_related_fit, 150.0, 1e-9);
  EXPECT_NEAR(m.residual_fit, 55.0, 1e-9);
  EXPECT_NEAR(m.spfm, 1.0 - 55.0 / 150.0, 1e-12);
  EXPECT_NEAR(m.pmhf_fit, 55.0, 1e-9);
}

TEST(FmedaTest, LatentFaultMetric) {
  Fmeda f;
  // 100 FIT, 90% DC, but only 50% of covered faults are revealed at runtime.
  f.add_row({"ram", "bit flip", 100.0, true, 0.9, 0.5});
  const auto m = f.metrics();
  EXPECT_NEAR(m.residual_fit, 10.0, 1e-9);
  EXPECT_NEAR(m.latent_fit, 45.0, 1e-9);
  EXPECT_NEAR(m.lfm, 1.0 - 45.0 / 90.0, 1e-12);
}

TEST(FmedaTest, AsilTargets) {
  FmedaMetrics good{};
  good.spfm = 0.995;
  good.lfm = 0.95;
  good.pmhf_fit = 5.0;
  EXPECT_TRUE(good.meets(Asil::kD));
  EXPECT_TRUE(good.meets(Asil::kB));
  FmedaMetrics weak{};
  weak.spfm = 0.92;
  weak.lfm = 0.7;
  weak.pmhf_fit = 50.0;
  EXPECT_TRUE(weak.meets(Asil::kB));
  EXPECT_FALSE(weak.meets(Asil::kC));
  EXPECT_FALSE(weak.meets(Asil::kD));
  EXPECT_TRUE(weak.meets(Asil::kA));
}

TEST(FmedaTest, RenderAndValidation) {
  Fmeda f;
  f.add_row({"ram", "flip", 10.0, true, 0.5, 1.0});
  EXPECT_NE(f.render().find("SPFM"), std::string::npos);
  EXPECT_THROW(f.add_row({"x", "y", -1.0, true, 0.0, 1.0}), vps::support::InvariantError);
  EXPECT_THROW(f.add_row({"x", "y", 1.0, true, 2.0, 1.0}), vps::support::InvariantError);
}

TEST(FmedaTest, MeasuredDetectionLatencyBeyondFttiFlipsTheVerdict) {
  // End to end: a fault's detection latency is *measured* through the
  // provenance tracker (injection at 2 ms, E2E checker flags the corrupted
  // frame at 5 ms -> 3 ms latency), then fed into the FMEDA. The claimed
  // 99% diagnostic coverage passes ASIL B on paper; against a 2 ms FTTI
  // budget the measured 3 ms latency zeroes the effective coverage and the
  // verdict flips — the detection arrives too late to prevent the hazard.
  using vps::ecu::E2eChecker;
  using vps::ecu::E2eConfig;
  using vps::ecu::E2eProtector;
  using vps::ecu::E2eStatus;

  vps::sim::Kernel kernel;
  vps::obs::ProvenanceTracker tracker(kernel);
  E2eProtector protector(E2eConfig{.data_id = 5});
  E2eChecker checker(E2eConfig{.data_id = 5});
  checker.set_provenance(&tracker);

  kernel.spawn("e2e_run",
               [](vps::obs::ProvenanceTracker& t, E2eProtector& p,
                  E2eChecker& c) -> vps::sim::Coro {
                 const std::uint8_t payload[] = {0x11, 0x22, 0x33};
                 co_await vps::sim::delay(vps::sim::Time::ms(2));
                 t.begin_fault(1, "can_frame_corruption#7", "inject:can_frame_corruption");
                 std::vector<std::uint8_t> wire = p.protect(payload);
                 wire.back() ^= 0x40;  // the corruption the fault represents
                 co_await vps::sim::delay(vps::sim::Time::ms(3));
                 EXPECT_EQ(c.check(wire), E2eStatus::kWrongCrc);
               }(tracker, protector, checker));
  kernel.run();

  ASSERT_EQ(tracker.faults().size(), 1u);
  const auto& fp = tracker.faults().front();
  ASSERT_TRUE(fp.detected());
  EXPECT_EQ(fp.containment_site(), "e2e:5");
  ASSERT_TRUE(fp.detection_latency().has_value());
  const double latency_s = fp.detection_latency()->to_seconds();
  EXPECT_DOUBLE_EQ(latency_s, 0.003);

  Fmeda fmeda;
  fmeda.add_row({.component = "can_link",
                 .failure_mode = "frame_corruption",
                 .fit = 100.0,
                 .diagnostic_coverage = 0.99,
                 .ftti_budget_s = 0.002});
  EXPECT_TRUE(fmeda.metrics().meets(Asil::kB));  // on paper: 99% DC, SPFM 0.99

  EXPECT_EQ(fmeda.set_measured_latency("can_link", "no_such_mode", latency_s), 0u);
  ASSERT_EQ(fmeda.set_measured_latency("can_link", "frame_corruption", latency_s), 1u);
  EXPECT_DOUBLE_EQ(fmeda.rows()[0].effective_diagnostic_coverage(), 0.0);
  EXPECT_FALSE(fmeda.metrics().meets(Asil::kB));
  EXPECT_NE(fmeda.render().find("FTTI"), std::string::npos);

  // The same measurement against a budget it fits keeps the credit.
  Fmeda relaxed;
  FmedaRow row = fmeda.rows()[0];
  row.ftti_budget_s = 0.010;
  relaxed.add_row(row);
  EXPECT_DOUBLE_EQ(relaxed.rows()[0].effective_diagnostic_coverage(), 0.99);
  EXPECT_TRUE(relaxed.metrics().meets(Asil::kB));
}

TEST(Fptc, PropagationAndTransformation) {
  FptcGraph g;
  const auto sensor = g.add_component("sensor", TransformRule{}.generate(FailureClass::kValue));
  // A filter transforms value errors into late outputs (it re-samples).
  const auto filter = g.add_component("filter", TransformRule{}.map(FailureClass::kValue,
                                                                    {FailureClass::kLate}));
  const auto actuator = g.add_component("actuator");
  g.connect(sensor, filter);
  g.connect(filter, actuator);
  const auto result = g.propagate();
  EXPECT_EQ(result[sensor], (std::set<FailureClass>{FailureClass::kValue}));
  EXPECT_EQ(result[filter], (std::set<FailureClass>{FailureClass::kLate}));
  EXPECT_EQ(result[actuator], (std::set<FailureClass>{FailureClass::kLate}));
  EXPECT_TRUE(g.failure_reaches(actuator));
}

TEST(Fptc, VoterMasksSingleSource) {
  FptcGraph g;
  const auto s1 = g.add_component("s1", TransformRule{}.generate(FailureClass::kValue));
  const auto s2 = g.add_component("s2");
  const auto s3 = g.add_component("s3");
  const auto voter = g.add_component("voter", TransformRule{}.mask(FailureClass::kValue));
  g.connect(s1, voter);
  g.connect(s2, voter);
  g.connect(s3, voter);
  EXPECT_FALSE(g.failure_reaches(voter));
  // But the voter does not mask timing failures it was not designed for.
  FptcGraph g2;
  const auto late_src = g2.add_component("src", TransformRule{}.generate(FailureClass::kLate));
  const auto voter2 = g2.add_component("voter", TransformRule{}.mask(FailureClass::kValue));
  g2.connect(late_src, voter2);
  EXPECT_EQ(g2.failures_at(voter2), (std::set<FailureClass>{FailureClass::kLate}));
}

TEST(Fptc, CyclicGraphReachesFixpoint) {
  // Feedback loop: controller <-> plant with a failure source.
  FptcGraph g;
  const auto ctrl = g.add_component("ctrl", TransformRule{}.generate(FailureClass::kLate));
  const auto plant = g.add_component("plant");
  g.connect(ctrl, plant);
  g.connect(plant, ctrl);  // cycle
  const auto result = g.propagate();  // must terminate
  EXPECT_TRUE(result[plant].contains(FailureClass::kLate));
  EXPECT_TRUE(result[ctrl].contains(FailureClass::kLate));
}

TEST(FtSynthesis, BuildsOrTreeFromContributions) {
  std::vector<HazardContribution> contributions{
      {"memory_bit_flip", 0.01, 0.10, 100, 10},
      {"can_corruption", 0.02, 0.0, 50, 0},  // never hazardous: skipped
      {"sensor_stuck", 0.005, 0.8, 40, 32},
  };
  const auto synth = synthesize_fault_tree("inadvertent_deployment", contributions);
  const auto cuts = synth.tree.minimal_cut_sets();
  EXPECT_EQ(cuts.size(), 2u);  // the zero-hazard contribution was dropped
  const double expected = 1.0 - (1.0 - 0.01 * 0.10) * (1.0 - 0.005 * 0.8);
  EXPECT_NEAR(synth.tree.top_probability_exact(), expected, 1e-12);
  // The synthesized basic events keep their campaign names.
  EXPECT_EQ(synth.tree.name(synth.basic_events[0]), "memory_bit_flip");
}

TEST(FtSynthesis, EmptyContributionsYieldZeroTree) {
  const auto synth = synthesize_fault_tree("hazard", {});
  EXPECT_EQ(synth.tree.top_probability_exact(), 0.0);
}

}  // namespace

// Distributed campaign execution: framed protocol codec, transport frame
// recovery, worker fleet supervision, and the headline guarantee — the
// distributed result is bitwise identical to the in-process ParallelCampaign
// for any fleet size, including with a worker SIGKILLed mid-campaign.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/socket.h>

#include "vps/apps/caps.hpp"
#include "vps/apps/registry.hpp"
#include "vps/dist/coordinator.hpp"
#include "vps/dist/protocol.hpp"
#include "vps/dist/transport.hpp"
#include "vps/fault/campaign.hpp"
#include "vps/fault/checkpoint.hpp"
#include "vps/obs/metrics.hpp"
#include "vps/support/ensure.hpp"

namespace {

using namespace vps::dist;
using vps::apps::CapsConfig;
using vps::apps::CapsScenario;
using vps::fault::CampaignCheckpoint;
using vps::fault::CampaignConfig;
using vps::fault::CampaignResult;
using vps::fault::FaultDescriptor;
using vps::fault::FaultType;
using vps::fault::Observation;
using vps::fault::Outcome;
using vps::fault::ParallelCampaign;
using vps::fault::Persistence;
using vps::fault::Scenario;
using vps::fault::ScenarioFactory;
using vps::fault::Strategy;
using vps::obs::FaultProvenance;
using vps::obs::HopKind;
using vps::sim::Time;
using vps::support::InvariantError;

// --------------------------------------------------------------------------
// Frame layer
// --------------------------------------------------------------------------

TEST(FrameCodec, RoundTripsFedByteByByte) {
  const std::string payload = "{\"kind\":\"heartbeat\",\"runs_done\":7}";
  const std::string wire = encode_frame(MsgType::kHeartbeat, payload);
  EXPECT_EQ(wire.size(), kFrameHeaderSize + payload.size());

  FrameReader reader;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    if (i + 1 < wire.size()) {
      reader.feed(wire.data() + i, 1);
      EXPECT_FALSE(reader.next().has_value()) << "frame completed early at byte " << i;
    } else {
      reader.feed(wire.data() + i, 1);
    }
  }
  auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::kHeartbeat);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(FrameCodec, DeliversMultipleFramesFromOneFeed) {
  std::string wire = encode_frame(MsgType::kAssign, "aaa");
  wire += encode_frame(MsgType::kResult, "bb");
  wire += encode_frame(MsgType::kShutdown, "");

  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  auto f1 = reader.next();
  auto f2 = reader.next();
  auto f3 = reader.next();
  ASSERT_TRUE(f1 && f2 && f3);
  EXPECT_EQ(f1->type, MsgType::kAssign);
  EXPECT_EQ(f1->payload, "aaa");
  EXPECT_EQ(f2->type, MsgType::kResult);
  EXPECT_EQ(f2->payload, "bb");
  EXPECT_EQ(f3->type, MsgType::kShutdown);
  EXPECT_TRUE(f3->payload.empty());
  EXPECT_FALSE(reader.next().has_value());
}

TEST(FrameCodec, TruncatedFrameYieldsNothing) {
  const std::string wire = encode_frame(MsgType::kHello, "payload");
  FrameReader reader;
  reader.feed(wire.data(), wire.size() - 3);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.buffered(), wire.size() - 3);
}

TEST(FrameCodec, GarbageMagicThrows) {
  std::string wire = encode_frame(MsgType::kHello, "x");
  wire[0] = 'Z';
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  EXPECT_THROW((void)reader.next(), InvariantError);
}

TEST(FrameCodec, UnknownTypeThrows) {
  std::string wire = encode_frame(MsgType::kHello, "x");
  wire[4] = 99;
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  EXPECT_THROW((void)reader.next(), InvariantError);
}

TEST(FrameCodec, CorruptedPayloadFailsCrc) {
  std::string wire = encode_frame(MsgType::kResult, "{\"kind\":\"result\"}");
  wire[kFrameHeaderSize + 3] ^= 0x01;  // flip one payload bit
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  EXPECT_THROW((void)reader.next(), InvariantError);
}

TEST(FrameCodec, InsaneLengthFieldThrows) {
  std::string wire = encode_frame(MsgType::kHello, "x");
  // Rewrite the length field (offset 5, little-endian) to kMaxFramePayload+1.
  const std::uint32_t bad = kMaxFramePayload + 1;
  for (int i = 0; i < 4; ++i) wire[5 + i] = static_cast<char>((bad >> (8 * i)) & 0xFF);
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  EXPECT_THROW((void)reader.next(), InvariantError);
}

TEST(FrameCodec, PartialReportsIncompleteFrame) {
  const std::string wire = encode_frame(MsgType::kResult, "{\"kind\":\"result\"}");
  FrameReader reader;
  EXPECT_FALSE(reader.partial());  // empty buffer: nothing pending

  reader.feed(wire.data(), 5);  // header fragment
  EXPECT_TRUE(reader.partial());

  reader.feed(wire.data() + 5, kFrameHeaderSize - 5 + 3);  // header + payload head
  EXPECT_TRUE(reader.partial());

  reader.feed(wire.data() + kFrameHeaderSize + 3, wire.size() - kFrameHeaderSize - 3);
  EXPECT_FALSE(reader.partial());  // complete frame buffered, just not consumed
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_FALSE(reader.partial());
}

// --------------------------------------------------------------------------
// Transport
// --------------------------------------------------------------------------

TEST(TransportTest, SendFrameResumesAcrossFullSendBuffer) {
  // Regression: EAGAIN on a nonblocking sender used to be treated as fatal.
  // With a tiny SO_SNDBUF a multi-megabyte frame is guaranteed to hit it
  // mid-write; send_frame must poll for writability and resume, delivering
  // the frame intact (the CRC check on the receiving side proves it).
  const SocketPair pair = make_socket_pair();
  const int tiny = 4096;
  ASSERT_EQ(::setsockopt(pair.coordinator_fd, SOL_SOCKET, SO_SNDBUF, &tiny, sizeof tiny), 0);
  const int flags = ::fcntl(pair.coordinator_fd, F_GETFL, 0);
  ASSERT_GE(flags, 0);
  ASSERT_EQ(::fcntl(pair.coordinator_fd, F_SETFL, flags | O_NONBLOCK), 0);

  std::string payload(2 * 1024 * 1024, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>((i * 131u) & 0xFF);
  }

  Channel sender(pair.coordinator_fd);
  Channel receiver(pair.worker_fd);
  std::optional<Frame> got;
  std::thread reader([&receiver, &got] { got = receiver.wait_frame(10'000); });
  EXPECT_TRUE(sender.send_frame(MsgType::kResult, payload));
  reader.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, MsgType::kResult);
  EXPECT_EQ(got->payload, payload);
}

TEST(TransportTest, PartialSinceTracksIncompleteFrames) {
  const SocketPair pair = make_socket_pair();
  Channel sender(pair.coordinator_fd);
  Channel receiver(pair.worker_fd);
  EXPECT_FALSE(receiver.partial_since().has_value());

  const std::string wire = encode_frame(MsgType::kHeartbeat, "{\"kind\":\"heartbeat\",\"runs_done\":1}");
  ASSERT_GT(::send(sender.fd(), wire.data(), wire.size() / 2, MSG_NOSIGNAL), 0);
  EXPECT_FALSE(receiver.wait_frame(100).has_value());  // mid-frame: no frame yet
  ASSERT_TRUE(receiver.partial_since().has_value());
  const auto since = *receiver.partial_since();

  ASSERT_GT(::send(sender.fd(), wire.data() + wire.size() / 2, wire.size() - wire.size() / 2,
                   MSG_NOSIGNAL),
            0);
  auto frame = receiver.wait_frame(1000);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::kHeartbeat);
  EXPECT_FALSE(receiver.partial_since().has_value()) << "frame boundary must reset the clock";
  EXPECT_GE(std::chrono::steady_clock::now(), since);
}

TEST(DistCampaignTest, PollTimeoutTracksEarliestFleetDeadline) {
  using std::chrono::milliseconds;
  const auto now = std::chrono::steady_clock::now();
  EXPECT_EQ(poll_timeout_ms(now, {}, 1000), 1000);
  EXPECT_EQ(poll_timeout_ms(now, {now + milliseconds(250), now + milliseconds(700)}, 1000), 250);
  EXPECT_EQ(poll_timeout_ms(now, {now + milliseconds(700), now + milliseconds(250)}, 1000), 250);
  EXPECT_EQ(poll_timeout_ms(now, {now - milliseconds(10)}, 1000), 0);  // already due
  EXPECT_EQ(poll_timeout_ms(now, {now + milliseconds(5000)}, 1000), 1000);  // fallback caps
}

// --------------------------------------------------------------------------
// Typed message payloads
// --------------------------------------------------------------------------

TEST(MessageCodec, SetupRoundTrips) {
  SetupMsg setup;
  setup.scenario_spec = "caps:crash:unprotected:ecc";
  setup.seed = 0xDEADBEEFCAFEull;
  setup.crash_retries = 3;
  setup.golden.output_signature = 0x12345678;
  setup.golden.completed = true;
  setup.golden.detected = 4;
  setup.golden.corrected = 2;
  setup.golden.resets = 1;
  setup.golden.deadline_misses = 9;

  const SetupMsg back = decode_setup(encode_setup(setup));
  EXPECT_EQ(back.version, kProtocolVersion);
  EXPECT_EQ(back.scenario_spec, setup.scenario_spec);
  EXPECT_EQ(back.seed, setup.seed);
  EXPECT_EQ(back.crash_retries, setup.crash_retries);
  EXPECT_EQ(back.golden.output_signature, setup.golden.output_signature);
  EXPECT_EQ(back.golden.completed, setup.golden.completed);
  EXPECT_EQ(back.golden.detected, setup.golden.detected);
  EXPECT_EQ(back.golden.corrected, setup.golden.corrected);
  EXPECT_EQ(back.golden.resets, setup.golden.resets);
  EXPECT_EQ(back.golden.deadline_misses, setup.golden.deadline_misses);
}

TEST(MessageCodec, HelloRoundTrips) {
  HelloMsg hello;
  hello.pid = 4242;
  hello.scenario = "caps_crash_protected";
  const HelloMsg back = decode_hello(encode_hello(hello));
  EXPECT_EQ(back.version, kProtocolVersion);
  EXPECT_EQ(back.pid, 4242u);
  EXPECT_EQ(back.scenario, "caps_crash_protected");
}

TEST(MessageCodec, AssignRoundTripsEveryDescriptorField) {
  AssignMsg assign;
  assign.run = 133;
  assign.fault.id = 77;
  assign.fault.type = FaultType::kSensorOffset;
  assign.fault.persistence = Persistence::kIntermittent;
  assign.fault.inject_at = Time::us(1234);
  assign.fault.duration = Time::us(56);
  assign.fault.location = "sensor \"main\"\n";  // escapes must survive
  assign.fault.address = 0xFFFFFFFFFFFFFFFFull;
  assign.fault.bit = 31;
  assign.fault.magnitude = -0.7512093478;  // must round-trip bitwise (hexfloat)

  const AssignMsg back = decode_assign(encode_assign(assign));
  EXPECT_EQ(back.run, 133u);
  EXPECT_EQ(back.fault.id, assign.fault.id);
  EXPECT_EQ(back.fault.type, assign.fault.type);
  EXPECT_EQ(back.fault.persistence, assign.fault.persistence);
  EXPECT_EQ(back.fault.inject_at, assign.fault.inject_at);
  EXPECT_EQ(back.fault.duration, assign.fault.duration);
  EXPECT_EQ(back.fault.location, assign.fault.location);
  EXPECT_EQ(back.fault.address, assign.fault.address);
  EXPECT_EQ(back.fault.bit, assign.fault.bit);
  EXPECT_EQ(back.fault.magnitude, assign.fault.magnitude);  // exact, not near
}

TEST(MessageCodec, ResultRoundTripsCrashDiagnosticsAndProvenance) {
  ResultMsg msg;
  msg.run = 9;
  msg.replay.outcome = Outcome::kSimCrash;
  msg.replay.attempts = 3;
  msg.replay.crash_what = "replay blew up: \"bad\ttransition\"";

  FaultProvenance fp;
  fp.fault_id = 10;
  fp.label = "mem_bit_flip#9";
  fp.nodes.push_back({"mem:ram", HopKind::kInjection, Time::us(10), -1, 0});
  fp.nodes.push_back({"bus:bus0", HopKind::kPropagation, Time::us(11), 0, 1});
  fp.nodes.push_back({"hw.ecc:ram", HopKind::kDetection, Time::us(12), 1, 2});
  msg.replay.provenance.push_back(fp);

  const ResultMsg back = decode_result(encode_result(msg));
  EXPECT_EQ(back.run, 9u);
  EXPECT_EQ(back.replay.outcome, Outcome::kSimCrash);
  EXPECT_EQ(back.replay.attempts, 3u);
  EXPECT_EQ(back.replay.crash_what, msg.replay.crash_what);
  ASSERT_EQ(back.replay.provenance.size(), 1u);
  const FaultProvenance& got = back.replay.provenance[0];
  EXPECT_EQ(got.fault_id, 10u);
  EXPECT_EQ(got.label, "mem_bit_flip#9");
  ASSERT_EQ(got.nodes.size(), 3u);
  EXPECT_EQ(got.nodes[2].site, "hw.ecc:ram");
  EXPECT_EQ(got.nodes[2].kind, HopKind::kDetection);
  EXPECT_EQ(got.nodes[2].at, Time::us(12));
  EXPECT_EQ(got.nodes[2].parent, 1);
  EXPECT_EQ(got.nodes[2].depth, 2u);
}

TEST(MessageCodec, HeartbeatRoundTrips) {
  const HeartbeatMsg back = decode_heartbeat(encode_heartbeat({1234567}));
  EXPECT_EQ(back.runs_done, 1234567u);
}

TEST(MessageCodec, MismatchedKindIsRejected) {
  const std::string hello = encode_hello(HelloMsg{});
  EXPECT_THROW((void)decode_assign(hello), InvariantError);
  EXPECT_THROW((void)decode_result(hello), InvariantError);
  EXPECT_THROW((void)decode_setup(hello), InvariantError);
}

// --------------------------------------------------------------------------
// Distributed campaign vs in-process baseline
// --------------------------------------------------------------------------

ScenarioFactory caps_factory(bool crash, bool provenance = false) {
  return [crash, provenance] {
    return std::make_unique<CapsScenario>(
        CapsConfig{.crash = crash, .duration = Time::ms(10), .provenance = provenance});
  };
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.outcome_counts, b.outcome_counts);
  EXPECT_EQ(a.runs_executed, b.runs_executed);
  EXPECT_EQ(a.faults_to_first_hazard, b.faults_to_first_hazard);
  EXPECT_EQ(a.final_coverage, b.final_coverage);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].fault.id, b.records[i].fault.id);
    EXPECT_EQ(a.records[i].fault.type, b.records[i].fault.type);
    EXPECT_EQ(a.records[i].fault.address, b.records[i].fault.address);
    EXPECT_EQ(a.records[i].fault.bit, b.records[i].fault.bit);
    EXPECT_EQ(a.records[i].fault.inject_at, b.records[i].fault.inject_at);
    EXPECT_EQ(a.records[i].fault.magnitude, b.records[i].fault.magnitude);
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome);
    EXPECT_EQ(a.records[i].crash_what, b.records[i].crash_what);
  }
  ASSERT_EQ(a.coverage_curve.size(), b.coverage_curve.size());
  for (std::size_t i = 0; i < a.coverage_curve.size(); ++i) {
    EXPECT_EQ(a.coverage_curve[i], b.coverage_curve[i]) << "curve diverges at run " << i;
  }
  EXPECT_EQ(a.interrupted, b.interrupted);
  ASSERT_EQ(a.quarantine.size(), b.quarantine.size());
  // The full provenance payloads (node lists, timestamps) compare via the
  // canonical export.
  EXPECT_EQ(a.provenance_jsonl(), b.provenance_jsonl());
}

CampaignConfig small_config(Strategy strategy) {
  CampaignConfig cfg;
  cfg.runs = 24;
  cfg.seed = 42;
  cfg.strategy = strategy;
  cfg.location_buckets = 8;
  return cfg;
}

TEST(DistCampaignTest, BitwiseIdenticalToParallelCampaignAtAnyFleetSize) {
  for (const auto strategy : {Strategy::kMonteCarlo, Strategy::kGuided}) {
    SCOPED_TRACE(to_string(strategy));
    const CampaignConfig cfg = small_config(strategy);
    const CampaignResult baseline = ParallelCampaign(caps_factory(false), cfg).run();

    for (const std::size_t fleet : {1u, 2u, 4u}) {
      SCOPED_TRACE("fleet=" + std::to_string(fleet));
      DistConfig dc;
      dc.campaign = cfg;
      dc.workers = fleet;
      DistCampaign campaign(caps_factory(false), dc);
      const CampaignResult dist = campaign.run();
      expect_identical(baseline, dist);
      EXPECT_EQ(campaign.fleet_stats().workers_spawned, fleet);
      EXPECT_EQ(campaign.fleet_stats().worker_deaths, 0u);
    }
  }
}

TEST(DistCampaignTest, ProvenanceRecordsTravelTheWireIntact) {
  CampaignConfig cfg = small_config(Strategy::kMonteCarlo);
  cfg.runs = 12;
  const CampaignResult baseline =
      ParallelCampaign(caps_factory(true, /*provenance=*/true), cfg).run();

  DistConfig dc;
  dc.campaign = cfg;
  dc.workers = 2;
  const CampaignResult dist = DistCampaign(caps_factory(true, /*provenance=*/true), dc).run();
  expect_identical(baseline, dist);
  // The baseline provenance is non-trivial, so the comparison above proved
  // DAGs actually crossed the process boundary.
  EXPECT_NE(baseline.provenance_jsonl(), "");
}

TEST(DistCampaignTest, WorkerSigkillMidCampaignDoesNotChangeTheResult) {
  const CampaignConfig cfg = small_config(Strategy::kGuided);
  const CampaignResult baseline = ParallelCampaign(caps_factory(false), cfg).run();

  for (const std::size_t fleet : {2u, 4u}) {
    SCOPED_TRACE("fleet=" + std::to_string(fleet));
    DistConfig dc;
    dc.campaign = cfg;
    dc.workers = fleet;
    dc.kill_after_results = 5;  // SIGKILL worker 0 mid-shard
    dc.kill_worker = 0;
    vps::obs::MetricRegistry metrics;
    DistCampaign campaign(caps_factory(false), dc);
    campaign.set_metrics(&metrics);
    const CampaignResult dist = campaign.run();
    expect_identical(baseline, dist);
    EXPECT_EQ(campaign.fleet_stats().worker_deaths, 1u);
    EXPECT_GE(campaign.fleet_stats().requeued_runs, 1u);
    EXPECT_EQ(metrics.counter("dist.worker_deaths").value(), 1u);
    EXPECT_EQ(metrics.counter("dist.workers_spawned").value(), fleet);
  }
}

TEST(DistCampaignTest, ExhaustedRequeueBudgetQuarantinesTheRun) {
  CampaignConfig cfg = small_config(Strategy::kMonteCarlo);
  DistConfig dc;
  dc.campaign = cfg;
  dc.workers = 2;
  dc.max_requeues = 0;  // any requeue attempt exceeds the budget
  dc.kill_after_results = 3;
  dc.kill_worker = 0;
  DistCampaign campaign(caps_factory(false), dc);
  const CampaignResult result = campaign.run();

  EXPECT_EQ(result.runs_executed, cfg.runs);
  ASSERT_GE(result.quarantine.size(), 1u);
  EXPECT_EQ(result.count(Outcome::kSimCrash), result.quarantine.size());
  EXPECT_NE(result.quarantine[0].what.find("requeued"), std::string::npos)
      << result.quarantine[0].what;
  EXPECT_EQ(campaign.fleet_stats().crashed_runs, result.quarantine.size());
}

TEST(DistCampaignTest, LosingTheWholeFleetFailsCleanly) {
  CampaignConfig cfg = small_config(Strategy::kMonteCarlo);
  DistConfig dc;
  dc.campaign = cfg;
  dc.workers = 1;
  dc.kill_after_results = 1;  // kill the only worker while it holds work
  dc.kill_worker = 0;
  DistCampaign campaign(caps_factory(false), dc);
  EXPECT_THROW((void)campaign.run(), InvariantError);
}

// A scenario whose replay goes silent far past the heartbeat window.
class WedgedScenario final : public Scenario {
 public:
  [[nodiscard]] std::string name() const override { return "wedged"; }
  [[nodiscard]] Time duration() const override { return Time::ms(1); }
  [[nodiscard]] std::vector<FaultType> fault_types() const override {
    return {FaultType::kMemoryBitFlip};
  }
  [[nodiscard]] Observation run(const FaultDescriptor* fault, std::uint64_t) override {
    if (fault != nullptr) {  // the golden run must stay fast
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
    }
    Observation obs;
    obs.completed = true;
    obs.output_signature = 1;
    return obs;
  }
};

TEST(DistCampaignTest, SilentWorkerIsKilledByTheHeartbeatTimeout) {
  CampaignConfig cfg;
  cfg.runs = 1;
  cfg.seed = 7;
  DistConfig dc;
  dc.campaign = cfg;
  dc.workers = 1;
  dc.heartbeat_timeout_ms = 60;
  dc.max_requeues = 0;  // the wedged run goes straight to quarantine
  DistCampaign campaign([] { return std::make_unique<WedgedScenario>(); }, dc);
  const CampaignResult result = campaign.run();
  EXPECT_EQ(result.runs_executed, 1u);
  EXPECT_EQ(result.count(Outcome::kSimCrash), 1u);
  EXPECT_EQ(campaign.fleet_stats().worker_deaths, 1u);
}

// Wedges only the first generated fault (ids are 1-based run order), so in
// a two-worker fleet exactly one worker goes silent while the other keeps
// producing results — the staggered-deadline case.
class FirstRunWedgedScenario final : public Scenario {
 public:
  [[nodiscard]] std::string name() const override { return "first_run_wedged"; }
  [[nodiscard]] Time duration() const override { return Time::ms(1); }
  [[nodiscard]] std::vector<FaultType> fault_types() const override {
    return {FaultType::kMemoryBitFlip};
  }
  [[nodiscard]] Observation run(const FaultDescriptor* fault, std::uint64_t) override {
    if (fault != nullptr && fault->id == 1) {
      std::this_thread::sleep_for(std::chrono::seconds(20));  // SIGKILLed long before
    }
    Observation obs;
    obs.completed = true;
    obs.output_signature = 1;
    return obs;
  }
};

TEST(DistCampaignTest, StaggeredTimeoutIsDetectedAtTheEarliestFleetDeadline) {
  // Regression: the collect loop used to poll at a fixed 1 s cadence, so a
  // heartbeat deadline landing between wakeups was detected up to a full
  // period late (hb=1200 ms → kill at ~2 s). With the fleet-wide earliest
  // deadline driving the timeout, the wedged worker dies at ~1.2 s even
  // while its healthy sibling keeps waking the poll with results.
  CampaignConfig cfg;
  cfg.runs = 6;
  cfg.seed = 7;
  DistConfig dc;
  dc.campaign = cfg;
  dc.workers = 2;
  dc.heartbeat_timeout_ms = 1200;
  dc.max_requeues = 0;  // the wedged run quarantines instead of wedging a survivor
  DistCampaign campaign([] { return std::make_unique<FirstRunWedgedScenario>(); }, dc);
  const auto started = std::chrono::steady_clock::now();
  const CampaignResult result = campaign.run();
  const auto elapsed = std::chrono::steady_clock::now() - started;

  EXPECT_EQ(result.runs_executed, cfg.runs);
  // The wedged worker holds every slot it was round-robined (run 0 plus any
  // it never got to); with a zero requeue budget all of them quarantine.
  EXPECT_GE(result.count(Outcome::kSimCrash), 1u);
  EXPECT_EQ(campaign.fleet_stats().worker_deaths, 1u);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 1900)
      << "wedged worker was detected a full poll period late";
}

// --------------------------------------------------------------------------
// Exec-mode workers (the vps-worker binary)
// --------------------------------------------------------------------------

TEST(DistCampaignTest, ExecWorkerBinaryMatchesInProcessResult) {
  // The spec must rebuild exactly the coordinator's scenario — default CAPS
  // config, so "caps:crash" describes it completely.
  const ScenarioFactory factory = [] {
    return std::make_unique<CapsScenario>(CapsConfig{.crash = true});
  };
  CampaignConfig cfg;
  cfg.runs = 8;
  cfg.seed = 11;
  const CampaignResult baseline = ParallelCampaign(factory, cfg).run();

  DistConfig dc;
  dc.campaign = cfg;
  dc.workers = 2;
  dc.worker_path = VPS_WORKER_PATH;
  dc.scenario_spec = "caps:crash";
  const CampaignResult dist = DistCampaign(factory, dc).run();
  expect_identical(baseline, dist);
}

TEST(DistCampaignTest, SpawnFailureIsACleanErrorNotAHang) {
  DistConfig dc;
  dc.campaign = small_config(Strategy::kMonteCarlo);
  dc.workers = 2;
  dc.worker_path = "/nonexistent/vps-worker-binary";
  dc.hello_timeout_ms = 2000;
  DistCampaign campaign(caps_factory(false), dc);
  try {
    (void)campaign.run();
    FAIL() << "spawn against a nonexistent binary must not succeed";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("spawn failure"), std::string::npos) << e.what();
  }
}

TEST(DistCampaignTest, ScenarioMismatchIsRejectedAtTheHandshake) {
  const ScenarioFactory factory = [] {
    return std::make_unique<CapsScenario>(CapsConfig{.crash = true});
  };
  DistConfig dc;
  dc.campaign = small_config(Strategy::kMonteCarlo);
  dc.workers = 1;
  dc.worker_path = VPS_WORKER_PATH;
  dc.scenario_spec = "caps:normal";  // coordinator runs caps_crash_protected
  DistCampaign campaign(factory, dc);
  try {
    (void)campaign.run();
    FAIL() << "scenario mismatch must fail the handshake";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("caps_normal_protected"), std::string::npos) << e.what();
  }
}

// --------------------------------------------------------------------------
// Checkpoint/resume under distribution
// --------------------------------------------------------------------------

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(DistCampaignTest, CheckpointResumeCrossesDriversAndFleetSizes) {
  CampaignConfig cfg = small_config(Strategy::kGuided);
  const CampaignResult uninterrupted = ParallelCampaign(caps_factory(false), cfg).run();

  // Interrupt a 2-worker distributed campaign mid-way...
  CampaignConfig cut = cfg;
  cut.batch_size = 8;
  cut.preempt_after = 10;  // preempts at the batch-16 barrier
  cut.checkpoint_path = temp_path("dist_resume.jsonl");
  DistConfig dc_cut;
  dc_cut.campaign = cut;
  dc_cut.workers = 2;
  const CampaignResult partial = DistCampaign(caps_factory(false), dc_cut).run();
  ASSERT_TRUE(partial.interrupted);
  ASSERT_LT(partial.runs_executed, cfg.runs);

  const CampaignCheckpoint cp = vps::fault::load_checkpoint(cut.checkpoint_path);

  // ...resume it distributed at a different fleet size. The batched cadence
  // must match the uninterrupted baseline; batch_size is determinism-
  // relevant, so the resumed config keeps it.
  CampaignConfig resume_cfg = cfg;
  resume_cfg.batch_size = 8;
  CampaignConfig baseline_cfg = resume_cfg;
  const CampaignResult baseline_b8 = ParallelCampaign(caps_factory(false), baseline_cfg).run();

  DistConfig dc_resume;
  dc_resume.campaign = resume_cfg;
  dc_resume.workers = 4;
  const CampaignResult resumed = DistCampaign(caps_factory(false), dc_resume).resume(cp);
  expect_identical(baseline_b8, resumed);

  // ...and resume the same checkpoint with the in-process driver: the two
  // batched drivers write interchangeable checkpoints.
  ParallelCampaign in_process(caps_factory(false), resume_cfg);
  const CampaignResult resumed_in_process = in_process.resume(cp);
  expect_identical(baseline_b8, resumed_in_process);

  std::remove(cut.checkpoint_path.c_str());
  (void)uninterrupted;  // cadence differs (batch 32) — compared via baseline_b8
}

// --------------------------------------------------------------------------
// Scenario registry
// --------------------------------------------------------------------------

TEST(ScenarioRegistry, BuildsTheSpecifiedScenario) {
  EXPECT_EQ(vps::apps::make_scenario("caps")->name(), "caps_normal_protected");
  EXPECT_EQ(vps::apps::make_scenario("caps:crash")->name(), "caps_crash_protected");
  EXPECT_EQ(vps::apps::make_scenario("caps:crash:unprotected")->name(),
            "caps_crash_unprotected");
  EXPECT_EQ(vps::apps::make_scenario("caps:normal:ecc")->name(), "caps_normal_protected_ecc");
  EXPECT_EQ(vps::apps::make_scenario("acc")->name(), "acc_follow_brake");
}

TEST(ScenarioRegistry, RejectsUnknownSpecs) {
  EXPECT_THROW((void)vps::apps::make_scenario(""), InvariantError);
  EXPECT_THROW((void)vps::apps::make_scenario("unknown_app"), InvariantError);
  EXPECT_THROW((void)vps::apps::make_scenario("caps:bogus_option"), InvariantError);
  EXPECT_THROW((void)vps::apps::make_scenario("acc:fast"), InvariantError);
}

}  // namespace

// Unit tests for the discrete-event kernel: time arithmetic, event
// notification semantics, coroutine thread processes, method processes,
// delta cycles, signals, fifos, and the VCD tracer.

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "vps/sim/fifo.hpp"
#include "vps/sim/kernel.hpp"
#include "vps/sim/module.hpp"
#include "vps/sim/signal.hpp"
#include "vps/sim/time.hpp"
#include "vps/sim/trace.hpp"
#include "vps/support/ensure.hpp"

namespace {

using namespace vps::sim;

TEST(Time, ArithmeticAndLiterals) {
  EXPECT_EQ((3_ns).picoseconds(), 3000u);
  EXPECT_EQ(1_us, 1000_ns);
  EXPECT_EQ(2_ms + 500_us, 2500_us);
  EXPECT_EQ(1_sec - 1_ms, 999_ms);
  EXPECT_EQ((10_ns) * 3, 30_ns);
  EXPECT_EQ((100_ns) / (10_ns), 10u);
  EXPECT_EQ((105_ns) % (10_ns), 5_ns);
  EXPECT_LT(1_ns, 1_us);
}

TEST(Time, FromSecondsRoundTrip) {
  EXPECT_EQ(Time::from_seconds(1.0), 1_sec);
  EXPECT_EQ(Time::from_seconds(0.0), Time::zero());
  EXPECT_EQ(Time::from_seconds(-2.0), Time::zero());
  EXPECT_NEAR(Time::from_seconds(0.0035).to_seconds(), 0.0035, 1e-12);
}

TEST(Time, ToString) {
  EXPECT_EQ((5_ns).to_string(), "5ns");
  EXPECT_EQ((2_ms).to_string(), "2ms");
  EXPECT_EQ(Time::zero().to_string(), "0s");
  EXPECT_EQ((1500_ns).to_string(), "1500ns");
}

TEST(Kernel, EmptyRunTerminates) {
  Kernel k;
  EXPECT_EQ(k.run(), Time::zero());
  EXPECT_FALSE(k.has_pending_activity());
}

TEST(Kernel, ThreadProcessDelays) {
  Kernel k;
  std::vector<std::uint64_t> log;
  k.spawn("p", [](Kernel& k, std::vector<std::uint64_t>& log) -> Coro {
    log.push_back(k.now().picoseconds());
    co_await delay(10_ns);
    log.push_back(k.now().picoseconds());
    co_await delay(5_ns);
    log.push_back(k.now().picoseconds());
  }(k, log));
  k.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], 0u);
  EXPECT_EQ(log[1], 10000u);
  EXPECT_EQ(log[2], 15000u);
  EXPECT_EQ(k.now(), 15_ns);
}

TEST(Kernel, RunUntilLimitStopsEarly) {
  Kernel k;
  int wakeups = 0;
  k.spawn("p", [](int& wakeups) -> Coro {
    for (int i = 0; i < 100; ++i) {
      co_await delay(10_ns);
      ++wakeups;
    }
  }(wakeups));
  k.run(35_ns);
  EXPECT_EQ(wakeups, 3);
  EXPECT_EQ(k.now(), 35_ns);
  k.run(1_us);
  EXPECT_EQ(wakeups, 100);
}

TEST(Kernel, EventDeltaNotification) {
  Kernel k;
  Event e(k, "e");
  int fired = 0;
  k.spawn("waiter", [](Event& e, int& fired) -> Coro {
    co_await e;
    ++fired;
  }(e, fired));
  k.spawn("notifier", [](Event& e) -> Coro {
    co_await delay(3_ns);
    e.notify();
  }(e));
  k.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(k.now(), 3_ns);
}

TEST(Kernel, TimedNotificationAndCancel) {
  Kernel k;
  Event e(k, "e");
  int fired = 0;
  k.method("m", [&] { ++fired; }, {&e}, /*initialize=*/false);
  e.notify(10_ns);
  e.notify(20_ns);
  k.spawn("canceller", [](Event& e) -> Coro {
    co_await delay(15_ns);
    e.cancel();  // kills the 20ns notification
  }(e));
  k.run();
  EXPECT_EQ(fired, 1);
}

TEST(Kernel, ImmediateNotificationRunsSameDelta) {
  Kernel k;
  Event e(k, "e");
  std::vector<std::string> order;
  k.method("listener", [&] { order.push_back("listener@" + k.now().to_string()); }, {&e},
           /*initialize=*/false);
  k.spawn("src", [](Event& e, std::vector<std::string>& order) -> Coro {
    order.push_back("pre");
    e.notify_immediate();
    order.push_back("post");
    co_return;
  }(e, order));
  k.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "pre");
  EXPECT_EQ(order[1], "post");       // src finishes its slice first
  EXPECT_EQ(order[2], "listener@0s");  // listener ran in the same evaluation phase
}

TEST(Kernel, MethodStaticSensitivityReruns) {
  Kernel k;
  Event e(k, "tick");
  int runs = 0;
  k.method("m", [&] { ++runs; }, {&e}, /*initialize=*/true);
  k.spawn("ticker", [](Event& e) -> Coro {
    for (int i = 0; i < 5; ++i) {
      co_await delay(1_ns);
      e.notify();
    }
  }(e));
  k.run();
  EXPECT_EQ(runs, 6);  // 1 initialize + 5 notifications
}

TEST(Kernel, WaitWithTimeoutEventWins) {
  Kernel k;
  Event e(k, "e");
  bool got_event = false;
  k.spawn("w", [](Event& e, bool& got) -> Coro { got = co_await wait_with_timeout(e, 100_ns); }(e, got_event));
  k.spawn("n", [](Event& e) -> Coro {
    co_await delay(10_ns);
    e.notify();
  }(e));
  k.run();
  EXPECT_TRUE(got_event);
  EXPECT_EQ(k.now(), 10_ns);
}

TEST(Kernel, WaitWithTimeoutTimeoutWins) {
  Kernel k;
  Event e(k, "e");
  bool got_event = true;
  k.spawn("w", [](Event& e, bool& got) -> Coro { got = co_await wait_with_timeout(e, 100_ns); }(e, got_event));
  k.run();
  EXPECT_FALSE(got_event);
  EXPECT_EQ(k.now(), 100_ns);
}

TEST(Kernel, WaitWithTimeoutLeavesNoStaleWakeup) {
  Kernel k;
  Event e(k, "e");
  std::vector<std::uint64_t> wake_times;
  k.spawn("w", [](Kernel& k, Event& e, std::vector<std::uint64_t>& times) -> Coro {
    (void)co_await wait_with_timeout(e, 100_ns);  // event fires at 10ns
    times.push_back(k.now().picoseconds());
    co_await delay(500_ns);  // the stale 100ns timeout must not shorten this
    times.push_back(k.now().picoseconds());
  }(k, e, wake_times));
  k.spawn("n", [](Event& e) -> Coro {
    co_await delay(10_ns);
    e.notify();
  }(e));
  k.run();
  ASSERT_EQ(wake_times.size(), 2u);
  EXPECT_EQ(wake_times[0], (10_ns).picoseconds());
  EXPECT_EQ(wake_times[1], (510_ns).picoseconds());
}

TEST(Kernel, NestedCoroutinesPropagateContext) {
  Kernel k;
  std::vector<std::uint64_t> log;
  auto inner = [](Kernel& k, std::vector<std::uint64_t>& log) -> Coro {
    co_await delay(7_ns);
    log.push_back(k.now().picoseconds());
  };
  k.spawn("outer", [](Kernel& k, std::vector<std::uint64_t>& log, auto inner) -> Coro {
    co_await inner(k, log);
    co_await inner(k, log);
    log.push_back(k.now().picoseconds());
  }(k, log, inner));
  k.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], 7000u);
  EXPECT_EQ(log[1], 14000u);
  EXPECT_EQ(log[2], 14000u);
}

TEST(Kernel, ExceptionInProcessPropagatesToRun) {
  Kernel k;
  k.spawn("bad", []() -> Coro {
    co_await delay(1_ns);
    throw std::runtime_error("model exploded");
  }());
  EXPECT_THROW(k.run(), std::runtime_error);
}

TEST(Kernel, ExceptionInNestedCoroPropagates) {
  Kernel k;
  auto inner = []() -> Coro {
    co_await delay(1_ns);
    throw std::runtime_error("inner bad");
  };
  bool caught_in_outer = false;
  k.spawn("outer", [](auto inner, bool& caught) -> Coro {
    try {
      co_await inner();
    } catch (const std::runtime_error&) {
      caught = true;
    }
  }(inner, caught_in_outer));
  k.run();
  EXPECT_TRUE(caught_in_outer);
}

TEST(Kernel, TerminatedEventAllowsJoin) {
  Kernel k;
  auto& worker = k.spawn("worker", []() -> Coro { co_await delay(42_ns); }());
  bool joined = false;
  k.spawn("parent", [](Kernel& k, Process& w, bool& joined) -> Coro {
    co_await w.terminated_event();
    joined = w.done() && k.now() == 42_ns;
  }(k, worker, joined));
  k.run();
  EXPECT_TRUE(joined);
}

TEST(Kernel, KillPreventsFurtherActivations) {
  Kernel k;
  int wakeups = 0;
  auto& victim = k.spawn("victim", [](int& wakeups) -> Coro {
    for (;;) {
      co_await delay(10_ns);
      ++wakeups;
    }
  }(wakeups));
  k.spawn("killer", [](Process& v) -> Coro {
    co_await delay(35_ns);
    v.kill();
  }(victim));
  k.run(1_us);
  EXPECT_EQ(wakeups, 3);
  EXPECT_TRUE(victim.done());
}

TEST(Kernel, StopEndsRun) {
  Kernel k;
  int wakeups = 0;
  k.spawn("p", [](Kernel& k, int& wakeups) -> Coro {
    for (;;) {
      co_await delay(10_ns);
      if (++wakeups == 3) k.stop();
    }
  }(k, wakeups));
  k.run();
  EXPECT_EQ(wakeups, 3);
  EXPECT_EQ(k.now(), 30_ns);
}

TEST(Kernel, StatsCountActivity) {
  Kernel k;
  Event e(k, "e");
  k.spawn("p", [](Event& e) -> Coro {
    for (int i = 0; i < 10; ++i) {
      co_await delay(1_ns);
      e.notify();
    }
  }(e));
  k.run();
  EXPECT_GE(k.stats().activations, 10u);
  EXPECT_GE(k.stats().notifications, 10u);
  EXPECT_GE(k.stats().timed_steps, 10u);
}

TEST(Kernel, DeterministicSameTimeOrdering) {
  // Two processes scheduled for the same instant run in registration order.
  for (int rep = 0; rep < 3; ++rep) {
    Kernel k;
    std::vector<int> order;
    k.spawn("a", [](std::vector<int>& order) -> Coro {
      co_await delay(5_ns);
      order.push_back(1);
    }(order));
    k.spawn("b", [](std::vector<int>& order) -> Coro {
      co_await delay(5_ns);
      order.push_back(2);
    }(order));
    k.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
  }
}

TEST(Kernel, PendingActivityAndNextTime) {
  Kernel k;
  Event e(k, "e");
  EXPECT_FALSE(k.has_pending_activity());
  EXPECT_EQ(k.next_activity_time(), Time::max());
  e.notify(25_ns);
  EXPECT_TRUE(k.has_pending_activity());
  EXPECT_EQ(k.next_activity_time(), 25_ns);
  k.run();
  EXPECT_EQ(e.fire_count(), 1u);
  // A runnable process makes "now" the next activity time.
  k.spawn("p", []() -> Coro { co_return; }());
  EXPECT_EQ(k.next_activity_time(), k.now());
  k.run();
  EXPECT_FALSE(k.has_pending_activity());
}

TEST(Kernel, EventFireCountAccumulates) {
  Kernel k;
  Event e(k, "e");
  k.spawn("n", [](Event& e) -> Coro {
    for (int i = 0; i < 4; ++i) {
      e.notify();
      co_await delay(1_ns);
    }
    e.notify_immediate();
  }(e));
  k.run();
  EXPECT_EQ(e.fire_count(), 5u);
}

TEST(Signal, DeltaCycleSemantics) {
  Kernel k;
  Signal<int> s(k, "s", 0);
  int observed_during_write_delta = -1;
  k.spawn("writer", [](Signal<int>& s, int& obs) -> Coro {
    s.write(5);
    obs = s.read();  // still old value within the same evaluation
    co_return;
  }(s, observed_during_write_delta));
  k.run();
  EXPECT_EQ(observed_during_write_delta, 0);
  EXPECT_EQ(s.read(), 5);
}

TEST(Signal, ChangedEventFiresOnlyOnChange) {
  Kernel k;
  Signal<int> s(k, "s", 0);
  int changes = 0;
  k.method("watcher", [&] { ++changes; }, {&s.changed()}, /*initialize=*/false);
  k.spawn("writer", [](Signal<int>& s) -> Coro {
    s.write(0);  // no change
    co_await delay(1_ns);
    s.write(7);  // change
    co_await delay(1_ns);
    s.write(7);  // no change
    co_await delay(1_ns);
    s.write(8);  // change
  }(s));
  k.run();
  EXPECT_EQ(changes, 2);
  EXPECT_EQ(s.change_count(), 2u);
}

TEST(Signal, LastWriteInDeltaWins) {
  Kernel k;
  Signal<int> s(k, "s", 0);
  k.spawn("w", [](Signal<int>& s) -> Coro {
    s.write(1);
    s.write(2);
    s.write(3);
    co_return;
  }(s));
  k.run();
  EXPECT_EQ(s.read(), 3);
  EXPECT_EQ(s.change_count(), 1u);
}

TEST(Signal, ForceBypassesDeltaProtocol) {
  Kernel k;
  Signal<int> s(k, "s", 0);
  int seen = -1;
  k.spawn("f", [](Signal<int>& s, int& seen) -> Coro {
    s.force(9);
    seen = s.read();  // visible immediately
    co_return;
  }(s, seen));
  k.run();
  EXPECT_EQ(seen, 9);
}

TEST(Fifo, NonBlockingOps) {
  Kernel k;
  Fifo<int> f(k, "f", 2);
  EXPECT_TRUE(f.nb_push(1));
  EXPECT_TRUE(f.nb_push(2));
  EXPECT_FALSE(f.nb_push(3));
  EXPECT_TRUE(f.full());
  EXPECT_EQ(f.nb_pop().value(), 1);
  EXPECT_EQ(f.nb_pop().value(), 2);
  EXPECT_FALSE(f.nb_pop().has_value());
}

TEST(Fifo, BlockingProducerConsumer) {
  Kernel k;
  Fifo<int> f(k, "f", 2);
  std::vector<int> received;
  k.spawn("producer", [](Fifo<int>& f) -> Coro {
    for (int i = 0; i < 10; ++i) co_await f.push(i);
  }(f));
  k.spawn("consumer", [](Fifo<int>& f, std::vector<int>& received) -> Coro {
    for (int i = 0; i < 10; ++i) {
      int v = 0;
      co_await f.pop(v);
      received.push_back(v);
      co_await delay(3_ns);  // slow consumer back-pressures producer
    }
  }(f, received));
  k.run();
  ASSERT_EQ(received.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

TEST(Fifo, RejectsZeroCapacity) {
  Kernel k;
  EXPECT_THROW(Fifo<int>(k, "f", 0), vps::support::InvariantError);
}

TEST(Module, HierarchicalNames) {
  Kernel k;
  struct Top : Module {
    using Module::Module;
  };
  Top top(k, "top");
  struct Sub : Module {
    Sub(Module& parent) : Module(parent, "sub") {}
  };
  Sub sub(top);
  EXPECT_EQ(sub.name(), "top.sub");
  EXPECT_EQ(&sub.kernel(), &k);
}

TEST(Vcd, WritesChangesToFile) {
  const std::string path = "/tmp/vps_vcd_test.vcd";
  {
    Kernel k;
    Signal<bool> clk(k, "clk", false);
    Signal<std::uint8_t> bus(k, "bus", 0);
    VcdTracer vcd(k, path);
    vcd.trace(clk);
    vcd.trace(bus);
    k.spawn("driver", [](Signal<bool>& clk, Signal<std::uint8_t>& bus) -> Coro {
      for (std::uint8_t i = 0; i < 4; ++i) {
        clk.write(!clk.read());
        bus.write(i);
        co_await delay(10_ns);
      }
    }(clk, bus));
    k.run();
    EXPECT_GT(vcd.change_records(), 0u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(content.find("clk"), std::string::npos);
  EXPECT_NE(content.find("#10000"), std::string::npos);
  std::remove(path.c_str());
}

// --- regression tests for the PR-2 bugfix anchors ---------------------------

// Time arithmetic saturates instead of wrapping (the old two's-complement
// wrap made `now + Time::max()` a tiny deadline and Time::sec(huge) a
// nonsense small count).
TEST(Time, SaturatingArithmetic) {
  EXPECT_EQ(Time::max() + 1_ns, Time::max());
  EXPECT_EQ(1_ns + Time::max(), Time::max());
  EXPECT_EQ(Time::max() + Time::max(), Time::max());
  EXPECT_EQ(Time::sec(std::numeric_limits<std::uint64_t>::max()), Time::max());
  EXPECT_EQ(Time::max() * 2, Time::max());
  EXPECT_EQ(1_ns - 1_us, Time::zero());  // subtraction clamps at zero
  EXPECT_EQ(Time::zero() - Time::max(), Time::zero());
  // Ordinary arithmetic is unaffected.
  EXPECT_EQ(1_us + 1_ns, Time::ps(1001000));
  EXPECT_EQ(1_us - 1_ns, Time::ps(999000));
  Time t = Time::max();
  t += 5_ms;
  EXPECT_EQ(t, Time::max());
  t -= Time::max();
  EXPECT_EQ(t, Time::zero());
}

// run_for(Time::max()) means "until activity is exhausted". Before the
// saturating fix, now + max wrapped to (now - 1ps) and run() returned
// immediately without executing anything.
TEST(Kernel, RunForTimeMaxDoesNotWrap) {
  Kernel k;
  int steps = 0;
  k.spawn("p", [](int& steps) -> Coro {
    for (int i = 0; i < 3; ++i) {
      co_await delay(10_ns);
      ++steps;
    }
  }(steps));
  k.run_for(Time::max());
  EXPECT_EQ(steps, 3);
  EXPECT_EQ(k.now(), 30_ns);
}

// Commit hooks are multi-subscriber with independent handle-based removal
// (the old single-slot set_commit_hook silently evicted prior observers).
TEST(Signal, MultipleCommitHooksCoexist) {
  Kernel k;
  Signal<int> sig(k, "sig", 0);
  std::vector<int> a, b;
  const CommitHookId ha = sig.add_commit_hook([&a](const int& v) { a.push_back(v); });
  const CommitHookId hb = sig.add_commit_hook([&b](const int& v) { b.push_back(v); });
  EXPECT_NE(ha, hb);
  EXPECT_EQ(sig.commit_hook_count(), 2u);

  k.spawn("w", [](Signal<int>& sig) -> Coro {
    sig.write(1);
    co_await delay(1_ns);
    sig.write(2);
    co_await delay(1_ns);
  }(sig));
  k.run();
  EXPECT_EQ(a, (std::vector<int>{1, 2}));
  EXPECT_EQ(b, (std::vector<int>{1, 2}));

  // Removing one hook must not disturb the other.
  sig.remove_commit_hook(ha);
  EXPECT_EQ(sig.commit_hook_count(), 1u);
  sig.force(7);
  EXPECT_EQ(a, (std::vector<int>{1, 2}));
  EXPECT_EQ(b, (std::vector<int>{1, 2, 7}));
  sig.remove_commit_hook(hb);
  EXPECT_EQ(sig.commit_hook_count(), 0u);
  sig.remove_commit_hook(hb);  // double-remove is a no-op
}

// The concrete instance of the eviction bug: attaching a VCD tracer and a
// user monitor to the same signal; both must see every commit.
TEST(Signal, TracerAndMonitorCoexist) {
  const std::string path = "/tmp/vps_vcd_coexist_test.vcd";
  Kernel k;
  Signal<std::uint8_t> bus(k, "bus", 0);
  std::vector<int> monitored;
  (void)bus.add_commit_hook([&monitored](const std::uint8_t& v) { monitored.push_back(v); });
  VcdTracer vcd(k, path);
  vcd.trace(bus);  // must not evict the monitor
  EXPECT_EQ(bus.commit_hook_count(), 2u);

  k.spawn("w", [](Signal<std::uint8_t>& bus) -> Coro {
    for (std::uint8_t i = 1; i <= 3; ++i) {
      bus.write(i);
      co_await delay(10_ns);
    }
  }(bus));
  k.run();
  EXPECT_EQ(monitored, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(vcd.change_records(), 3u);
  std::remove(path.c_str());
}

// Destroying the tracer before the signals it traces must detach its commit
// hooks: afterwards the hooks that captured the dead tracer are gone and
// further writes are safe (previously a use-after-free under ASan).
TEST(Vcd, TracerDestroyedBeforeSignalsDetachesHooks) {
  const std::string path = "/tmp/vps_vcd_lifetime_test.vcd";
  Kernel k;
  Signal<bool> clk(k, "clk", false);
  Signal<std::uint8_t> bus(k, "bus", 0);
  {
    VcdTracer vcd(k, path);
    vcd.trace(clk);
    vcd.trace(bus);
    EXPECT_EQ(clk.commit_hook_count(), 1u);
    EXPECT_EQ(bus.commit_hook_count(), 1u);
  }  // tracer destroyed here, signals live on
  EXPECT_EQ(clk.commit_hook_count(), 0u);
  EXPECT_EQ(bus.commit_hook_count(), 0u);
  k.spawn("w", [](Signal<bool>& clk, Signal<std::uint8_t>& bus) -> Coro {
    clk.write(true);
    bus.write(42);
    co_await delay(1_ns);
  }(clk, bus));
  k.run();  // would crash (dangling `this` in the hook) without detach
  EXPECT_TRUE(clk.read());
  std::remove(path.c_str());
}

// Byte-exact golden file: the VCD writer's output is fully deterministic
// (sim-time timestamps only), so observability changes that perturb the
// format are caught here rather than in a downstream waveform viewer.
TEST(Vcd, GoldenFileOutput) {
  const std::string path = "/tmp/vps_vcd_golden_test.vcd";
  {
    Kernel k;
    Signal<bool> clk(k, "clk", false);
    Signal<std::uint8_t> bus(k, "bus", 0);
    VcdTracer vcd(k, path);
    vcd.trace(clk);
    vcd.trace(bus);
    k.spawn("driver", [](Signal<bool>& clk, Signal<std::uint8_t>& bus) -> Coro {
      for (std::uint8_t i = 1; i <= 3; ++i) {
        clk.write(!clk.read());
        bus.write(i);
        co_await delay(10_ns);
      }
    }(clk, bus));
    k.run();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  const std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  const std::string golden = R"($timescale 1ps $end
$scope module vps $end
$var wire 1 ! clk $end
$var wire 8 " bus $end
$upscope $end
$enddefinitions $end
$dumpvars
0!
b00000000 "
$end
#0
1!
b00000001 "
#10000
0!
b00000010 "
#20000
1!
b00000011 "
)";
  EXPECT_EQ(content, golden);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Watchdog budgets (RunBudget / RunStatus)
// ---------------------------------------------------------------------------

TEST(RunBudget, DeltaLivelockStopsWithLivelockReason) {
  Kernel k;
  Event e(k, "e");
  // Delta livelock: the method re-notifies its own trigger every delta, so
  // time never advances and an unbudgeted run would spin forever.
  k.method("storm", [&] { e.notify(); }, {&e}, /*initialize=*/true);
  const RunStatus status = k.run_until_idle(RunBudget{.max_deltas_without_advance = 100});
  EXPECT_EQ(status.reason, StopReason::kLivelock);
  EXPECT_TRUE(status.budget_exhausted());
  EXPECT_EQ(status.time, Time::zero());  // never left t = 0
  EXPECT_STREQ(to_string(status.reason), "livelock");
}

TEST(RunBudget, ImmediateSelfNotificationStopsOnActivationBudget) {
  Kernel k;
  Event e(k, "e");
  // Immediate self-notification never lets the evaluate phase drain, so no
  // delta boundary is ever reached: only the activation budget can catch it.
  k.method("storm", [&] { e.notify_immediate(); }, {&e}, /*initialize=*/true);
  const RunStatus status = k.run_until_idle(RunBudget{.max_activations = 1000});
  EXPECT_EQ(status.reason, StopReason::kActivationBudget);
  EXPECT_TRUE(status.budget_exhausted());
  EXPECT_GE(k.stats().activations, 1000u);
}

TEST(RunBudget, DeltaCycleBudgetStops) {
  Kernel k;
  Event e(k, "e");
  k.method("storm", [&] { e.notify(); }, {&e}, /*initialize=*/true);
  const RunStatus status = k.run_until_idle(RunBudget{.max_delta_cycles = 50});
  EXPECT_EQ(status.reason, StopReason::kDeltaBudget);
  EXPECT_GE(k.stats().delta_cycles, 50u);
}

TEST(RunBudget, LivelockCounterResetsOnTimeAdvance) {
  Kernel k;
  k.spawn("healthy", []() -> Coro {
    for (int i = 0; i < 50; ++i) co_await delay(1_ns);
  }());
  // A healthy periodic process advances time every delta or two — far below
  // the heuristic threshold, so a tight livelock guard must not fire.
  const RunStatus status = k.run_until_idle(RunBudget{.max_deltas_without_advance = 3});
  EXPECT_EQ(status.reason, StopReason::kIdle);
  EXPECT_FALSE(status.budget_exhausted());
  EXPECT_EQ(k.now(), 50_ns);
}

TEST(RunBudget, DistinguishesIdleFromTimeLimit) {
  Kernel k;
  k.spawn("p", []() -> Coro { co_await delay(10_ns); }());
  Kernel k2;
  k2.spawn("p", []() -> Coro {
    for (;;) co_await delay(10_ns);
  }());
  EXPECT_EQ(k.run_until_idle().reason, StopReason::kIdle);
  EXPECT_EQ(k2.run_for(25_ns, RunBudget{}).reason, StopReason::kTimeLimit);
  EXPECT_EQ(k2.now(), 25_ns);
}

TEST(RunBudget, BudgetsAreRelativeToRunEntryAndResumable) {
  Kernel k;
  int wakeups = 0;
  k.spawn("p", [](int& wakeups) -> Coro {
    for (int i = 0; i < 10; ++i) {
      co_await delay(1_ns);
      ++wakeups;
    }
  }(wakeups));
  const RunStatus first = k.run_until_idle(RunBudget{.max_activations = 3});
  EXPECT_EQ(first.reason, StopReason::kActivationBudget);
  EXPECT_LT(wakeups, 10);
  // A fresh call gets a fresh allowance (limits are relative to run() entry,
  // not lifetime totals), so the same budget eventually finishes the work.
  RunStatus last = first;
  for (int guard = 0; guard < 20 && last.budget_exhausted(); ++guard) {
    last = k.run_until_idle(RunBudget{.max_activations = 3});
  }
  EXPECT_EQ(last.reason, StopReason::kIdle);
  EXPECT_EQ(wakeups, 10);
  EXPECT_EQ(k.now(), 10_ns);
}

TEST(RunBudget, LegacyUnbudgetedRunStillReturnsTime) {
  Kernel k;
  k.spawn("p", []() -> Coro { co_await delay(7_ns); }());
  EXPECT_EQ(k.run(), 7_ns);
}

// ---------------------------------------------------------------------------
// Multiple kernel observers
// ---------------------------------------------------------------------------

struct CountingObserver final : KernelObserver {
  int deltas = 0;
  int trips = 0;
  StopReason last_trip = StopReason::kIdle;
  void on_delta_cycle(Time) override { ++deltas; }
  void on_budget_trip(const RunStatus& status) override {
    ++trips;
    last_trip = status.reason;
  }
};

TEST(KernelObserver, MultipleObserversAllReceiveCallbacks) {
  Kernel k;
  CountingObserver a;
  CountingObserver b;
  k.add_observer(a);
  k.add_observer(b);
  EXPECT_EQ(k.observer_count(), 2u);
  k.spawn("p", []() -> Coro { co_await delay(1_ns); }());
  k.run();
  EXPECT_GT(a.deltas, 0);
  EXPECT_EQ(a.deltas, b.deltas);  // both saw every delta boundary

  k.remove_observer(a);
  EXPECT_FALSE(k.has_observer(a));
  EXPECT_TRUE(k.has_observer(b));
  const int a_before = a.deltas;
  k.spawn("q", []() -> Coro { co_await delay(1_ns); }());
  k.run();
  EXPECT_EQ(a.deltas, a_before);  // detached: no further callbacks
  EXPECT_GT(b.deltas, a.deltas);
}

TEST(KernelObserver, DuplicateAttachIsAnInvariantError) {
  Kernel k;
  CountingObserver a;
  k.add_observer(a);
  EXPECT_THROW(k.add_observer(a), vps::support::InvariantError);
  k.remove_observer(a);
  k.remove_observer(a);  // removing a detached observer is a no-op
  EXPECT_EQ(k.observer_count(), 0u);
}

TEST(KernelObserver, BudgetTripNotifiesEveryObserver) {
  Kernel k;
  Event e(k, "e");
  k.method("storm", [&] { e.notify(); }, {&e}, /*initialize=*/true);
  CountingObserver a;
  CountingObserver b;
  k.add_observer(a);
  k.add_observer(b);
  const RunStatus status = k.run_until_idle(RunBudget{.max_deltas_without_advance = 10});
  EXPECT_EQ(status.reason, StopReason::kLivelock);
  EXPECT_EQ(a.trips, 1);
  EXPECT_EQ(b.trips, 1);
  EXPECT_EQ(a.last_trip, StopReason::kLivelock);
}

}  // namespace

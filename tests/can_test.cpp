// CAN substrate tests: frame serialization (stuffing, CRC), exact timing,
// priority arbitration, error handling with retransmission, and the
// fault-confinement state machine (error-passive, bus-off, recovery).

#include <gtest/gtest.h>

#include <vector>

#include "vps/can/bus.hpp"
#include "vps/can/frame.hpp"
#include "vps/support/ensure.hpp"

namespace {

using namespace vps::can;
using namespace vps::sim;

TEST(Frame, MakeValidatesArguments) {
  const std::vector<std::uint8_t> payload{1, 2, 3};
  const CanFrame f = CanFrame::make(0x123, payload);
  EXPECT_EQ(f.id, 0x123);
  EXPECT_EQ(f.dlc, 3);
  EXPECT_EQ(f.payload()[2], 3);
  EXPECT_THROW((void)CanFrame::make(0x800, payload), vps::support::InvariantError);
  const std::vector<std::uint8_t> big(9, 0);
  EXPECT_THROW((void)CanFrame::make(1, big), vps::support::InvariantError);
}

TEST(Frame, UnstuffedBitLayout) {
  const CanFrame f = CanFrame::make(0x555, std::vector<std::uint8_t>{0xFF});
  const auto bits = frame_bits_unstuffed(f);
  // SOF(1) + ID(11) + RTR + IDE + r0 + DLC(4) + 8 data bits = 27.
  ASSERT_EQ(bits.size(), 27u);
  EXPECT_FALSE(bits[0]);  // SOF dominant
  // ID 0x555 = 101 0101 0101.
  EXPECT_TRUE(bits[1]);
  EXPECT_FALSE(bits[2]);
  EXPECT_TRUE(bits[3]);
}

TEST(Frame, StuffingInsertsComplementAfterFiveEqualBits) {
  // ID 0 and zero data create long dominant runs that must be stuffed.
  const CanFrame f = CanFrame::make(0x000, std::vector<std::uint8_t>{0x00});
  const auto wire = serialize_frame(f);
  int run = 1;
  for (std::size_t i = 1; i + 12 < wire.size(); ++i) {  // exclude EOF/IFS (legally unstuffed)
    run = wire[i] == wire[i - 1] ? run + 1 : 1;
    EXPECT_LE(run, 5) << "stuffing violation at wire bit " << i;
  }
}

TEST(Frame, BitCountWithinSpecBounds) {
  // Standard data frame: 44 + 8*dlc bits before stuffing + delim/ack/eof/ifs.
  for (std::uint8_t dlc = 0; dlc <= 8; ++dlc) {
    std::vector<std::uint8_t> payload(dlc, 0xAA);
    const CanFrame f = CanFrame::make(0x2A5, payload);
    const std::size_t bits = frame_bit_count(f);
    const std::size_t unstuffed_core = 19 + 8u * dlc + 15;  // SOF..CRC
    const std::size_t overhead = 13;                        // delims+ack+eof+ifs
    EXPECT_GE(bits, unstuffed_core + overhead);
    EXPECT_LE(bits, unstuffed_core + unstuffed_core / 4 + overhead);
  }
}

TEST(Frame, CrcChangesOnAnyDataBitFlip) {
  const CanFrame base = CanFrame::make(0x300, std::vector<std::uint8_t>{0x12, 0x34});
  const auto crc = frame_crc(base);
  for (int byte = 0; byte < 2; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      CanFrame f = base;
      f.data[static_cast<std::size_t>(byte)] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(frame_crc(f), crc);
    }
  }
}

// Test node that records everything it receives.
class Recorder : public CanNode {
 public:
  void on_frame(const CanFrame& frame) override { received.push_back(frame); }
  std::vector<CanFrame> received;
};

struct BusFixture {
  Kernel kernel;
  CanBus bus{kernel, "can0", 500000};
  Recorder a, b, c;
  BusFixture() {
    bus.attach(a);
    bus.attach(b);
    bus.attach(c);
  }
};

TEST(Bus, DeliversToAllOtherNodes) {
  BusFixture fx;
  const CanFrame f = CanFrame::make(0x100, std::vector<std::uint8_t>{9});
  fx.bus.submit(fx.a, f);
  fx.kernel.run();
  ASSERT_EQ(fx.b.received.size(), 1u);
  ASSERT_EQ(fx.c.received.size(), 1u);
  EXPECT_TRUE(fx.a.received.empty());  // no self-reception
  EXPECT_EQ(fx.b.received[0], f);
  EXPECT_EQ(fx.bus.stats().frames_delivered, 1u);
}

TEST(Bus, FrameTimingMatchesBitCount) {
  BusFixture fx;
  const CanFrame f = CanFrame::make(0x100, std::vector<std::uint8_t>{1, 2, 3, 4});
  fx.bus.submit(fx.a, f);
  fx.kernel.run();
  const Time expected = fx.bus.bit_time() * frame_bit_count(f);
  EXPECT_EQ(fx.kernel.now(), expected);
  // 500 kbit/s -> 2us per bit.
  EXPECT_EQ(fx.bus.bit_time(), Time::us(2));
}

TEST(Bus, LowerIdWinsArbitration) {
  BusFixture fx;
  // Submit in reverse priority order before the bus starts.
  fx.bus.submit(fx.a, CanFrame::make(0x300, std::vector<std::uint8_t>{3}));
  fx.bus.submit(fx.b, CanFrame::make(0x100, std::vector<std::uint8_t>{1}));
  fx.bus.submit(fx.c, CanFrame::make(0x200, std::vector<std::uint8_t>{2}));
  fx.kernel.run();
  // Node a receives b's and c's frames, in priority order.
  ASSERT_EQ(fx.a.received.size(), 2u);
  EXPECT_EQ(fx.a.received[0].id, 0x100);
  EXPECT_EQ(fx.a.received[1].id, 0x200);
  EXPECT_GE(fx.bus.stats().arbitration_contests, 1u);
}

TEST(Bus, CorruptedFrameIsRetransmitted) {
  BusFixture fx;
  fx.bus.force_error_on_next_frame();
  const CanFrame f = CanFrame::make(0x150, std::vector<std::uint8_t>{7});
  fx.bus.submit(fx.a, f);
  fx.kernel.run();
  ASSERT_EQ(fx.b.received.size(), 1u);  // eventually delivered
  EXPECT_EQ(fx.bus.stats().corrupted_frames, 1u);
  EXPECT_EQ(fx.bus.stats().retransmissions, 1u);
  EXPECT_EQ(fx.bus.stats().frames_delivered, 1u);
  // Transmit error counter: +8 for the error, -1 for the success.
  EXPECT_EQ(fx.a.tec(), 7u);
}

TEST(Bus, PersistentErrorsDriveTransmitterBusOff) {
  BusFixture fx;
  fx.bus.set_error_rate(1.0, 42);  // every frame corrupted
  fx.bus.submit(fx.a, CanFrame::make(0x111, std::vector<std::uint8_t>{1}));
  fx.kernel.run(Time::ms(100));
  EXPECT_EQ(fx.a.state(), NodeState::kBusOff);
  EXPECT_EQ(fx.bus.stats().bus_off_events, 1u);
  EXPECT_TRUE(fx.b.received.empty());
  // 255/8 = 32 transmission attempts to reach bus-off.
  EXPECT_GE(fx.bus.stats().corrupted_frames, 32u);
  // Submissions from a bus-off node are dropped.
  fx.bus.submit(fx.a, CanFrame::make(0x111, std::vector<std::uint8_t>{1}));
  EXPECT_EQ(fx.bus.stats().dropped_bus_off, 1u);
}

TEST(Bus, BusOffNodeRecoversAndTransmitsAgain) {
  BusFixture fx;
  fx.bus.set_error_rate(1.0, 42);
  fx.bus.submit(fx.a, CanFrame::make(0x111, std::vector<std::uint8_t>{1}));
  fx.kernel.run(Time::ms(100));
  ASSERT_EQ(fx.a.state(), NodeState::kBusOff);
  // Heal the bus, request recovery, and wait out the recovery sequence.
  fx.bus.set_error_rate(0.0);
  fx.bus.request_recovery(fx.a);
  fx.kernel.run(fx.kernel.now() + Time::sec(1));
  EXPECT_EQ(fx.a.state(), NodeState::kErrorActive);
  fx.bus.submit(fx.a, CanFrame::make(0x123, std::vector<std::uint8_t>{5}));
  fx.kernel.run(fx.kernel.now() + Time::ms(10));
  ASSERT_EQ(fx.b.received.size(), 1u);
  EXPECT_EQ(fx.b.received[0].id, 0x123);
}

TEST(Bus, ErrorPassiveTransitionAt128) {
  BusFixture fx;
  // Corrupt exactly 16 frames (16*8 = 128 > 127 -> error passive).
  int sent = 0;
  fx.bus.set_error_rate(1.0, 7);
  fx.bus.submit(fx.a, CanFrame::make(0x111, std::vector<std::uint8_t>{1}));
  // Stop corrupting once TEC crosses 128 by healing after a fixed time:
  // 17 slots of (frame + error overhead) is comfortably enough.
  fx.kernel.spawn("healer", [](BusFixture& fx) -> Coro {
    for (;;) {
      co_await fx.bus.frame_done_event();
      if (fx.a.tec() > 127) {
        fx.bus.set_error_rate(0.0);
        break;
      }
    }
  }(fx));
  (void)sent;
  fx.kernel.run(Time::ms(50));
  EXPECT_EQ(fx.a.state(), NodeState::kErrorActive);  // healed by final success
  EXPECT_GE(fx.bus.stats().retransmissions, 16u);
  EXPECT_EQ(fx.bus.stats().frames_delivered, 1u);
}

TEST(Wire, SerializeDeserializeRoundTrip) {
  vps::support::Xorshift rng(41);
  for (int trial = 0; trial < 300; ++trial) {
    const auto dlc = static_cast<std::uint8_t>(rng.index(9));
    std::vector<std::uint8_t> payload(dlc);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
    const CanFrame f = CanFrame::make(static_cast<std::uint16_t>(rng.index(0x800)), payload);
    const auto decoded = deserialize_frame(serialize_frame(f));
    ASSERT_TRUE(decoded.has_value()) << f.to_string();
    EXPECT_EQ(*decoded, f) << f.to_string();
  }
}

TEST(Wire, RemoteFrameRoundTrip) {
  CanFrame f = CanFrame::make(0x2AB, std::vector<std::uint8_t>{});
  f.remote = true;
  f.dlc = 4;  // RTR frames carry a DLC but no data
  const auto decoded = deserialize_frame(serialize_frame(f));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->remote);
  EXPECT_EQ(decoded->id, 0x2AB);
  EXPECT_EQ(decoded->dlc, 4);
}

TEST(Wire, SingleBitCorruptionIsRejected) {
  // Any single bit flip in the stuffed SOF..CRC region must be caught by
  // stuffing rules or the CRC; payload corruption must never yield a
  // *different valid* frame.
  const CanFrame f = CanFrame::make(0x1D3, std::vector<std::uint8_t>{0xDE, 0xAD, 0xBE});
  const auto wire = serialize_frame(f);
  int rejected = 0, same = 0, different_valid = 0;
  for (std::size_t bit = 0; bit + 13 < wire.size(); ++bit) {  // skip trailing fields
    auto corrupted = wire;
    corrupted[bit] = !corrupted[bit];
    const auto decoded = deserialize_frame(corrupted);
    if (!decoded.has_value()) {
      ++rejected;
    } else if (*decoded == f) {
      ++same;
    } else {
      ++different_valid;
    }
  }
  EXPECT_EQ(different_valid, 0) << "single-bit corruption produced a valid different frame";
  EXPECT_GT(rejected, 40);
  EXPECT_EQ(same, 0);
}

TEST(Wire, TruncatedStreamsAreRejected) {
  const CanFrame f = CanFrame::make(0x100, std::vector<std::uint8_t>{1, 2});
  const auto wire = serialize_frame(f);
  for (const std::size_t keep : {std::size_t{0}, std::size_t{5}, std::size_t{18}, wire.size() / 2}) {
    const std::vector<bool> cut(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_FALSE(deserialize_frame(cut).has_value()) << keep;
  }
}

TEST(Bus, HighLoadThroughputIsBounded) {
  BusFixture fx;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    fx.bus.submit(fx.a, CanFrame::make(static_cast<std::uint16_t>(0x200 + i),
                                       std::vector<std::uint8_t>{static_cast<std::uint8_t>(i)}));
  }
  fx.kernel.run();
  EXPECT_EQ(fx.b.received.size(), static_cast<std::size_t>(n));
  // In-order delivery from a single node's queue.
  for (int i = 1; i < n; ++i) {
    EXPECT_LT(fx.b.received[static_cast<std::size_t>(i - 1)].id,
              fx.b.received[static_cast<std::size_t>(i)].id);
  }
}

}  // namespace

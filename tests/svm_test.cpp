// SVM testbench-library tests: phase ordering, objection-based run
// termination, timeout reporting, factory type/instance overrides, config
// DB hierarchical lookup, analysis ports, sequencer/driver handshake, and a
// complete micro-testbench with monitor + scoreboard around a signal DUT.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "vps/sim/signal.hpp"
#include "vps/svm/agent.hpp"
#include "vps/svm/analysis.hpp"
#include "vps/svm/component.hpp"
#include "vps/svm/config_db.hpp"
#include "vps/svm/factory.hpp"
#include "vps/svm/sequence.hpp"

namespace {

using namespace vps::svm;
using namespace vps::sim;

TEST(Component, HierarchyAndNames) {
  Kernel k;
  Root root(k, "tb");
  Component env(root, "env");
  Component agent(env, "agent");
  EXPECT_EQ(agent.full_name(), "tb.env.agent");
  EXPECT_EQ(env.children().size(), 1u);
  EXPECT_EQ(agent.parent(), &env);
  EXPECT_EQ(&agent.kernel(), &k);
}

TEST(Component, PhaseOrdering) {
  Kernel k;
  std::vector<std::string> log;

  struct Probe : Component {
    std::vector<std::string>& log;
    Probe(Component& parent, std::string name, std::vector<std::string>& log)
        : Component(parent, std::move(name)), log(log) {}
    void build_phase() override { log.push_back("build:" + name()); }
    void connect_phase() override { log.push_back("connect:" + name()); }
    Coro run_phase() override {
      log.push_back("run:" + name());
      co_return;
    }
    void report_phase() override { log.push_back("report:" + name()); }
  };

  struct Parent : Probe {
    std::unique_ptr<Probe> child;
    Parent(Component& parent, std::string name, std::vector<std::string>& log)
        : Probe(parent, std::move(name), log) {}
    void build_phase() override {
      Probe::build_phase();
      child = std::make_unique<Probe>(*this, "child", log);  // built during build phase
    }
  };

  Root root(k, "tb");
  Parent p(root, "p", log);
  root.run_test(Time::ms(1));

  // build is top-down (parent before the child it creates); connect is
  // bottom-up; report is bottom-up.
  const auto idx = [&](const std::string& s) {
    return std::find(log.begin(), log.end(), s) - log.begin();
  };
  EXPECT_LT(idx("build:p"), idx("build:child"));
  EXPECT_LT(idx("connect:child"), idx("connect:p"));
  EXPECT_LT(idx("report:child"), idx("report:p"));
  EXPECT_NE(idx("run:p"), static_cast<std::ptrdiff_t>(log.size()));
}

TEST(Component, ObjectionEndsRunPhase) {
  Kernel k;
  struct Worker : Component {
    using Component::Component;
    Coro run_phase() override {
      objection().raise();
      co_await delay(Time::us(50));
      objection().drop();
    }
  };
  Root root(k, "tb");
  Worker w(root, "w");
  EXPECT_TRUE(root.run_test(Time::sec(1)));
  EXPECT_FALSE(root.timed_out());
  EXPECT_EQ(k.now(), Time::us(50));  // ended at drain, not at timeout
}

TEST(Component, TimeoutProducesError) {
  Kernel k;
  struct Stuck : Component {
    using Component::Component;
    Coro run_phase() override {
      objection().raise();
      co_await delay(Time::sec(10));  // never drops in time
      objection().drop();
    }
  };
  Root root(k, "tb");
  Stuck s(root, "s");
  EXPECT_FALSE(root.run_test(Time::ms(1)));
  EXPECT_TRUE(root.timed_out());
  EXPECT_EQ(root.report_server().count(Severity::kError), 1u);
}

TEST(ReportServer, CountsAndVerdict) {
  Kernel k;
  Root root(k, "tb");
  Component c(root, "c");
  c.info("hello");
  c.warning("careful");
  EXPECT_TRUE(root.report_server().passed());
  c.error("broken");
  EXPECT_FALSE(root.report_server().passed());
  EXPECT_EQ(root.report_server().count(Severity::kInfo), 1u);
  EXPECT_EQ(root.report_server().count(Severity::kWarning), 1u);
  EXPECT_EQ(root.report_server().count(Severity::kError), 1u);
  EXPECT_NE(root.report_server().messages()[0].find("tb.c"), std::string::npos);
}

// --- factory ----------------------------------------------------------------

struct BaseMonitor : Component {
  using Component::Component;
  [[nodiscard]] virtual std::string flavor() const { return "base"; }
};
struct FaultyMonitor : BaseMonitor {
  using BaseMonitor::BaseMonitor;
  [[nodiscard]] std::string flavor() const override { return "faulty"; }
};

TEST(FactoryTest, TypeOverrideRedirectsCreation) {
  Kernel k;
  Root root(k, "tb");
  Factory factory;
  factory.register_type<BaseMonitor>("monitor");
  factory.register_type<FaultyMonitor>("faulty_monitor");
  std::vector<std::unique_ptr<Component>> storage;

  auto& plain = factory.create_as<BaseMonitor>("monitor", root, "m0", storage);
  EXPECT_EQ(plain.flavor(), "base");

  factory.set_type_override("monitor", "faulty_monitor");
  auto& overridden = factory.create_as<BaseMonitor>("monitor", root, "m1", storage);
  EXPECT_EQ(overridden.flavor(), "faulty");
}

TEST(FactoryTest, InstanceOverrideBeatsTypeOverride) {
  Kernel k;
  Root root(k, "tb");
  Factory factory;
  factory.register_type<BaseMonitor>("monitor");
  factory.register_type<FaultyMonitor>("faulty_monitor");
  factory.set_instance_override("tb.special", "monitor", "faulty_monitor");
  std::vector<std::unique_ptr<Component>> storage;

  auto& normal = factory.create_as<BaseMonitor>("monitor", root, "normal", storage);
  auto& special = factory.create_as<BaseMonitor>("monitor", root, "special", storage);
  EXPECT_EQ(normal.flavor(), "base");
  EXPECT_EQ(special.flavor(), "faulty");
}

TEST(FactoryTest, UnknownTypeIsAnError) {
  Kernel k;
  Root root(k, "tb");
  Factory factory;
  EXPECT_THROW((void)factory.create("nope", root, "x"), vps::support::InvariantError);
}

// --- config db ----------------------------------------------------------------

TEST(ConfigDbTest, HierarchicalLookupPrecedence) {
  Kernel k;
  Root root(k, "tb");
  Component env(root, "env");
  Component agent(env, "agent");

  ConfigDb db;
  db.set("*", "iterations", 10);
  db.set("tb.env", "iterations", 20);
  EXPECT_EQ(db.get<int>(agent, "iterations").value(), 20);  // ancestor beats wildcard
  db.set("tb.env.agent", "iterations", 30);
  EXPECT_EQ(db.get<int>(agent, "iterations").value(), 30);  // own path wins
  EXPECT_EQ(db.get<int>(root, "iterations").value(), 10);   // falls back to wildcard
  EXPECT_FALSE(db.get<int>(root, "missing").has_value());
  EXPECT_FALSE(db.get<double>(agent, "iterations").has_value());  // wrong type
}

// --- analysis ports -----------------------------------------------------------

TEST(Analysis, BroadcastsToAllSubscribers) {
  AnalysisPort<int> port;
  std::vector<int> a, b;
  port.connect([&](const int& v) { a.push_back(v); });
  port.connect([&](const int& v) { b.push_back(v); });
  port.write(7);
  port.write(9);
  EXPECT_EQ(a, (std::vector<int>{7, 9}));
  EXPECT_EQ(b, (std::vector<int>{7, 9}));
  EXPECT_EQ(port.subscriber_count(), 2u);
}

// --- full micro-testbench -------------------------------------------------------

// DUT: doubles whatever is written to `in` onto `out` after 1us.
struct DoublerDut {
  Kernel& k;
  Signal<int> in;
  Signal<int> out;
  explicit DoublerDut(Kernel& k) : k(k), in(k, "dut.in", 0), out(k, "dut.out", 0) {
    k.spawn("dut", [](DoublerDut& self) -> Coro {
      for (;;) {
        co_await self.in.changed();
        const int v = self.in.read();
        co_await delay(Time::us(1));
        self.out.write(2 * v);
      }
    }(*this));
  }
};

struct StimulusItem {
  int value = 0;
  friend bool operator==(const StimulusItem&, const StimulusItem&) = default;
};

struct DutDriver : Driver<StimulusItem> {
  DoublerDut* dut = nullptr;
  using Driver::Driver;
  Coro drive(StimulusItem& item) override {
    dut->in.write(item.value);
    co_await delay(Time::us(2));  // allow the DUT to respond before the next item
  }
};

struct DutMonitor : Monitor<int> {
  DoublerDut* dut = nullptr;
  using Monitor::Monitor;
  Coro run_phase() override {
    for (;;) {
      co_await dut->out.changed();
      publish(dut->out.read());
    }
  }
};

struct CountingSequence : Sequence<StimulusItem> {
  int n;
  explicit CountingSequence(int n) : n(n) {}
  Coro body(Sequencer<StimulusItem>& sequencer) override {
    for (int i = 1; i <= n; ++i) co_await sequencer.send(StimulusItem{i});
  }
};

TEST(MicroTestbench, EndToEndPassAndFail) {
  for (const bool inject_bug : {false, true}) {
    Kernel k;
    DoublerDut dut(k);
    Root root(k, "tb");
    auto& sequencer = *new Sequencer<StimulusItem>(root, "sequencer");
    auto& driver = *new DutDriver(root, "driver");
    auto& monitor = *new DutMonitor(root, "monitor");
    auto& scoreboard = *new Scoreboard<int>(root, "scoreboard");
    std::unique_ptr<Component> owns[4] = {std::unique_ptr<Component>(&sequencer),
                                          std::unique_ptr<Component>(&driver),
                                          std::unique_ptr<Component>(&monitor),
                                          std::unique_ptr<Component>(&scoreboard)};
    driver.connect(sequencer);
    driver.dut = &dut;
    monitor.dut = &dut;
    monitor.analysis_port().connect(scoreboard);

    CountingSequence seq(5);
    for (int i = 1; i <= 5; ++i) scoreboard.expect(inject_bug ? 2 * i + (i == 3) : 2 * i);
    k.spawn("seq_starter", seq.start(sequencer));

    const bool passed = root.run_test(Time::ms(10));
    if (inject_bug) {
      EXPECT_FALSE(passed);
      EXPECT_EQ(scoreboard.mismatches(), 1u);
    } else {
      EXPECT_TRUE(passed);
      EXPECT_EQ(scoreboard.matched(), 5u);
      EXPECT_EQ(scoreboard.outstanding(), 0u);
    }
    EXPECT_EQ(sequencer.items_consumed(), 5u);
  }
}

}  // namespace

// Binary-mutation tests: disassembler round-trips, machine-level mutant
// enumeration, image patching, and end-to-end firmware qualification on
// the ISS — a weak firmware test suite scores lower than a strong one
// against the identical binary mutant population (paper refs [22,30]).

#include <gtest/gtest.h>

#include "vps/ecu/platform.hpp"
#include "vps/hw/assembler.hpp"
#include "vps/hw/disassembler.hpp"
#include "vps/mutation/binary_mutation.hpp"

namespace {

using namespace vps;
using hw::assemble;
using mutation::enumerate_binary_mutants;
using mutation::run_binary_mutation;

TEST(Disassembler, FormatsRepresentativeInstructions) {
  EXPECT_EQ(hw::disassemble(hw::encode_r(hw::Opcode::kAdd, 1, 2, 3)), "add r1, r2, r3");
  EXPECT_EQ(hw::disassemble(hw::encode_i(hw::Opcode::kAddi, 1, 0, 5)), "addi r1, r0, 5");
  EXPECT_EQ(hw::disassemble(hw::encode_i(hw::Opcode::kAddi, 1, 0, 0xFFFC)), "addi r1, r0, -4");
  EXPECT_EQ(hw::disassemble(hw::encode_i(hw::Opcode::kLw, 3, 2, 8)), "lw r3, 8(r2)");
  EXPECT_EQ(hw::disassemble(hw::encode_i(hw::Opcode::kBne, 2, 0, 0xFFF8)), "bne r2, r0, -8");
  EXPECT_EQ(hw::disassemble(hw::encode_i(hw::Opcode::kHalt, 0, 0, 0)), "halt");
  EXPECT_EQ(hw::disassemble(0xFF000000u), ".word 0xFF000000");
}

TEST(Disassembler, AssembleDisassembleRoundTrip) {
  // Disassembling an assembled program and re-assembling the listing's
  // mnemonics must reproduce the image (for label-free instructions).
  const hw::Program p = assemble(R"(
    addi r1, r0, 7
    add  r2, r1, r1
    sub  r3, r2, r1
    shli r4, r3, 2
    sw   r4, 16(r0)
    lw   r5, 16(r0)
    halt
  )");
  std::string listing;
  for (std::size_t off = 0; off < p.image.size(); off += 4) {
    const std::uint32_t word = static_cast<std::uint32_t>(p.image[off]) |
                               (static_cast<std::uint32_t>(p.image[off + 1]) << 8) |
                               (static_cast<std::uint32_t>(p.image[off + 2]) << 16) |
                               (static_cast<std::uint32_t>(p.image[off + 3]) << 24);
    listing += hw::disassemble(word) + "\n";
  }
  const hw::Program q = assemble(listing);
  EXPECT_EQ(p.image, q.image);
}

TEST(Disassembler, ProgramListingHasAddresses) {
  const hw::Program p = assemble("nop\nhalt\n");
  const auto listing = hw::disassemble_program(p.image, 0x100);
  EXPECT_NE(listing.find("00000100:  nop"), std::string::npos);
  EXPECT_NE(listing.find("00000104:  halt"), std::string::npos);
}

TEST(BinaryMutants, EnumerationCoversExpectedOperators) {
  const hw::Program p = assemble(R"(
      addi r1, r0, 5     ; imm+1 mutant
      add  r2, r1, r1    ; add->sub
      beq  r2, r0, skip  ; beq->bne
      mul  r3, r2, r1    ; mul->add
    skip:
      halt               ; no mutant
      .word 0xFF00AA55   ; data: skipped
  )");
  const auto mutants = enumerate_binary_mutants(p);
  ASSERT_EQ(mutants.size(), 4u);
  EXPECT_NE(mutants[0].description.find("addi r1, r0, 6"), std::string::npos);
  EXPECT_NE(mutants[1].description.find("sub r2"), std::string::npos);
  EXPECT_NE(mutants[2].description.find("bne"), std::string::npos);
  EXPECT_NE(mutants[3].description.find("add r3"), std::string::npos);
  for (const auto& m : mutants) EXPECT_NE(m.original, m.mutated);
}

TEST(BinaryMutants, NopEncodedAddiIsNotMutated) {
  const hw::Program p = assemble("nop\nnop\nhalt\n");
  EXPECT_TRUE(enumerate_binary_mutants(p).empty());
}

// Firmware under qualification: computes sum(1..n) for n at 0x1000 and a
// saturation flag (sum >= 105) at 0x1008, result at 0x1004. The threshold
// 105 is a reachable sum (n = 14), so the off-by-one immediate mutant is
// killable — thresholds between triangular numbers would make it an
// equivalent mutant.
const char* kFirmware = R"(
      li   r1, 0x1000
      lw   r2, 0(r1)      ; n
      addi r3, r0, 0      ; sum
    loop:
      add  r3, r3, r2
      addi r2, r2, -1
      bne  r2, r0, loop
      sw   r3, 4(r1)      ; sum
      slti r4, r3, 105
      xori r4, r4, 1      ; saturated = sum >= 105
      sw   r4, 8(r1)
      halt
)";

struct FirmwareRun {
  std::uint32_t sum = 0;
  std::uint32_t saturated = 0;
  bool halted = false;
};

FirmwareRun run_firmware(const std::vector<std::uint8_t>& image, std::uint32_t n) {
  sim::Kernel kernel;
  ecu::EcuPlatform ecu(kernel, "dut");
  ecu.ram().load(0, image);
  ecu.ram().poke32(0x1000, n);
  kernel.run(sim::Time::ms(5));
  FirmwareRun r;
  r.halted = ecu.cpu().state() == hw::Cpu::State::kHalted;
  r.sum = ecu.ram().peek32(0x1004);
  r.saturated = ecu.ram().peek32(0x1008);
  return r;
}

TEST(BinaryMutationEngine, StrongFirmwareSuiteOutscoresWeak) {
  const hw::Program fw = assemble(kFirmware);

  // Weak: one input, checks only that it halted with a nonzero sum.
  const auto weak = run_binary_mutation(fw, [](const std::vector<std::uint8_t>& image) {
    const auto r = run_firmware(image, 3);
    return r.halted && r.sum != 0;
  });

  // Strong: exact sums at two inputs plus the saturation boundary.
  const auto strong = run_binary_mutation(fw, [](const std::vector<std::uint8_t>& image) {
    const auto a = run_firmware(image, 3);
    if (!a.halted || a.sum != 6 || a.saturated != 0) return false;
    const auto b = run_firmware(image, 14);  // 105 >= 105: exactly at threshold
    if (!b.halted || b.sum != 105 || b.saturated != 1) return false;
    const auto c = run_firmware(image, 13);  // 91 < 105
    return c.halted && c.sum == 91 && c.saturated == 0;
  });

  EXPECT_EQ(weak.total_mutants, strong.total_mutants);
  EXPECT_GE(strong.total_mutants, 5u);
  EXPECT_GT(strong.score(), weak.score());
  EXPECT_GT(strong.score(), 0.85) << strong.render();
}

TEST(BinaryMutationEngine, RejectsFailingBaseline) {
  const hw::Program fw = assemble(kFirmware);
  EXPECT_THROW((void)run_binary_mutation(fw, [](const auto&) { return false; }),
               vps::support::InvariantError);
}

TEST(BinaryMutationEngine, MutantsAreDeterministic) {
  const hw::Program fw = assemble(kFirmware);
  const auto a = enumerate_binary_mutants(fw);
  const auto b = enumerate_binary_mutants(fw);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mutated, b[i].mutated);
    EXPECT_EQ(a[i].address, b[i].address);
  }
}

}  // namespace

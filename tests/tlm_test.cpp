// Tests for the TLM layer: generic payload, sockets, router decode, DMI,
// quantum keeper temporal decoupling, and the AT base protocol helpers.

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "vps/sim/kernel.hpp"
#include "vps/tlm/at_helpers.hpp"
#include "vps/tlm/payload.hpp"
#include "vps/tlm/quantum.hpp"
#include "vps/tlm/router.hpp"
#include "vps/tlm/sockets.hpp"

namespace {

using namespace vps::sim;
using namespace vps::tlm;

/// Simple LT memory target used as a fixture.
class TestMemory final : public BlockingTransport, public DmiProvider {
 public:
  TestMemory(std::string name, std::size_t size, Time latency)
      : socket_(name + ".tsock"), store_(size, 0), latency_(latency) {
    socket_.set_blocking(*this);
    socket_.set_dmi(*this);
  }

  TargetSocket& socket() { return socket_; }
  std::vector<std::uint8_t>& store() { return store_; }

  void b_transport(GenericPayload& p, Time& delay) override {
    delay += latency_;
    if (p.address() + p.size() > store_.size()) {
      p.set_response(Response::kAddressError);
      return;
    }
    if (p.command() == Command::kRead) {
      std::memcpy(p.data().data(), store_.data() + p.address(), p.size());
    } else if (p.command() == Command::kWrite) {
      std::memcpy(store_.data() + p.address(), p.data().data(), p.size());
    }
    p.set_dmi_allowed(true);
    p.set_response(Response::kOk);
  }

  bool get_direct_mem_ptr(std::uint64_t, DmiRegion& region) override {
    region.base = store_.data();
    region.start = 0;
    region.end = store_.size() - 1;
    region.allows_read = true;
    region.allows_write = true;
    region.read_latency = latency_;
    region.write_latency = latency_;
    return true;
  }

 private:
  TargetSocket socket_;
  std::vector<std::uint8_t> store_;
  Time latency_;
};

TEST(Payload, ScalarLittleEndianRoundTrip) {
  GenericPayload p(Command::kWrite, 0x100, 4);
  p.set_value_le(0xDEADBEEF);
  EXPECT_EQ(p.value_le(), 0xDEADBEEFu);
  EXPECT_EQ(p.data()[0], 0xEF);
  EXPECT_EQ(p.data()[3], 0xDE);
}

TEST(Payload, PoisonTracking) {
  GenericPayload p;
  EXPECT_FALSE(p.poisoned());
  p.poison(77);
  EXPECT_TRUE(p.poisoned());
  EXPECT_EQ(p.poison_id(), 77u);
  p.clear_poison();
  EXPECT_FALSE(p.poisoned());
}

TEST(Payload, ToStringMentionsFields) {
  GenericPayload p(Command::kRead, 0x40, 4);
  p.set_response(Response::kOk);
  const auto s = p.to_string();
  EXPECT_NE(s.find("R@"), std::string::npos);
  EXPECT_NE(s.find("OK"), std::string::npos);
}

TEST(Sockets, UnboundTransportIsReported) {
  InitiatorSocket init("i");
  GenericPayload p(Command::kRead, 0, 4);
  Time delay;
  EXPECT_THROW(init.b_transport(p, delay), vps::support::InvariantError);
}

TEST(Sockets, BlockingRoundTrip) {
  TestMemory mem("mem", 256, 10_ns);
  InitiatorSocket init("cpu");
  init.bind(mem.socket());

  GenericPayload w(Command::kWrite, 16, 4);
  w.set_value_le(0x12345678);
  Time delay = Time::zero();
  init.b_transport(w, delay);
  EXPECT_TRUE(w.ok());
  EXPECT_EQ(delay, 10_ns);

  GenericPayload r(Command::kRead, 16, 4);
  init.b_transport(r, delay);
  EXPECT_EQ(r.value_le(), 0x12345678u);
  EXPECT_EQ(delay, 20_ns);  // delays accumulate
}

TEST(Router, DecodesAndOffsetsAddresses) {
  TestMemory rom("rom", 128, 1_ns);
  TestMemory ram("ram", 128, 2_ns);
  Router router("bus", 5_ns);
  router.map(0x1000, 128, rom.socket());
  router.map(0x2000, 128, ram.socket());

  InitiatorSocket init("cpu");
  init.bind(router.target_socket());

  GenericPayload w(Command::kWrite, 0x2010, 4);
  w.set_value_le(0xAB);
  Time delay = Time::zero();
  init.b_transport(w, delay);
  EXPECT_TRUE(w.ok());
  EXPECT_EQ(ram.store()[0x10], 0xAB);
  EXPECT_EQ(w.address(), 0x2010u);  // address restored after routing
  EXPECT_EQ(delay, 7_ns);           // 5ns hop + 2ns ram
  EXPECT_EQ(router.forwarded(), 1u);
}

TEST(Router, UnmappedAddressFails) {
  Router router("bus");
  TestMemory ram("ram", 64, 0_ns);
  router.map(0x0, 64, ram.socket());
  InitiatorSocket init("cpu");
  init.bind(router.target_socket());
  GenericPayload p(Command::kRead, 0x5000, 4);
  Time delay = Time::zero();
  init.b_transport(p, delay);
  EXPECT_EQ(p.response(), Response::kAddressError);
  EXPECT_EQ(router.decode_errors(), 1u);
}

TEST(Router, StraddlingAccessFails) {
  Router router("bus");
  TestMemory ram("ram", 64, 0_ns);
  router.map(0x0, 64, ram.socket());
  InitiatorSocket init("cpu");
  init.bind(router.target_socket());
  GenericPayload p(Command::kRead, 62, 4);  // crosses the window end
  Time delay = Time::zero();
  init.b_transport(p, delay);
  EXPECT_EQ(p.response(), Response::kAddressError);
}

TEST(Router, RejectsOverlappingWindows) {
  Router router("bus");
  TestMemory a("a", 64, 0_ns), b("b", 64, 0_ns);
  router.map(0x100, 64, a.socket());
  EXPECT_THROW(router.map(0x120, 64, b.socket()), vps::support::InvariantError);
  EXPECT_THROW(router.map(0x100, 1, b.socket()), vps::support::InvariantError);
  router.map(0x140, 64, b.socket());  // adjacent is fine
  EXPECT_EQ(router.mapping_count(), 2u);
}

TEST(Router, DmiGrantTranslatedToInitiatorSpace) {
  TestMemory ram("ram", 256, 3_ns);
  Router router("bus");
  router.map(0x8000, 256, ram.socket());
  InitiatorSocket init("cpu");
  init.bind(router.target_socket());

  DmiRegion region;
  ASSERT_TRUE(init.get_direct_mem_ptr(0x8010, region));
  EXPECT_EQ(region.start, 0x8000u);
  EXPECT_EQ(region.end, 0x80FFu);
  EXPECT_TRUE(region.covers(0x8080, 4));
  EXPECT_FALSE(region.covers(0x7FFF, 1));
  // Writing through DMI hits the backing store directly.
  region.base[0x10] = 0x5A;
  EXPECT_EQ(ram.store()[0x10], 0x5A);
}

TEST(Quantum, AccumulatesAndSyncs) {
  Kernel k;
  QuantumKeeper qk(k, 100_ns);
  std::vector<Time> sync_times;
  k.spawn("initiator", [](Kernel& k, QuantumKeeper& qk, std::vector<Time>& log) -> Coro {
    for (int i = 0; i < 25; ++i) {
      qk.inc(10_ns);  // simulate work costing 10ns per iteration
      co_await qk.sync_if_needed();
      if (qk.local_time() == Time::zero()) log.push_back(k.now());
    }
    co_await qk.sync();  // flush the remainder
    log.push_back(k.now());
  }(k, qk, sync_times));
  k.run();
  // 25 iterations * 10ns = 250ns total; syncs at 100, 200, then flush at 250.
  ASSERT_GE(sync_times.size(), 3u);
  EXPECT_EQ(sync_times[0], 100_ns);
  EXPECT_EQ(sync_times[1], 200_ns);
  EXPECT_EQ(k.now(), 250_ns);
  EXPECT_EQ(qk.sync_count(), 3u);
}

// Regression: sync() with no accumulated local time used to bump
// sync_count() even though it never yielded to the kernel, inflating the
// E4 decoupling statistics with free flush calls.
TEST(Quantum, ZeroLocalSyncNotCounted) {
  Kernel k;
  QuantumKeeper qk(k, 100_ns);
  k.spawn("initiator", [](Kernel& k, QuantumKeeper& qk) -> Coro {
    co_await qk.sync();  // nothing accumulated: no yield, not counted
    co_await qk.sync();
    qk.inc(40_ns);
    co_await qk.sync();  // actual yield
    co_await qk.sync();  // flushed already: free again
    (void)k;
  }(k, qk));
  k.run();
  EXPECT_EQ(qk.sync_count(), 1u);
  EXPECT_EQ(k.now(), 40_ns);
}

TEST(Quantum, ZeroQuantumSyncsNever) {
  Kernel k;
  QuantumKeeper qk(k, Time::zero());
  qk.inc(50_ns);
  EXPECT_FALSE(qk.need_sync());  // zero quantum disables automatic sync
  EXPECT_EQ(qk.current_time(), 50_ns);
}

class EchoTarget final : public AtTarget {
 public:
  using AtTarget::AtTarget;
  void handle(GenericPayload& p) override {
    if (p.command() == Command::kRead) p.set_value_le(0xCAFE);
  }
};

TEST(AtProtocol, FourPhaseRoundTrip) {
  Kernel k;
  EchoTarget target(k, "target", 5_ns, 20_ns);
  AtInitiator initiator(k, "initiator");
  initiator.socket().bind(target.socket());

  Time completion_time;
  k.spawn("test", [](Kernel& k, AtInitiator& init, Time& done) -> Coro {
    GenericPayload p(Command::kRead, 0, 2);
    co_await init.transport(p);
    EXPECT_TRUE(p.ok());
    EXPECT_EQ(p.value_le(), 0xCAFEu);
    done = k.now();
  }(k, initiator, completion_time));
  k.run();
  EXPECT_EQ(completion_time, 25_ns);  // 5ns accept + 20ns processing
  EXPECT_EQ(target.completed(), 1u);
}

TEST(AtProtocol, BackToBackTransactionsPipeline) {
  Kernel k;
  EchoTarget target(k, "target", 2_ns, 10_ns);
  AtInitiator initiator(k, "initiator");
  initiator.socket().bind(target.socket());
  int completed = 0;
  k.spawn("test", [](AtInitiator& init, int& completed) -> Coro {
    for (int i = 0; i < 5; ++i) {
      GenericPayload p(Command::kRead, 0, 2);
      co_await init.transport(p);
      EXPECT_TRUE(p.ok());
      ++completed;
    }
  }(initiator, completed));
  k.run();
  EXPECT_EQ(completed, 5);
  EXPECT_EQ(target.completed(), 5u);
}

}  // namespace

// SVM integration testbench around a real DUT: the platform's CAN
// controller. A sequencer/driver pair injects traffic through a peer CAN
// node, a monitor observes the controller's receive FIFO, and an in-order
// scoreboard checks delivery — first on a clean bus, then with wire-error
// injection (retransmission must make the testbench still pass), then a
// FIFO-overflow scenario where the scoreboard must flag the losses.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "vps/can/bus.hpp"
#include "vps/ecu/platform.hpp"
#include "vps/svm/agent.hpp"
#include "vps/svm/component.hpp"
#include "vps/svm/sequence.hpp"

namespace {

using namespace vps;
using namespace vps::sim;
using namespace vps::svm;
using can::CanBus;
using can::CanFrame;

struct FrameItem {
  CanFrame frame;
  friend bool operator==(const FrameItem&, const FrameItem&) = default;
};

/// Drives frames onto the bus through a peer node and paces on frame
/// completion so back-to-back items do not collapse into one arbitration.
class BusDriver final : public Driver<FrameItem>, public can::CanNode {
 public:
  BusDriver(Component& parent, std::string name, CanBus& bus)
      : Driver(parent, std::move(name)), bus_(bus) {
    bus.attach(*this);
  }
  void on_frame(const CanFrame&) override {}

  Coro drive(FrameItem& item) override {
    bus_.submit(*this, item.frame);
    // Wait until the bus resolves the slot (delivery or retransmission).
    while (bus_.pending_frames() > 0) co_await bus_.frame_done_event();
  }

 private:
  CanBus& bus_;
};

/// Polls the DUT's receive FIFO and broadcasts everything it drains. An
/// optional start delay models slow consuming software (FIFO pressure).
class RxMonitor final : public Monitor<FrameItem> {
 public:
  RxMonitor(Component& parent, std::string name, ecu::CanController& dut)
      : Monitor(parent, std::move(name)), dut_(dut) {}

  void set_start_delay(Time d) noexcept { start_delay_ = d; }

  Coro run_phase() override {
    if (start_delay_ != Time::zero()) co_await delay(start_delay_);
    for (;;) {
      while (auto frame = dut_.pop_rx()) publish(FrameItem{*frame});
      co_await delay(Time::us(50));
    }
  }

 private:
  ecu::CanController& dut_;
  Time start_delay_ = Time::zero();
};

class TrafficSequence final : public Sequence<FrameItem> {
 public:
  explicit TrafficSequence(std::vector<FrameItem> items, Time tail = Time::ms(2))
      : items_(std::move(items)), tail_(tail) {}
  Coro body(Sequencer<FrameItem>& sequencer) override {
    for (const auto& item : items_) co_await sequencer.send(item);
    // Let the monitor drain the tail before the objection drops.
    co_await delay(tail_);
  }

 private:
  std::vector<FrameItem> items_;
  Time tail_;
};

std::vector<FrameItem> make_traffic(std::size_t n) {
  std::vector<FrameItem> items;
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<std::uint8_t> payload{static_cast<std::uint8_t>(i),
                                            static_cast<std::uint8_t>(0xA0 + i)};
    items.push_back(FrameItem{CanFrame::make(static_cast<std::uint16_t>(0x100 + i), payload)});
  }
  return items;
}

struct Bench {
  Kernel kernel;
  CanBus bus{kernel, "can0", 500000};
  ecu::EcuPlatform ecu{kernel, "dut_ecu"};
  Root root{kernel, "tb"};
  std::unique_ptr<Sequencer<FrameItem>> sequencer;
  std::unique_ptr<BusDriver> driver;
  std::unique_ptr<RxMonitor> monitor;
  std::unique_ptr<Scoreboard<FrameItem>> scoreboard;

  Bench() {
    ecu.attach_can(bus);
    sequencer = std::make_unique<Sequencer<FrameItem>>(root, "sequencer");
    driver = std::make_unique<BusDriver>(root, "driver", bus);
    monitor = std::make_unique<RxMonitor>(root, "monitor", ecu.can());
    scoreboard = std::make_unique<Scoreboard<FrameItem>>(root, "scoreboard");
    driver->connect(*sequencer);
    monitor->analysis_port().connect(*scoreboard);
  }
};

TEST(SvmCanTb, CleanBusDeliversEverythingInOrder) {
  Bench tb;
  const auto traffic = make_traffic(10);
  for (const auto& item : traffic) tb.scoreboard->expect(item);
  TrafficSequence seq(traffic);
  tb.kernel.spawn("seq", seq.start(*tb.sequencer));
  EXPECT_TRUE(tb.root.run_test(Time::sec(1)));
  EXPECT_EQ(tb.scoreboard->matched(), 10u);
  EXPECT_EQ(tb.scoreboard->outstanding(), 0u);
}

TEST(SvmCanTb, WireErrorsAreHiddenByRetransmission) {
  Bench tb;
  tb.bus.set_error_rate(0.3, 97);  // lossy harness
  const auto traffic = make_traffic(10);
  for (const auto& item : traffic) tb.scoreboard->expect(item);
  TrafficSequence seq(traffic);
  tb.kernel.spawn("seq", seq.start(*tb.sequencer));
  EXPECT_TRUE(tb.root.run_test(Time::sec(1)))
      << "CAN retransmission must make a 30% lossy wire invisible end-to-end";
  EXPECT_EQ(tb.scoreboard->matched(), 10u);
  EXPECT_GT(tb.bus.stats().retransmissions, 0u);
}

TEST(SvmCanTb, FifoOverflowIsCaughtByTheScoreboard) {
  Bench tb;
  // Slow consumer: the monitor starts draining only after all 20 frames
  // (~2.3 ms of bus time) landed — 4 of them overflow the 16-deep FIFO.
  tb.monitor->set_start_delay(Time::ms(5));
  const auto traffic = make_traffic(20);
  for (const auto& item : traffic) tb.scoreboard->expect(item);
  TrafficSequence seq(traffic, Time::ms(10));  // hold the run past the drain
  tb.kernel.spawn("seq", seq.start(*tb.sequencer));
  EXPECT_FALSE(tb.root.run_test(Time::sec(1)))
      << "the lost tail must fail the testbench at report time";
  EXPECT_EQ(tb.ecu.can().rx_overflows(), 4u);
  EXPECT_EQ(tb.scoreboard->matched(), 16u);  // in-order survivors
  EXPECT_EQ(tb.scoreboard->outstanding(), 4u);
  EXPECT_GE(tb.root.report_server().count(Severity::kError), 1u);
}

}  // namespace

// RAL-lite tests: declaration validation, front-door access over a real
// TLM bus, field read-modify-write, mirror checking, access coverage —
// exercised against the actual EcuPlatform peripherals (the timer and the
// watchdog), proving the register map documentation is executable.

#include <gtest/gtest.h>

#include "vps/ecu/platform.hpp"
#include "vps/svm/register_model.hpp"

namespace {

using namespace vps;
using namespace vps::sim;
using svm::RegisterModel;

struct RalFixture {
  Kernel kernel;
  ecu::EcuPlatform ecu{kernel, "dut"};
  tlm::InitiatorSocket tb{"tb"};
  RegisterModel ral{"dut_regs"};

  RalFixture() {
    tb.bind(ecu.bus().target_socket());
    ral.bind(tb);
    using M = ecu::EcuMemoryMap;
    ral.add_register("TIMER_CTRL", M::kTimerBase + 0x00);
    ral.add_field("TIMER_CTRL", "ENABLE", 0, 1);
    ral.add_field("TIMER_CTRL", "PERIODIC", 1, 1);
    ral.add_register("TIMER_PERIOD_US", M::kTimerBase + 0x04, 1000);
    ral.add_register("TIMER_STATUS", M::kTimerBase + 0x08);
    ral.add_register("TIMER_EXPIRIES", M::kTimerBase + 0x0C);
    ral.add_register("WDG_CTRL", M::kWatchdogBase + 0x00);
    ral.add_register("WDG_PERIOD_US", M::kWatchdogBase + 0x04, 10000);
    ral.add_register("GPIO_OUT", M::kGpioBase + 0x00);
  }
};

TEST(RegisterModelTest, DeclarationValidation) {
  RegisterModel m("m");
  m.add_register("A", 0x0);
  EXPECT_THROW(m.add_register("A", 0x4), support::InvariantError);
  m.add_field("A", "LOW", 0, 4);
  EXPECT_THROW(m.add_field("A", "LOW", 8, 2), support::InvariantError);     // dup name
  EXPECT_THROW(m.add_field("A", "OVER", 2, 4), support::InvariantError);    // overlap
  EXPECT_THROW(m.add_field("A", "WIDE", 30, 4), support::InvariantError);   // out of reg
  EXPECT_THROW((void)m.read("NOPE"), support::InvariantError);              // unknown reg
  EXPECT_THROW((void)m.read("A"), support::InvariantError);                 // no socket
}

TEST(RegisterModelTest, FrontDoorReadWriteAgainstHardware) {
  RalFixture fx;
  EXPECT_EQ(fx.ral.read("TIMER_PERIOD_US"), 1000u);  // hardware reset value
  fx.ral.write("TIMER_PERIOD_US", 250);
  EXPECT_EQ(fx.ral.read("TIMER_PERIOD_US"), 250u);
  EXPECT_EQ(fx.ral.mirrored("TIMER_PERIOD_US"), 250u);
  EXPECT_TRUE(fx.ral.check("TIMER_PERIOD_US"));
}

TEST(RegisterModelTest, FieldReadModifyWrite) {
  RalFixture fx;
  fx.ral.write_field("TIMER_CTRL", "PERIODIC", 1);
  EXPECT_EQ(fx.ral.read("TIMER_CTRL"), 2u);  // ENABLE untouched
  fx.ral.write_field("TIMER_CTRL", "ENABLE", 1);
  EXPECT_EQ(fx.ral.read("TIMER_CTRL"), 3u);
  EXPECT_EQ(fx.ral.read_field("TIMER_CTRL", "PERIODIC"), 1u);
  fx.ral.write_field("TIMER_CTRL", "PERIODIC", 0);
  EXPECT_EQ(fx.ral.read_field("TIMER_CTRL", "ENABLE"), 1u);
}

TEST(RegisterModelTest, DrivesRealTimerBehaviour) {
  RalFixture fx;
  fx.ral.write("TIMER_PERIOD_US", 100);
  fx.ral.write("TIMER_CTRL", 3);  // enable | periodic
  fx.kernel.run(Time::ms(1));
  EXPECT_GE(fx.ral.read("TIMER_EXPIRIES"), 9u);
  EXPECT_EQ(fx.ral.read_field("TIMER_CTRL", "ENABLE"), 1u);
}

TEST(RegisterModelTest, MirrorDetectsHardwareSideChanges) {
  RalFixture fx;
  (void)fx.ral.read("TIMER_EXPIRIES");  // mirror = 0
  fx.ral.write("TIMER_PERIOD_US", 100);
  fx.ral.write("TIMER_CTRL", 3);
  fx.kernel.run(Time::ms(1));
  // Hardware advanced behind the mirror's back: check() must flag it.
  EXPECT_FALSE(fx.ral.check("TIMER_EXPIRIES"));
  // GPIO_OUT is software-owned: the mirror stays valid.
  fx.ral.write("GPIO_OUT", 0xAB);
  fx.kernel.run(fx.kernel.now() + Time::ms(1));
  EXPECT_TRUE(fx.ral.check("GPIO_OUT"));
  EXPECT_EQ(fx.ecu.gpio().out().read(), 0xABu);
}

TEST(RegisterModelTest, AccessCoverageTracksTouchedRegisters) {
  RalFixture fx;
  EXPECT_EQ(fx.ral.access_coverage(), 0.0);
  (void)fx.ral.read("TIMER_CTRL");
  (void)fx.ral.read("WDG_CTRL");
  EXPECT_NEAR(fx.ral.access_coverage(), 2.0 / 7.0, 1e-12);
  EXPECT_EQ(fx.ral.accesses("TIMER_CTRL"), 1u);
  EXPECT_EQ(fx.ral.accesses("GPIO_OUT"), 0u);
}

TEST(RegisterModelTest, BusErrorSurfacesAsException) {
  RalFixture fx;
  fx.ral.add_register("BOGUS", 0x70000000);
  EXPECT_THROW((void)fx.ral.read("BOGUS"), support::InvariantError);
}

}  // namespace

// ECU runtime tests: E2E protection state machine, CAN controller bridging
// (register-level and C++-level), OS scheduler timing properties (response
// times, preemption, deadline misses under injected execution inflation),
// alive supervision, and the integrated EcuPlatform.

#include <gtest/gtest.h>

#include <vector>

#include "vps/ecu/alive_supervision.hpp"
#include "vps/ecu/e2e.hpp"
#include "vps/ecu/os.hpp"
#include "vps/ecu/platform.hpp"

namespace {

using namespace vps::ecu;
using namespace vps::sim;
using vps::can::CanBus;
using vps::can::CanFrame;

// --------------------------------------------------------------------------
// E2E protection
// --------------------------------------------------------------------------

TEST(E2e, RoundTripOk) {
  const E2eConfig cfg{.data_id = 0x1234, .max_delta_counter = 2};
  E2eProtector tx(cfg);
  E2eChecker rx(cfg);
  const std::vector<std::uint8_t> payload{10, 20, 30};
  for (int i = 0; i < 40; ++i) {  // spans multiple counter wraps
    const auto msg = tx.protect(payload);
    EXPECT_EQ(rx.check(msg), E2eStatus::kOk) << "iteration " << i;
    EXPECT_EQ(rx.last_payload()[1], 20);
  }
  EXPECT_EQ(rx.stats().ok, 40u);
}

TEST(E2e, DetectsCorruptionAnywhere) {
  const E2eConfig cfg{.data_id = 7};
  E2eProtector tx(cfg);
  const std::vector<std::uint8_t> payload{0xAB, 0xCD};
  const auto msg = tx.protect(payload);
  for (std::size_t byte = 0; byte < msg.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      // The alive counter occupies only the low nibble of byte 1; the upper
      // nibble is unused on the wire (as in Profile 1) and not protected.
      if (byte == 1 && bit >= 4) continue;
      E2eChecker rx(cfg);
      auto corrupted = msg;
      corrupted[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const auto status = rx.check(corrupted);
      EXPECT_EQ(status, E2eStatus::kWrongCrc)
          << "byte " << byte << " bit " << bit << " -> " << to_string(status);
    }
  }
}

TEST(E2e, DetectsRepetition) {
  const E2eConfig cfg{.data_id = 1};
  E2eProtector tx(cfg);
  E2eChecker rx(cfg);
  const std::vector<std::uint8_t> payload{1};
  const auto msg = tx.protect(payload);
  EXPECT_EQ(rx.check(msg), E2eStatus::kOk);
  EXPECT_EQ(rx.check(msg), E2eStatus::kRepeated);  // stuck sender
  EXPECT_EQ(rx.stats().repeated, 1u);
}

TEST(E2e, ToleratedLossThenResync) {
  const E2eConfig cfg{.data_id = 1, .max_delta_counter = 2};
  E2eProtector tx(cfg);
  E2eChecker rx(cfg);
  const std::vector<std::uint8_t> payload{1};
  EXPECT_EQ(rx.check(tx.protect(payload)), E2eStatus::kOk);
  (void)tx.protect(payload);  // one message lost on the wire
  EXPECT_EQ(rx.check(tx.protect(payload)), E2eStatus::kOkSomeLost);
  (void)tx.protect(payload);
  (void)tx.protect(payload);
  (void)tx.protect(payload);  // three lost: beyond max_delta
  EXPECT_EQ(rx.check(tx.protect(payload)), E2eStatus::kWrongSequence);
  // After the resync the stream is accepted again.
  EXPECT_EQ(rx.check(tx.protect(payload)), E2eStatus::kOk);
}

TEST(E2e, DifferentDataIdsDoNotCrossTalk) {
  E2eProtector tx(E2eConfig{.data_id = 0x10});
  E2eChecker rx(E2eConfig{.data_id = 0x20});
  const std::vector<std::uint8_t> payload{5};
  // A message from the wrong signal group must fail the CRC (masquerading).
  EXPECT_EQ(rx.check(tx.protect(payload)), E2eStatus::kWrongCrc);
}

// --------------------------------------------------------------------------
// OS scheduler
// --------------------------------------------------------------------------

TEST(Os, PeriodicTaskRunsAtRate) {
  Kernel k;
  OsScheduler os(k, "os");
  int runs = 0;
  os.add_task({.name = "t10ms",
               .period = Time::ms(10),
               .wcet = Time::ms(1),
               .priority = 1,
               .body = [&] { ++runs; }});
  k.run(Time::ms(100));
  EXPECT_EQ(runs, 10);
  const auto& s = os.stats(0);
  EXPECT_EQ(s.completions, 10u);
  EXPECT_EQ(s.deadline_misses, 0u);
  EXPECT_EQ(s.max_response, Time::ms(1));
  EXPECT_NEAR(os.utilization(), 0.1, 0.01);
}

TEST(Os, HigherPriorityPreempts) {
  Kernel k;
  OsScheduler os(k, "os");
  std::vector<std::pair<std::string, Time>> completions;
  const TaskId lo = os.add_task({.name = "lo",
                                 .period = Time::ms(100),
                                 .wcet = Time::ms(10),
                                 .priority = 1,
                                 .body = [&] { completions.emplace_back("lo", k.now()); }});
  const TaskId hi = os.add_task({.name = "hi",
                                 .period = Time::ms(5),
                                 .wcet = Time::ms(1),
                                 .priority = 9,
                                 .body = [&] { completions.emplace_back("hi", k.now()); }});
  k.run(Time::ms(50));
  // hi runs at t=0,5,10 (1ms each) before lo's 10ms budget drains:
  // lo executes in [1,5], [6,10], [11,13] -> response 13ms.
  EXPECT_EQ(os.stats(hi).deadline_misses, 0u);
  EXPECT_EQ(os.stats(lo).completions, 1u);
  EXPECT_EQ(os.stats(lo).max_response, Time::ms(13));
  EXPECT_GE(os.stats(lo).preemptions, 2u);
  ASSERT_FALSE(completions.empty());
  EXPECT_EQ(completions[0].first, "hi");  // hi finishes first despite later release
}

TEST(Os, ExplicitDeadlineShorterThanPeriod) {
  Kernel k;
  OsScheduler os(k, "os");
  const TaskId t = os.add_task({.name = "tight",
                                .period = Time::ms(10),
                                .wcet = Time::ms(3),
                                .deadline = Time::ms(2),  // unschedulable by design
                                .priority = 1});
  k.run(Time::ms(50));
  EXPECT_EQ(os.stats(t).completions, 5u);
  EXPECT_EQ(os.stats(t).deadline_misses, 5u);
}

TEST(Os, ExecutionInflationCausesDeadlineMisses) {
  // E11 core mechanism: a fault that only *slows* a task (e.g. software
  // error correction) produces correct values but violates timing.
  Kernel k;
  OsScheduler os(k, "os");
  const TaskId t = os.add_task(
      {.name = "control", .period = Time::ms(10), .wcet = Time::ms(4), .priority = 1});
  k.run(Time::ms(100));
  EXPECT_EQ(os.total_deadline_misses(), 0u);
  os.set_execution_factor(t, 3.0);  // 4ms -> 12ms > 10ms period
  k.run(Time::ms(200));
  EXPECT_GT(os.stats(t).deadline_misses + os.stats(t).overruns_dropped, 0u);
}

TEST(Os, KilledTaskStopsAndRevives) {
  Kernel k;
  OsScheduler os(k, "os");
  int runs = 0;
  const TaskId t = os.add_task({.name = "t",
                                .period = Time::ms(10),
                                .wcet = Time::ms(1),
                                .priority = 1,
                                .body = [&] { ++runs; }});
  k.run(Time::ms(50));
  const int before = runs;
  EXPECT_EQ(before, 5);
  os.kill_task(t);
  k.run(Time::ms(100));
  EXPECT_EQ(runs, before);  // no executions while dead
  os.revive_task(t);
  k.run(Time::ms(150));
  EXPECT_GT(runs, before);
}

TEST(Os, FullUtilizationSchedulableAtRateMonotonicOrder) {
  Kernel k;
  OsScheduler os(k, "os");
  // U = 0.4 + 0.3 + 0.2 = 0.9 with harmonic periods: schedulable under RM.
  const TaskId a = os.add_task(
      {.name = "a", .period = Time::ms(10), .wcet = Time::ms(4), .priority = 3});
  const TaskId b = os.add_task(
      {.name = "b", .period = Time::ms(20), .wcet = Time::ms(6), .priority = 2});
  const TaskId c = os.add_task(
      {.name = "c", .period = Time::ms(40), .wcet = Time::ms(8), .priority = 1});
  k.run(Time::ms(400));
  EXPECT_EQ(os.stats(a).deadline_misses, 0u);
  EXPECT_EQ(os.stats(b).deadline_misses, 0u);
  EXPECT_EQ(os.stats(c).deadline_misses, 0u);
  EXPECT_NEAR(os.utilization(), 0.9, 0.02);
}

// --------------------------------------------------------------------------
// Alive supervision
// --------------------------------------------------------------------------

TEST(AliveSupervisionTest, HealthyEntityNeverEscalates) {
  Kernel k;
  AliveSupervision sup(k, "wdgm", Time::ms(10));
  const auto id = sup.add_entity("task_a");
  k.spawn("reporter", [](AliveSupervision& sup, AliveSupervision::EntityId id) -> Coro {
    for (int i = 0; i < 100; ++i) {
      co_await delay(Time::ms(5));
      sup.report_alive(id);
    }
  }(sup, id));
  k.run(Time::ms(400));
  EXPECT_EQ(sup.failures(), 0u);
  EXPECT_FALSE(sup.is_failed(id));
}

TEST(AliveSupervisionTest, SilentEntityEscalatesAfterThreshold) {
  Kernel k;
  AliveSupervision sup(k, "wdgm", Time::ms(10), /*failed_cycles_to_escalate=*/3);
  const auto id = sup.add_entity("task_a");
  std::vector<Time> failure_times;
  sup.set_on_failure([&](AliveSupervision::EntityId) { failure_times.push_back(k.now()); });
  // Report for 50ms, then go silent.
  k.spawn("reporter", [](AliveSupervision& sup, AliveSupervision::EntityId id) -> Coro {
    for (int i = 0; i < 10; ++i) {
      co_await delay(Time::ms(5));
      sup.report_alive(id);
    }
  }(sup, id));
  k.run(Time::ms(200));
  ASSERT_EQ(failure_times.size(), 1u);  // latched, fires once
  EXPECT_TRUE(sup.is_failed(id));
  // Escalation after 3 empty cycles past the last report (~50ms + 3*10ms).
  EXPECT_GE(failure_times[0], Time::ms(70));
  EXPECT_LE(failure_times[0], Time::ms(90));
  sup.acknowledge(id);
  EXPECT_FALSE(sup.is_failed(id));
}

// --------------------------------------------------------------------------
// CAN controller + platform integration
// --------------------------------------------------------------------------

TEST(Platform, TwoEcusExchangeCanFramesFromSoftware) {
  Kernel k;
  CanBus canbus(k, "can0", 500000);
  EcuPlatform tx_ecu(k, "tx");
  EcuPlatform rx_ecu(k, "rx");
  tx_ecu.attach_can(canbus);
  rx_ecu.attach_can(canbus);

  // TX program: send one frame (id 0x123, dlc 2, data 0xBBAA) via registers.
  tx_ecu.load_program(R"(
    li r1, 0x40005000
    li r2, 0x123
    sw r2, 0(r1)       ; TX_ID
    addi r2, r0, 2
    sw r2, 4(r1)       ; TX_DLC
    li r2, 0xBBAA
    sw r2, 8(r1)       ; TX_DATA_LO
    sw r0, 16(r1)      ; TX_SEND
    halt
  )");
  // RX program: poll RX_COUNT, then copy id and data into registers.
  rx_ecu.load_program(R"(
      li r1, 0x40005000
    wait:
      lw r2, 20(r1)    ; RX_COUNT
      beq r2, r0, wait
      lw r3, 24(r1)    ; RX_ID
      lw r4, 28(r1)    ; RX_DLC
      lw r5, 32(r1)    ; RX_DATA_LO
      sw r0, 40(r1)    ; RX_POP
      halt
  )");
  k.run(Time::ms(50));
  EXPECT_EQ(rx_ecu.cpu().state(), vps::hw::Cpu::State::kHalted);
  EXPECT_EQ(rx_ecu.cpu().reg(3), 0x123u);
  EXPECT_EQ(rx_ecu.cpu().reg(4), 2u);
  EXPECT_EQ(rx_ecu.cpu().reg(5), 0xBBAAu);
  EXPECT_EQ(canbus.stats().frames_delivered, 1u);
}

TEST(Platform, CanRxRaisesInterruptLine) {
  Kernel k;
  CanBus canbus(k, "can0", 500000);
  EcuPlatform ecu(k, "ecu");
  ecu.attach_can(canbus);

  // A plain C++-level node sends to the platform.
  struct Sender : vps::can::CanNode {
    void on_frame(const CanFrame&) override {}
  } sender;
  canbus.attach(sender);

  // Enable the CAN RX line in the INTC from software, then WFI.
  ecu.load_program(R"(
      j main
    .org 0x10
      addi r10, r10, 1   ; irq taken
      li   r6, 0x40000000
      addi r7, r0, 1
      sw   r7, 12(r6)    ; complete line 1
      reti
    main:
      li   r1, 0x40000000
      addi r2, r0, 2     ; enable line 1 (CAN RX)
      sw   r2, 4(r1)
      ei
      wfi
      halt
  )");
  k.spawn("traffic", [](CanBus& bus, Sender& sender) -> Coro {
    co_await delay(Time::us(300));
    bus.submit(sender, CanFrame::make(0x0AB, std::vector<std::uint8_t>{1, 2}));
  }(canbus, sender));
  k.run(Time::ms(10));
  EXPECT_EQ(ecu.cpu().state(), vps::hw::Cpu::State::kHalted);
  EXPECT_EQ(ecu.cpu().reg(10), 1u);
  EXPECT_EQ(ecu.can().rx_pending(), 1u);
}

TEST(Platform, RxFifoOverflowCountsDrops) {
  Kernel k;
  CanBus canbus(k, "can0", 500000);
  EcuPlatform ecu(k, "ecu");
  ecu.attach_can(canbus);
  struct Sender : vps::can::CanNode {
    void on_frame(const CanFrame&) override {}
  } sender;
  canbus.attach(sender);
  // 20 frames into a 16-deep FIFO with no software draining it.
  for (int i = 0; i < 20; ++i) {
    canbus.submit(sender, CanFrame::make(static_cast<std::uint16_t>(i),
                                         std::vector<std::uint8_t>{static_cast<std::uint8_t>(i)}));
  }
  k.run(Time::ms(50));
  EXPECT_EQ(ecu.can().rx_pending(), CanController::kRxFifoDepth);
  EXPECT_EQ(ecu.can().rx_overflows(), 4u);
}

TEST(Platform, WatchdogResetIncrementsResetCounter) {
  Kernel k;
  EcuPlatform ecu(k, "ecu");
  ecu.load_program(R"(
      li r1, 0x40002000
      addi r2, r0, 100
      sw r2, 4(r1)      ; wdg period 100us
      addi r2, r0, 1
      sw r2, 0(r1)      ; enable
    hang:
      j hang
  )");
  // One watchdog period (100us) plus margin: exactly one reset. (After the
  // reset the program re-arms the watchdog and hangs again, so longer runs
  // accumulate one reset per period.)
  k.run(Time::us(150));
  EXPECT_EQ(ecu.reset_count(), 1u);
  k.run(Time::ms(2));
  EXPECT_GT(ecu.reset_count(), 10u);
}

}  // namespace
